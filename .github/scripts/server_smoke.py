"""CI smoke: drive a SessionServer through its HTTP endpoint.

Two tenants (one compressed-training, one plain inference) are admitted
over POST /tenants on an ephemeral port, stepped via
POST /tenants/<name>/steps, inspected through GET /stats, and evicted —
exercising admission, the shared pool, the scheduler, and the metrics
surface exactly the way an operator would, with no Python-API shortcuts.
"""

import json
import sys
import urllib.error
import urllib.request

sys.path.insert(0, "src")

from repro.api.config import ServerSpec  # noqa: E402
from repro.server import SessionServer, serve  # noqa: E402

STEPS = 3


def call(url, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def expect(cond, message):
    if not cond:
        raise SystemExit(f"server smoke FAILED: {message}")


def main():
    spec = ServerSpec(pool_budget_bytes=2 << 20, overcommit=2.0, workers=2, port=0)
    with SessionServer(spec) as server, serve(server) as endpoint:
        url = endpoint.url
        print(f"endpoint: {url}")

        code, body = call(url, "GET", "/healthz")
        expect(code == 200 and body["status"] == "ok", f"healthz: {code} {body}")

        tenants = [
            {
                "name": "train-a",
                "model": "alexnet",
                "image_size": 12,
                "batch_size": 4,
                "seed": 1,
                "session": {
                    "codec": {"options": {"codebook_cache": True}},
                    "storage": {"activations": "arena", "budget_bytes": 2 << 20},
                },
            },
            {
                "name": "infer-b",
                "kind": "infer",
                "model": "alexnet",
                "image_size": 12,
                "batch_size": 8,
                "seed": 2,
                "session": {"compress_activations": False},
            },
        ]
        for t in tenants:
            code, body = call(url, "POST", "/tenants", t)
            expect(
                code == 201 and body["state"] == "running",
                f"admit {t['name']}: {code} {body}",
            )
            print(f"admitted {t['name']}")

        for t in tenants:
            code, body = call(url, "POST", f"/tenants/{t['name']}/steps", {"steps": STEPS})
            expect(code == 200, f"steps {t['name']}: {code} {body}")
            expect(len(body["results"]) == STEPS, f"steps {t['name']}: {body}")
            print(f"{t['name']}: {body['results'][-1]}")

        code, stats = call(url, "GET", "/stats")
        expect(code == 200, f"stats: {code}")
        for t in tenants:
            row = stats["tenants"][t["name"]]
            expect(row["steps_done"] == STEPS, f"{t['name']} steps_done: {row}")
            expect("latency_p50_ms" in row, f"{t['name']} missing latencies: {row}")
        expect(stats["admission"]["admitted"] == 2, f"admission ledger: {stats['admission']}")
        expect(stats["pool"]["budget_bytes"] == 2 << 20, f"pool stats: {stats['pool']}")
        print(f"pool: {stats['pool']['in_memory_nbytes']} B resident, "
              f"{stats['pool']['spilled_nbytes']} B spilled")

        for t in tenants:
            code, body = call(url, "DELETE", f"/tenants/{t['name']}")
            expect(code == 200, f"evict {t['name']}: {code} {body}")

        code, body = call(url, "GET", "/tenants")
        expect(code == 200 and body["tenants"] == {}, f"tenants after evict: {body}")

    print("server smoke OK")


if __name__ == "__main__":
    main()
