"""Snapshot save/restore (the Figure 9 pre-train-and-replay mechanism)."""

import numpy as np
import pytest

from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches
from repro.nn.snapshot import load_snapshot, save_snapshot


@pytest.fixture
def setup(tmp_path):
    ds = SyntheticImageDataset(num_classes=4, image_size=16, seed=3)
    net = build_scaled_model("resnet18", num_classes=4, image_size=16, rng=1)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    tr = Trainer(net, opt)
    tr.train(batches(ds, 8, 6, seed=0))
    path = str(tmp_path / "snap.npz")
    return ds, net, opt, tr, path


def test_roundtrip_restores_weights(setup):
    ds, net, opt, tr, path = setup
    save_snapshot(path, net, opt)
    before = [p.data.copy() for p in net.parameters()]
    tr.train(batches(ds, 8, 4, seed=1))  # drift the weights
    load_snapshot(path, net, opt)
    for b, p in zip(before, net.parameters()):
        np.testing.assert_array_equal(b, p.data)


def test_momentum_and_counters_restored(setup):
    ds, net, opt, tr, path = setup
    save_snapshot(path, net, opt)
    v_before = [opt.momentum_buffer(p).copy() for p in net.parameters()]
    it_before, lr_before = opt.iteration, opt.lr
    tr.train(batches(ds, 8, 4, seed=1))
    opt.lr = 0.5
    load_snapshot(path, net, opt)
    assert opt.iteration == it_before
    assert opt.lr == lr_before
    for v, p in zip(v_before, net.parameters()):
        np.testing.assert_array_equal(v, opt.momentum_buffer(p))


def test_bn_running_stats_restored(setup):
    from repro.nn import BatchNorm2D, iter_layers

    ds, net, opt, tr, path = setup
    bn = next(l for l in iter_layers(net) if isinstance(l, BatchNorm2D))
    save_snapshot(path, net)
    saved_mean = bn.running_mean.copy()
    tr.train(batches(ds, 8, 4, seed=1))
    assert not np.array_equal(bn.running_mean, saved_mean)
    load_snapshot(path, net)
    np.testing.assert_array_equal(bn.running_mean, saved_mean)


def test_replay_is_deterministic(setup):
    """Training resumed from a snapshot reproduces the same trajectory."""
    ds, net, opt, tr, path = setup
    save_snapshot(path, net, opt)
    tr1 = Trainer(net, opt)
    tr1.train(batches(ds, 8, 5, seed=9))
    losses1 = tr1.history.losses
    load_snapshot(path, net, opt)
    tr2 = Trainer(net, opt)
    tr2.train(batches(ds, 8, 5, seed=9))
    np.testing.assert_allclose(losses1, tr2.history.losses, rtol=1e-6)


def test_architecture_mismatch_rejected(setup, tmp_path):
    ds, net, opt, tr, path = setup
    save_snapshot(path, net, opt)
    other = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=2)
    with pytest.raises((KeyError, ValueError)):
        load_snapshot(path, other)
