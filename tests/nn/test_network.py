"""Containers: Sequential, Residual, layer iteration, context install."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Residual,
    SavedTensorContext,
    Sequential,
    iter_layers,
    set_saved_ctx,
)


@pytest.fixture
def small_net():
    return Sequential([
        Conv2D(3, 4, 3, padding=1, rng=1), ReLU(), MaxPool2D(2),
        Residual(Sequential([Conv2D(4, 4, 3, padding=1, rng=2), ReLU()])),
        Flatten(), Linear(4 * 4 * 4, 3, rng=3),
    ])


class TestSequential:
    def test_forward_shape(self, small_net, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        assert small_net.forward(x).shape == (2, 3)

    def test_output_shape_matches_forward(self, small_net, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        assert small_net.output_shape(x.shape) == small_net.forward(x).shape

    def test_backward_shape(self, small_net, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = small_net.forward(x)
        dx = small_net.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_parameters_collected_recursively(self, small_net):
        # conv(w,b) + conv(w,b) + linear(w,b)
        assert len(small_net.parameters()) == 6

    def test_train_flag_propagates(self, small_net):
        small_net.eval()
        assert all(not l.training for l in iter_layers(small_net))
        small_net.train()
        assert all(l.training for l in iter_layers(small_net))

    def test_indexing_and_len(self, small_net):
        assert len(small_net) == 6
        assert isinstance(small_net[0], Conv2D)


class TestResidual:
    def test_identity_shortcut_adds(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        inner = Conv2D(3, 3, 3, padding=1, rng=1)
        block = Residual(inner)
        np.testing.assert_allclose(block.forward(x), inner.forward(x) + x, rtol=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        block = Residual(Conv2D(3, 5, 3, padding=1, rng=1))  # channel change, no shortcut
        with pytest.raises(ValueError):
            block.forward(x)

    def test_gradient_sums_both_branches(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        conv = Conv2D(3, 3, 1, bias=False, rng=1)
        conv.weight.data[:] = 0.0  # main branch contributes nothing
        block = Residual(conv)
        out = block.forward(x)
        dout = rng.standard_normal(out.shape).astype(np.float32)
        dx = block.backward(dout)
        np.testing.assert_allclose(dx, dout, rtol=1e-6)  # identity path only


class TestIterAndContext:
    def test_iter_layers_flattens(self, small_net):
        kinds = [type(l).__name__ for l in iter_layers(small_net)]
        assert kinds == ["Conv2D", "ReLU", "MaxPool2D", "Conv2D", "ReLU", "Flatten", "Linear"]

    def test_set_saved_ctx_predicate(self, small_net):
        ctx = SavedTensorContext()
        n = set_saved_ctx(small_net, ctx, predicate=lambda l: l.compressible)
        assert n == 2  # two conv layers
        convs = [l for l in iter_layers(small_net) if isinstance(l, Conv2D)]
        assert all(c.saved_ctx is ctx for c in convs)

    def test_set_saved_ctx_all(self, small_net):
        ctx = SavedTensorContext()
        n = set_saved_ctx(small_net, ctx)
        assert n == 7

    def test_custom_ctx_intercepts(self, rng):
        calls = []

        class Spy(SavedTensorContext):
            def pack(self, layer, key, arr):
                calls.append(("pack", layer.name, key))
                return arr

            def unpack(self, layer, key, handle):
                calls.append(("unpack", layer.name, key))
                return handle

        conv = Conv2D(3, 2, 3, rng=1, name="spyconv")
        conv.saved_ctx = Spy()
        x = rng.standard_normal((1, 3, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        assert ("pack", "spyconv", "x") in calls
        assert ("unpack", "spyconv", "x") in calls

    def test_clear_saved_calls_discard(self, rng):
        discarded = []

        class Spy(SavedTensorContext):
            def discard(self, layer, key, handle):
                discarded.append(key)

        conv = Conv2D(3, 2, 3, rng=1)
        conv.saved_ctx = Spy()
        conv.forward(rng.standard_normal((1, 3, 5, 5)).astype(np.float32))
        conv.clear_saved()
        assert discarded == ["x"]
