"""Finite-difference gradient checks for every layer's backward pass."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)
from repro.nn.gradcheck import check_layer_gradients


@pytest.fixture
def x4(rng):
    return rng.standard_normal((2, 3, 8, 8)).astype(np.float32)


class TestLayerGradients:
    def test_conv_basic(self, x4):
        check_layer_gradients(Conv2D(3, 4, 3, padding=1, rng=1), x4)

    def test_conv_strided(self, x4):
        check_layer_gradients(Conv2D(3, 4, 3, stride=2, rng=1), x4)

    def test_conv_1x1(self, x4):
        check_layer_gradients(Conv2D(3, 2, 1, rng=1), x4)

    def test_conv_5x5_padded(self, x4):
        check_layer_gradients(Conv2D(3, 2, 5, padding=2, rng=1), x4)

    def test_conv_no_bias(self, x4):
        check_layer_gradients(Conv2D(3, 4, 3, padding=1, bias=False, rng=1), x4)

    def test_linear(self, rng):
        check_layer_gradients(Linear(10, 5, rng=1), rng.standard_normal((4, 10)).astype(np.float32))

    def test_relu(self, x4):
        check_layer_gradients(ReLU(), x4 + 0.2)  # shift off the kink

    def test_tanh(self, x4):
        check_layer_gradients(Tanh(), x4)

    def test_sigmoid(self, x4):
        check_layer_gradients(Sigmoid(), x4)

    @pytest.fixture
    def x4_tiefree(self, rng):
        """All pairwise gaps exceed the finite-difference step, so a max
        never flips its argmax under the +-eps probes (near-ties make
        numeric max-pool gradients ill-defined, not wrong)."""
        vals = rng.permutation(2 * 3 * 8 * 8).astype(np.float32)
        return (vals / vals.size * 4.0 - 2.0).reshape(2, 3, 8, 8)

    def test_maxpool(self, x4_tiefree):
        check_layer_gradients(MaxPool2D(2), x4_tiefree)

    def test_maxpool_overlapping(self, x4_tiefree):
        check_layer_gradients(MaxPool2D(3, stride=2), x4_tiefree)

    def test_maxpool_padded(self, x4_tiefree):
        check_layer_gradients(MaxPool2D(3, stride=2, padding=1), x4_tiefree)

    def test_avgpool(self, x4):
        check_layer_gradients(AvgPool2D(2), x4)

    def test_avgpool_padded(self, x4):
        check_layer_gradients(AvgPool2D(2, stride=2, padding=1), x4)

    def test_global_avgpool(self, x4):
        check_layer_gradients(GlobalAvgPool2D(), x4)

    def test_batchnorm(self, x4):
        check_layer_gradients(BatchNorm2D(3), x4)

    def test_lrn(self, x4):
        check_layer_gradients(LocalResponseNorm(size=3), x4)

    def test_lrn_wide_window(self, rng):
        x = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
        check_layer_gradients(LocalResponseNorm(size=5), x)

    def test_flatten(self, x4):
        check_layer_gradients(Flatten(), x4)


class TestCompositeGradients:
    def test_sequential_conv_stack(self, x4):
        net = Sequential([
            Conv2D(3, 4, 3, padding=1, rng=1), ReLU(),
            Conv2D(4, 2, 3, padding=1, rng=2),
        ])
        check_layer_gradients(net, x4)

    def test_residual_identity(self, x4):
        block = Residual(Sequential([Conv2D(3, 3, 3, padding=1, rng=1), Tanh()]))
        check_layer_gradients(block, x4)

    def test_residual_projection(self, x4):
        block = Residual(
            Sequential([Conv2D(3, 5, 3, stride=2, padding=1, rng=1)]),
            shortcut=Sequential([Conv2D(3, 5, 1, stride=2, rng=2)]),
        )
        check_layer_gradients(block, x4)

    def test_conv_bn_relu_pipeline(self, x4):
        net = Sequential([Conv2D(3, 4, 3, padding=1, rng=1), BatchNorm2D(4), Tanh()])
        check_layer_gradients(net, x4)


class TestLossGradient:
    def test_softmax_ce_gradient(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5)).astype(np.float64)
        labels = rng.integers(0, 5, size=6)
        _, dlogits = loss.forward(logits.copy(), labels)

        eps = 1e-5
        num = np.zeros_like(logits)
        for idx in np.ndindex(*logits.shape):
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            fp, _ = loss.forward(lp, labels)
            fm, _ = loss.forward(lm, labels)
            num[idx] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(dlogits, num, rtol=1e-4, atol=1e-7)

    def test_loss_decreases_along_negative_gradient(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((8, 4))
        labels = rng.integers(0, 4, size=8)
        l0, d = loss.forward(logits.copy(), labels)
        l1, _ = loss.forward(logits - 0.1 * d, labels)
        assert l1 < l0

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((4, 3), -20.0)
        labels = np.arange(4) % 3
        logits[np.arange(4), labels] = 20.0
        l, _ = loss.forward(logits, labels)
        assert l < 1e-6

    def test_accuracy_helper(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert SoftmaxCrossEntropy.accuracy(logits, np.array([0, 1])) == 1.0
        assert SoftmaxCrossEntropy.accuracy(logits, np.array([1, 0])) == 0.0

    def test_rejects_bad_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.zeros(3, dtype=int))
