"""Trainer loop, hooks, history, and the synthetic dataset."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    StepLR,
    SyntheticImageDataset,
    Trainer,
    batches,
)


def tiny_net(rng_seed=1, classes=4):
    return Sequential([
        Conv2D(3, 6, 3, padding=1, rng=rng_seed), ReLU(), MaxPool2D(2),
        Flatten(), Linear(6 * 8 * 8, classes, rng=rng_seed + 1),
    ])


@pytest.fixture
def dataset():
    return SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)


class TestDataset:
    def test_sample_shapes_and_types(self, dataset):
        x, y = dataset.sample(8, rng=0)
        assert x.shape == (8, 3, 16, 16)
        assert x.dtype == np.float32
        assert y.shape == (8,)
        assert y.dtype == np.int64
        assert set(np.unique(y)).issubset(set(range(4)))

    def test_deterministic_with_seed(self, dataset):
        x1, y1 = dataset.sample(8, rng=5)
        x2, y2 = dataset.sample(8, rng=5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_fixed_eval_set_stable(self, dataset):
        x1, y1 = dataset.fixed_eval_set(32)
        x2, y2 = dataset.fixed_eval_set(32)
        np.testing.assert_array_equal(x1, x2)

    def test_classes_distinguishable(self, dataset):
        """Same-class images correlate more than cross-class ones."""
        xa, _ = dataset.sample(1, rng=np.random.default_rng(1))
        # build aligned class samples directly from templates
        t0, t1 = dataset.templates[0], dataset.templates[1]
        assert np.abs(t0 - t1).max() > 0.1

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=1)

    def test_batches_iterator(self, dataset):
        got = list(batches(dataset, 4, 3, seed=0))
        assert len(got) == 3
        assert all(x.shape == (4, 3, 16, 16) for x, _ in got)


class TestTrainer:
    def test_history_recorded(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01))
        tr.train(batches(dataset, 8, 5, seed=0))
        assert len(tr.history.records) == 5
        assert tr.iteration == 5
        assert np.isfinite(tr.history.losses).all()

    def test_loss_decreases(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.02, momentum=0.9))
        tr.train(batches(dataset, 16, 60, seed=0))
        assert tr.history.losses[-10:].mean() < tr.history.losses[:10].mean()

    def test_max_iterations_caps(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01))
        tr.train(batches(dataset, 8, 10, seed=0), max_iterations=4)
        assert tr.iteration == 4

    def test_post_backward_hook_sees_grads(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01))
        seen = []

        def hook(trainer, record):
            g = trainer.optimizer.average_gradient_magnitude()
            seen.append(g)

        tr.post_backward_hooks.append(hook)
        tr.train(batches(dataset, 8, 3, seed=0))
        assert len(seen) == 3
        assert all(g > 0 for g in seen)

    def test_grad_transform_applied_before_step(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01, momentum=0.0))

        def zero_all(trainer):
            for p in trainer.optimizer.params:
                p.grad[:] = 0.0

        tr.grad_transforms.append(zero_all)
        before = [p.data.copy() for p in net.parameters()]
        tr.train(batches(dataset, 8, 2, seed=0))
        for b, p in zip(before, net.parameters()):
            np.testing.assert_array_equal(b, p.data)  # updates nulled

    def test_lr_schedule_steps(self, dataset):
        net = tiny_net()
        opt = SGD(net.parameters(), lr=1.0)
        tr = Trainer(net, opt, lr_schedule=StepLR(opt, step_size=1, gamma=0.5))
        tr.train(batches(dataset, 8, 3, seed=0))
        assert opt.lr == pytest.approx(0.125)

    def test_evaluate_runs_in_eval_mode(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01))
        x, y = dataset.fixed_eval_set(40)
        acc = tr.evaluate(x, y, batch_size=16)
        assert 0.0 <= acc <= 1.0
        assert net.training  # restored to train mode

    def test_smoothed_accuracy(self, dataset):
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.01))
        tr.train(batches(dataset, 8, 25, seed=0))
        sm = tr.history.smoothed_accuracy(window=5)
        assert sm.size == 21

    def test_training_learns_task(self, dataset):
        """End-to-end: the substrate trains a real classifier."""
        net = tiny_net()
        tr = Trainer(net, SGD(net.parameters(), lr=0.02, momentum=0.9))
        tr.train(batches(dataset, 32, 80, seed=0))
        x, y = dataset.fixed_eval_set(200)
        assert tr.evaluate(x, y) > 0.8
