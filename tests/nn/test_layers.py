"""Per-layer behaviour: shapes, modes, saved-tensor lifecycle."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


@pytest.fixture
def x4(rng):
    return rng.standard_normal((2, 3, 8, 8)).astype(np.float32)


class TestConv2D:
    def test_output_shape(self, x4):
        conv = Conv2D(3, 5, 3, stride=2, padding=1, rng=0)
        out = conv.forward(x4)
        assert out.shape == (2, 5, 4, 4)
        assert out.shape == conv.output_shape(x4.shape)

    def test_known_value(self):
        """1x1 kernel of ones == channel sum."""
        conv = Conv2D(3, 1, 1, bias=False, rng=0)
        conv.weight.data[:] = 1.0
        x = np.arange(2 * 3 * 2 * 2, dtype=np.float32).reshape(2, 3, 2, 2)
        out = conv.forward(x)
        np.testing.assert_allclose(out[:, 0], x.sum(axis=1), rtol=1e-6)

    def test_bias_added(self, x4):
        conv = Conv2D(3, 4, 3, padding=1, rng=0)
        conv.weight.data[:] = 0.0
        conv.bias.data[:] = np.arange(4)
        out = conv.forward(x4)
        for c in range(4):
            np.testing.assert_allclose(out[:, c], c, atol=1e-6)

    def test_no_bias(self, x4):
        conv = Conv2D(3, 4, 3, padding=1, bias=False, rng=0)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_wrong_channels_rejected(self, x4):
        with pytest.raises(ValueError):
            Conv2D(4, 2, 3, rng=0).forward(x4)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, kernel=0)

    def test_eval_saves_nothing(self, x4):
        conv = Conv2D(3, 4, 3, rng=0).eval()
        conv.forward(x4)
        assert not conv._saved

    def test_training_saves_input(self, x4):
        conv = Conv2D(3, 4, 3, rng=0)
        conv.forward(x4)
        assert "x" in conv._saved

    def test_grad_accumulates(self, x4):
        conv = Conv2D(3, 4, 3, padding=1, rng=0)
        out = conv.forward(x4)
        conv.backward(np.ones_like(out))
        g1 = conv.weight.grad.copy()
        conv.forward(x4)
        conv.backward(np.ones_like(out))
        np.testing.assert_allclose(conv.weight.grad, 2 * g1, rtol=1e-5)

    def test_compressible_flag(self):
        assert Conv2D(1, 1, 1, rng=0).compressible is True


class TestPooling:
    def test_maxpool_values(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        out = MaxPool2D(2).forward(x)
        assert out.reshape(-1)[0] == 4.0

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        mp = MaxPool2D(2)
        mp.forward(x)
        dx = mp.backward(np.array([[[[5.0]]]], dtype=np.float32))
        expected = np.array([[[[0, 0], [0, 5.0]]]], dtype=np.float32)
        np.testing.assert_array_equal(dx, expected)

    def test_overlapping_windows_accumulate(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        mp = MaxPool2D(3, stride=2)
        out = mp.forward(x)
        dx = mp.backward(np.ones_like(out))
        # total gradient mass conserved
        assert dx.sum() == pytest.approx(out.size, rel=1e-6)

    def test_avgpool_values(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        out = AvgPool2D(2).forward(x)
        assert out.reshape(-1)[0] == pytest.approx(2.5)

    def test_global_avgpool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = GlobalAvgPool2D().forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)

    def test_pool_rejects_2d(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((4, 4), dtype=np.float32))

    def test_recomputable_flags(self):
        assert MaxPool2D(2).recomputable
        assert AvgPool2D(2).recomputable
        assert ReLU().recomputable


class TestActivations:
    def test_relu_clamps(self, x4):
        out = ReLU().forward(x4)
        assert out.min() >= 0
        np.testing.assert_array_equal(out, np.maximum(x4, 0))

    def test_relu_backward_mask(self, x4):
        r = ReLU()
        r.forward(x4)
        dx = r.backward(np.ones_like(x4))
        np.testing.assert_array_equal(dx, (x4 > 0).astype(np.float32))

    def test_relu_sparsity_realistic(self, rng):
        """Post-ReLU activations are ~half zeros for centered input."""
        x = rng.standard_normal((100, 100)).astype(np.float32)
        out = ReLU().forward(x)
        r = np.count_nonzero(out) / out.size
        assert 0.4 < r < 0.6

    def test_tanh_range(self, x4):
        out = Tanh().forward(10 * x4)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_range(self, x4):
        out = Sigmoid().forward(x4)
        assert np.all((out > 0) & (out < 1))


class TestBatchNorm:
    def test_normalizes_training(self, rng):
        x = (rng.standard_normal((8, 4, 6, 6)) * 5 + 3).astype(np.float32)
        bn = BatchNorm2D(4)
        out = bn.forward(x)
        assert np.abs(out.mean(axis=(0, 2, 3))).max() < 1e-4
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2D(2, momentum=0.5)
        for _ in range(30):
            x = (rng.standard_normal((16, 2, 4, 4)) * 2 + 1).astype(np.float32)
            bn.forward(x)
        assert bn.running_mean == pytest.approx(np.ones(2), abs=0.3)
        assert bn.running_var == pytest.approx(np.full(2, 4.0), rel=0.4)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2D(2)
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        for _ in range(10):
            bn.forward(x)
        bn.eval()
        y1 = bn.forward(x[:4])
        y2 = bn.forward(x[:4])
        np.testing.assert_array_equal(y1, y2)  # no batch dependence

    def test_gamma_beta_applied(self, rng):
        bn = BatchNorm2D(2)
        bn.gamma.data[:] = 2.0
        bn.beta.data[:] = 1.0
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        out = bn.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=1e-3)
        assert out.std() == pytest.approx(2.0, rel=1e-2)

    def test_wrong_channels_rejected(self, x4):
        with pytest.raises(ValueError):
            BatchNorm2D(5).forward(x4)


class TestLRN:
    def test_identity_at_zero_alpha(self, x4):
        lrn = LocalResponseNorm(size=5, alpha=0.0, beta=0.75, k=1.0)
        np.testing.assert_allclose(lrn.forward(x4), x4, rtol=1e-6)

    def test_suppresses_strong_channels(self, rng):
        x = np.ones((1, 5, 2, 2), dtype=np.float32)
        x[0, 2] = 100.0
        lrn = LocalResponseNorm(size=3, alpha=1.0, beta=0.75, k=1.0)
        out = lrn.forward(x)
        assert out[0, 2, 0, 0] < x[0, 2, 0, 0]

    def test_rejects_even_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)

    def test_matches_bruteforce(self, rng):
        x = rng.standard_normal((2, 6, 3, 3)).astype(np.float32)
        size, alpha, beta, k = 5, 1e-2, 0.75, 2.0
        lrn = LocalResponseNorm(size, alpha, beta, k)
        out = lrn.forward(x)
        half = size // 2
        for c in range(6):
            lo, hi = max(0, c - half), min(6, c + half + 1)
            denom = k + alpha / size * (x[:, lo:hi] ** 2).sum(axis=1)
            np.testing.assert_allclose(out[:, c], x[:, c] * denom**-beta, rtol=1e-5)


class TestDropout:
    def test_identity_at_eval(self, x4):
        d = Dropout(0.5, rng=0).eval()
        np.testing.assert_array_equal(d.forward(x4), x4)

    def test_identity_at_p_zero(self, x4):
        np.testing.assert_array_equal(Dropout(0.0, rng=0).forward(x4), x4)

    def test_expected_scale_preserved(self, rng):
        x = np.ones((200, 200), dtype=np.float32)
        out = Dropout(0.3, rng=rng).forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        d = Dropout(0.5, rng=rng)
        x = np.ones((50, 50), dtype=np.float32)
        out = d.forward(x)
        dx = d.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx == 0, out == 0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestLinearFlatten:
    def test_linear_matches_matmul(self, rng):
        lin = Linear(6, 4, rng=0)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        np.testing.assert_allclose(
            lin.forward(x), x @ lin.weight.data.T + lin.bias.data, rtol=1e-5
        )

    def test_linear_rejects_wrong_features(self, rng):
        with pytest.raises(ValueError):
            Linear(6, 4, rng=0).forward(np.zeros((2, 5), dtype=np.float32))

    def test_flatten_roundtrip(self, x4):
        f = Flatten()
        out = f.forward(x4)
        assert out.shape == (2, 3 * 8 * 8)
        back = f.backward(out)
        assert back.shape == x4.shape
