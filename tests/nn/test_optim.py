"""Optimizer and LR-schedule behaviour (momentum introspection included)."""

import numpy as np
import pytest

from repro.nn import Adam, ConstantLR, Parameter, ResidentSlots, SGD, StepLR


def _params(rng, n=2):
    return [Parameter(rng.standard_normal((3, 3)), name=f"p{i}") for i in range(n)]


class TestSGD:
    def test_plain_sgd_step(self, rng):
        p = Parameter(np.ones((2, 2)))
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(p.data, 0.9)

    def test_momentum_accumulates(self, rng):
        p = Parameter(np.zeros((2,)))
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = 1.0
        opt.step()  # v=1, w=-1
        p.grad[:] = 1.0
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(p.data, -2.5)

    def test_weight_decay(self):
        p = Parameter(np.full((2,), 10.0))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad[:] = 0.0
        opt.step()
        np.testing.assert_allclose(p.data, 10.0 - 0.1 * 0.1 * 10.0)

    def test_zero_grad(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1)
        for p in ps:
            p.grad[:] = 5.0
        opt.zero_grad()
        assert all(np.all(p.grad == 0) for p in ps)

    def test_iteration_counter(self, rng):
        opt = SGD(_params(rng), lr=0.1)
        for _ in range(3):
            opt.step()
        assert opt.iteration == 3

    def test_momentum_buffer_access(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1, momentum=0.9)
        ps[0].grad[:] = 2.0
        opt.step()
        np.testing.assert_allclose(opt.momentum_buffer(ps[0]), 2.0)

    def test_average_momentum_magnitude(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1, momentum=0.9)
        assert opt.average_momentum_magnitude() == 0.0
        for p in ps:
            p.grad[:] = -3.0
        opt.step()
        assert opt.average_momentum_magnitude() == pytest.approx(3.0)

    def test_average_gradient_magnitude(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1)
        for p in ps:
            p.grad[:] = 4.0
        assert opt.average_gradient_magnitude() == pytest.approx(4.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SGD(_params(rng), lr=0.0)
        with pytest.raises(ValueError):
            SGD(_params(rng), lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestSlotAPI:
    def test_slots_live_in_state_backend(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1, momentum=0.9)
        assert isinstance(opt.state, ResidentSlots)
        assert opt.slot_names == ("velocity",)
        ps[0].grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(opt.read_slot(ps[0], "velocity"), ps[0].grad)

    def test_write_slot_persists(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1, momentum=0.9)
        opt.write_slot(ps[0], "velocity", np.full((3, 3), 2.5))
        np.testing.assert_allclose(opt.momentum_buffer(ps[0]), 2.5)

    def test_use_slot_state_migrates_values(self, rng):
        ps = _params(rng)
        opt = SGD(ps, lr=0.1, momentum=0.9)
        for p in ps:
            p.grad[:] = 3.0
        opt.step()
        opt.use_slot_state(ResidentSlots())
        np.testing.assert_allclose(opt.momentum_buffer(ps[0]), 3.0)


class TestAdam:
    def test_first_step_matches_closed_form(self):
        """With bias correction, step 1 moves by lr * g/(|g| + eps)."""
        p = Parameter(np.zeros((3,)))
        opt = Adam([p], lr=0.1, eps=1e-8)
        p.grad[:] = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        opt.step()
        expect = -0.1 * np.sign(p.grad) * (np.abs(p.grad) / (np.abs(p.grad) + 1e-8))
        np.testing.assert_allclose(p.data, expect, atol=1e-6)

    def test_slots(self, rng):
        ps = _params(rng)
        opt = Adam(ps, lr=0.01)
        assert opt.slot_names == ("exp_avg", "exp_avg_sq")
        assert opt.momentum_slot == "exp_avg"
        ps[0].grad[:] = 2.0
        opt.step()
        np.testing.assert_allclose(opt.read_slot(ps[0], "exp_avg"), 0.2, atol=1e-6)
        np.testing.assert_allclose(opt.read_slot(ps[0], "exp_avg_sq"), 0.004, atol=1e-7)

    def test_weight_decay(self):
        p = Parameter(np.full((2,), 10.0))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        p.grad[:] = 0.0
        opt.step()
        assert np.all(p.data < 10.0)  # decay alone shrinks the weights

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Adam(_params(rng), lr=0.0)
        with pytest.raises(ValueError):
            Adam(_params(rng), betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam(_params(rng), eps=0.0)

    def test_solves_quadratic(self, rng):
        target = rng.standard_normal((4, 4)).astype(np.float32)
        p = Parameter(np.zeros((4, 4)))
        opt = Adam([p], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            p.grad += 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)


class TestSchedules:
    def test_constant(self, rng):
        opt = SGD(_params(rng), lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 0.5

    def test_step_decay(self, rng):
        opt = SGD(_params(rng), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_step_validation(self, rng):
        opt = SGD(_params(rng), lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)


class TestConvergence:
    def test_sgd_solves_quadratic(self, rng):
        """min ||w - target||^2 converges with momentum."""
        target = rng.standard_normal((4, 4)).astype(np.float32)
        p = Parameter(np.zeros((4, 4)))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(400):
            opt.zero_grad()
            p.grad += 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)
