"""Baseline codecs: JPEG-like (unbounded error) and lossless (<= ~2x)."""

import numpy as np
import pytest

from repro.compression import (
    DeflateCompressor,
    JpegLikeCompressor,
    SparseLosslessCompressor,
    max_abs_error,
    psnr,
)


class TestJpegLike:
    def test_roundtrip_shape_dtype(self, activation_tensor):
        j = JpegLikeCompressor(quality=50)
        y = j.roundtrip(activation_tensor)
        assert y.shape == activation_tensor.shape
        assert y.dtype == activation_tensor.dtype

    def test_non_multiple_of_8(self, rng):
        x = rng.standard_normal((2, 3, 13, 19)).astype(np.float32)
        y = JpegLikeCompressor(quality=75).roundtrip(x)
        assert y.shape == x.shape

    def test_quality_controls_fidelity(self, dense_tensor):
        e_low = max_abs_error(dense_tensor, JpegLikeCompressor(quality=10).roundtrip(dense_tensor))
        e_high = max_abs_error(dense_tensor, JpegLikeCompressor(quality=95).roundtrip(dense_tensor))
        assert e_high < e_low

    def test_quality_controls_ratio(self, dense_tensor):
        r_low = JpegLikeCompressor(quality=10).compress(dense_tensor).compression_ratio
        r_high = JpegLikeCompressor(quality=95).compress(dense_tensor).compression_ratio
        assert r_low > r_high

    def test_error_not_bounded(self, activation_tensor):
        """The paper's core criticism: no per-element error control."""
        j = JpegLikeCompressor(quality=50)
        err = max_abs_error(activation_tensor, j.roundtrip(activation_tensor))
        # error scales with data magnitude, far beyond any SZ-style bound
        assert err > 1e-3

    def test_zeros_not_preserved(self, activation_tensor):
        """JPEG smears zeros — exactly what Section 4.4 fixes in SZ."""
        y = JpegLikeCompressor(quality=50).roundtrip(activation_tensor)
        zeros = activation_tensor == 0
        assert np.any(y[zeros] != 0)

    def test_reasonable_psnr(self, dense_tensor):
        y = JpegLikeCompressor(quality=90).roundtrip(dense_tensor)
        assert psnr(dense_tensor, y) > 25

    def test_rejects_bad_quality(self):
        with pytest.raises(ValueError):
            JpegLikeCompressor(quality=0)
        with pytest.raises(ValueError):
            JpegLikeCompressor(quality=101)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            JpegLikeCompressor().compress(np.zeros(10, dtype=np.float32))

    def test_rejects_int(self):
        with pytest.raises(TypeError):
            JpegLikeCompressor().compress(np.zeros((8, 8), dtype=np.int32))


class TestLossless:
    @pytest.mark.parametrize("cls", [DeflateCompressor, SparseLosslessCompressor])
    def test_exactly_lossless(self, activation_tensor, cls):
        c = cls()
        assert np.array_equal(c.roundtrip(activation_tensor), activation_tensor)

    @pytest.mark.parametrize("cls", [DeflateCompressor, SparseLosslessCompressor])
    def test_lossless_on_random_noise(self, rng, cls):
        x = rng.standard_normal((4, 4, 16, 16)).astype(np.float32)
        c = cls()
        assert np.array_equal(c.roundtrip(x), x)

    def test_deflate_ceiling_on_dense_floats(self, rng):
        """The <= ~2x lossless ceiling the paper cites (Section 2.2)."""
        x = np.random.default_rng(0).standard_normal((64, 64, 8)).astype(np.float32)
        ratio = DeflateCompressor().compress(x).compression_ratio
        assert ratio < 2.0

    def test_sparse_exploits_sparsity(self, rng):
        x = np.maximum(rng.standard_normal((32, 32, 8)), 1.2).astype(np.float32)
        x[x == 1.2] = 0  # ~88% zeros
        sparse = SparseLosslessCompressor().compress(x).compression_ratio
        plain = DeflateCompressor().compress(x).compression_ratio
        assert sparse > 1.0
        # bitmap overhead is 1/32 of fp32; dense payload shrinks with R
        assert sparse > 2.0

    def test_sparse_all_zero(self):
        x = np.zeros((16, 16), dtype=np.float32)
        c = SparseLosslessCompressor()
        ct = c.compress(x)
        assert np.array_equal(c.decompress(ct), x)
        assert ct.compression_ratio > 10

    def test_nbytes_fields(self, activation_tensor):
        ct = SparseLosslessCompressor().compress(activation_tensor)
        assert ct.nbytes == len(ct.payload) + len(ct.bitmap) + 32
        assert ct.original_nbytes == activation_tensor.nbytes
