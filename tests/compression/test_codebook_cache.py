"""Codebook-cache contract suite: the amortized entropy stage.

The cache is a pure performance mechanism — every test here pins down
the ways it must NOT change semantics: the error bound holds under
arbitrarily stale books (escape demotion), rebuild triggers fire on
drift (δ) and on schedule (K), concurrent use under the chunked codec's
executors is safe and deterministic, and shared-codebook references
serialize honestly (nbytes byte-exact vs ``dumps``).
"""

import numpy as np
import pytest

from repro.compression import ChunkedCodec, CodebookCache, SZCompressor
from repro.compression.registry import dumps, loads, wire_header_nbytes
from repro.compression.szlike.compressor import HEADER_BYTES
from repro.compression.szlike import dumps as sz_dumps
from repro.compression.szlike import loads as sz_loads


def make_cached(eb=1e-2, **cache_kwargs):
    cache = CodebookCache(**cache_kwargs)
    return SZCompressor(eb, entropy="huffman", codebook_cache=cache), cache


def smoothish(rng, shape=(4, 4, 16, 16), scale=1.0):
    from scipy.ndimage import gaussian_filter

    x = gaussian_filter(rng.standard_normal(shape), sigma=(0, 0, 1.5, 1.5))
    return np.maximum(x * scale, 0).astype(np.float32)


class TestCacheLifecycle:
    def test_second_compress_reuses_book(self, rng):
        comp, cache = make_cached()
        x = smoothish(rng)
        ct1 = comp.compress(x, cache_key="l1")
        ct2 = comp.compress(x, cache_key="l1")
        assert cache.builds == 1 and cache.hits == 1
        # identical input + reused book -> identical bytes
        assert ct1.payload == ct2.payload
        assert ct1.codebook is ct2.codebook

    def test_keys_amortize_independently(self, rng):
        comp, cache = make_cached()
        x = smoothish(rng)
        comp.compress(x, cache_key="a")
        comp.compress(x * 0.5, cache_key="b")
        assert cache.builds == 2
        comp.compress(x, cache_key="a")
        assert cache.hits == 1

    def test_auto_key_without_cache_key(self, rng):
        comp, cache = make_cached()
        x = smoothish(rng)
        comp.compress(x)
        comp.compress(x)
        assert cache.builds == 1 and cache.hits == 1

    def test_cache_off_by_default(self, rng):
        comp = SZCompressor(1e-2, entropy="huffman")
        assert comp.codebook_cache is None
        ct = comp.compress(smoothish(rng), cache_key="ignored")
        assert ct.codebook is not None

    def test_eviction_bounded(self, rng):
        comp, cache = make_cached(max_entries=2)
        x = smoothish(rng, shape=(2, 2, 8, 8))
        for i in range(5):
            comp.compress(x, cache_key=f"k{i}")
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CodebookCache(refresh_interval=-1)
        with pytest.raises(ValueError):
            CodebookCache(delta=-0.1)
        with pytest.raises(ValueError):
            CodebookCache(max_escape_ratio=1.5)
        with pytest.raises(ValueError):
            CodebookCache(max_entries=0)

    def test_compressor_builds_default_cache_from_knobs(self):
        comp = SZCompressor(
            1e-2, entropy="huffman", codebook_cache=True,
            codebook_refresh=7, codebook_delta=0.25,
        )
        assert comp.codebook_cache.refresh_interval == 7
        assert comp.codebook_cache.delta == 0.25


class TestErrorBoundUnderStaleness:
    """The acceptance contract: |x - roundtrip(x)| <= eb no matter how
    stale the cached book is."""

    def test_bound_holds_with_forced_stale_book(self, rng):
        # delta=inf-ish and no refresh: the first book is reused forever
        comp, cache = make_cached(
            eb=1e-2, delta=1e9, refresh_interval=0, max_escape_ratio=1.0
        )
        x1 = smoothish(rng, scale=0.3)
        comp.compress(x1, cache_key="l")
        for scale in (1.0, 3.0, 10.0):  # progressively worse mismatch
            x2 = smoothish(rng, scale=scale)
            ct = comp.compress(x2, cache_key="l")
            y = comp.decompress(ct)
            ulp = float(np.spacing(np.float32(np.abs(x2).max())))
            assert np.abs(x2.astype(np.float64) - y).max() <= 1e-2 * (1 + 1e-6) + ulp
        assert cache.builds == 1 and cache.rebuilds == 0  # truly stale reuse

    def test_unseen_symbols_escape_to_outliers(self, rng):
        comp, cache = make_cached(
            eb=1e-2, delta=1e9, refresh_interval=0, max_escape_ratio=1.0
        )
        x1 = smoothish(rng, scale=0.2)  # narrow residual range
        ct1 = comp.compress(x1, cache_key="l")
        x2 = x1.copy()
        x2[0, 0, :4, :4] += np.linspace(1.0, 5.0, 16).reshape(4, 4).astype(np.float32)
        ct2 = comp.compress(x2, cache_key="l")
        assert cache.hits == 1
        assert cache.escaped_symbols > 0
        assert ct2.outliers.size > ct1.outliers.size
        y = comp.decompress(ct2)
        ulp = float(np.spacing(np.float32(np.abs(x2).max())))
        assert np.abs(x2.astype(np.float64) - y).max() <= 1e-2 * (1 + 1e-6) + ulp

    def test_zero_preservation_survives_cache(self, rng):
        comp, _ = make_cached(eb=1e-2, delta=1e9, refresh_interval=0, max_escape_ratio=1.0)
        x1 = smoothish(rng, scale=0.3)
        comp.compress(x1, cache_key="l")
        x2 = smoothish(rng, scale=2.0)
        y = comp.decompress(comp.compress(x2, cache_key="l"))
        assert np.all(y[x2 == 0] == 0)


class TestRebuildTriggers:
    def test_delta_trigger_rebuilds_on_frequency_flip(self):
        """Same symbol support, inverted frequencies: every symbol still
        has a codeword (no escapes), but the cached lengths are badly
        mismatched — exactly the case the δ dot-product must catch."""
        cache = CodebookCache(delta=0.10, refresh_interval=0)
        hist1 = np.zeros(16, dtype=np.int64)
        hist1[1:9] = [100_000, 30_000, 8_000, 2_000, 500, 120, 30, 8]
        book1, reused = cache.lookup("k", hist1)
        assert not reused
        hist2 = np.zeros(16, dtype=np.int64)
        hist2[1:9] = list(reversed([100_000, 30_000, 8_000, 2_000, 500, 120, 30, 8]))
        book2, reused = cache.lookup("k", hist2)
        assert not reused
        assert cache.rebuilds_delta == 1
        assert book2.lengths[8] < book1.lengths[8]  # now-frequent symbol got shorter
        # the rebuilt book is a hit on the new distribution
        _, reused = cache.lookup("k", hist2)
        assert reused and cache.hits == 1

    def test_fresh_distribution_is_never_stale(self):
        """Gallager-bound fresh estimate: a book rebuilt on the exact
        distribution it sees must pass its own staleness check, even for
        highly skewed (sparse-activation-like) histograms."""
        cache = CodebookCache(delta=0.05, refresh_interval=0)
        hist = np.zeros(1024, dtype=np.int64)
        hist[512] = 900_000  # ReLU zeros dominate
        hist[500:512] = 1_000
        hist[513:525] = 1_000
        cache.lookup("k", hist)
        for _ in range(3):
            _, reused = cache.lookup("k", hist)
            assert reused
        assert cache.rebuilds == 0

    def test_drift_rebuilds_through_compress(self, rng):
        comp, cache = make_cached(eb=1e-2, delta=0.02, refresh_interval=0)
        comp.compress(smoothish(rng, scale=0.2), cache_key="l")
        comp.compress(smoothish(rng, scale=30.0), cache_key="l")
        assert cache.rebuilds == 1  # δ or escape volume — either is drift

    def test_refresh_interval_rebuilds_on_schedule(self, rng):
        comp, cache = make_cached(eb=1e-2, refresh_interval=2, delta=1e9)
        x = smoothish(rng)
        for _ in range(5):
            comp.compress(x, cache_key="l")
        # build, hit, hit, refresh-rebuild, hit
        assert cache.builds == 1
        assert cache.rebuilds_refresh == 1
        assert cache.hits == 3

    def test_escape_volume_forces_rebuild(self, rng):
        comp, cache = make_cached(
            eb=1e-2, delta=1e9, refresh_interval=0, max_escape_ratio=0.001
        )
        x1 = smoothish(rng, scale=0.2)
        comp.compress(x1, cache_key="l")
        x2 = smoothish(rng, scale=50.0)  # nearly everything unseen
        ct = comp.compress(x2, cache_key="l")
        assert cache.rebuilds_escape == 1
        y = comp.decompress(ct)
        ulp = float(np.spacing(np.float32(np.abs(x2).max())))
        assert np.abs(x2.astype(np.float64) - y).max() <= 1e-2 * (1 + 1e-6) + ulp


class TestAccountingWithCache:
    def test_nbytes_byte_exact_vs_dumps_with_cache(self, rng):
        """The acceptance criterion: CompressedTensor.nbytes stays
        byte-exact against serialize.dumps when books come from the
        cache (including stale-reuse and escape cases)."""
        comp, _ = make_cached(eb=1e-2, delta=1e9, refresh_interval=0, max_escape_ratio=1.0)
        x1 = smoothish(rng, scale=0.2)
        x2 = smoothish(rng, scale=2.0)  # reused (stale) book + escapes
        for x in (x1, x2):
            ct = comp.compress(x, cache_key="l")
            blob = sz_dumps(ct)
            assert ct.nbytes == len(blob) - wire_header_nbytes(blob) + HEADER_BYTES
            y1 = comp.decompress(ct)
            y2 = comp.decompress(sz_loads(blob))
            np.testing.assert_array_equal(y1, y2)


class TestChunkedSharing:
    """One shared book across chunks; thread/process safety; honest
    serialization of the shared reference."""

    @pytest.fixture()
    def act(self, rng):
        return smoothish(rng, shape=(8, 4, 24, 24))

    def test_chunks_share_one_codebook(self, act):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman")
        ct = ck.compress(act)
        assert len(ct.chunks) > 1
        assert ct.shared_codebook is not None
        books = {id(c.codebook) for c in ct.chunks}
        assert books == {id(ct.shared_codebook)}
        assert all(c.codebook_shared for c in ct.chunks)
        y = ck.decompress(ct)
        assert np.abs(act.astype(np.float64) - y).max() <= 1e-2 * (1 + 1e-6)

    def test_share_codebook_off_restores_per_chunk_builds(self, act):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman", share_codebook=False)
        ct = ck.compress(act)
        assert ct.shared_codebook is None
        assert not any(c.codebook_shared for c in ct.chunks)

    def test_cross_iteration_cache_through_chunked(self, act):
        inner = SZCompressor(1e-2, entropy="huffman", codebook_cache=True)
        ck = ChunkedCodec(inner, workers=2, min_chunk_nbytes=1 << 12)
        ck.compress(act, cache_key="layer0")
        ck.compress(act, cache_key="layer0")
        assert inner.codebook_cache.builds == 1
        assert inner.codebook_cache.hits == 1

    def test_thread_executor_concurrent_compress_safe(self, act):
        """Many concurrent compress calls against one cached compressor:
        no corruption, every result within the bound."""
        from concurrent.futures import ThreadPoolExecutor

        inner = SZCompressor(1e-2, entropy="huffman", codebook_cache=True)
        ck = ChunkedCodec(inner, workers=2, min_chunk_nbytes=1 << 12)
        tensors = [act * s for s in (0.5, 1.0, 1.5, 2.0)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            cts = list(pool.map(
                lambda xi: ck.compress(xi[1], cache_key=f"k{xi[0]}"),
                enumerate(tensors),
            ))
        for x, ct in zip(tensors, cts):
            y = ck.decompress(ct)
            assert np.abs(x.astype(np.float64) - y).max() <= 1e-2 * (1 + 1e-6)

    def test_process_executor_matches_threads_with_sharing(self, act):
        th = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman")
        pr = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman", executor="process")
        try:
            ct_t = th.compress(act)
            ct_p = pr.compress(act)
            assert ct_t.nbytes == ct_p.nbytes
            np.testing.assert_array_equal(th.decompress(ct_t), pr.decompress(ct_p))
        finally:
            th.close()
            pr.close()

    def test_serialize_roundtrip_shared_references(self, act):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman")
        ct = ck.compress(act)
        blob = dumps(ct)
        back = loads(blob)
        assert back.shared_codebook is not None
        np.testing.assert_array_equal(
            back.shared_codebook.lengths, ct.shared_codebook.lengths
        )
        # every shared chunk got the container book re-attached
        assert all(c.codebook is back.shared_codebook for c in back.chunks)
        np.testing.assert_array_equal(ck.decompress(back), ck.decompress(ct))
        # the container charges the shared book exactly once, byte-exactly
        assert ct.nbytes == back.nbytes

    def test_shared_chunk_blob_smaller_than_owned(self, act):
        """A shared-reference chunk blob must not contain the length
        table (that is the honest-accounting half of the contract), and
        its nbytes must stay byte-exact against its own serialization."""
        import dataclasses

        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman")
        ct = ck.compress(act)
        dict_size = 1024
        for c in ct.chunks:
            assert c.codebook_shared
            blob_ref = sz_dumps(c)
            # same chunk with an owned book: body grows by exactly the
            # length table (header size differences are normalized away)
            blob_owned = sz_dumps(dataclasses.replace(c, codebook_shared=False))
            body_ref = len(blob_ref) - wire_header_nbytes(blob_ref)
            body_owned = len(blob_owned) - wire_header_nbytes(blob_owned)
            assert body_owned - body_ref == dict_size
            # nbytes parity holds for the reference form too
            assert c.nbytes == body_ref + HEADER_BYTES

    def test_detached_shared_chunk_fails_loudly(self, act):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 12,
                          error_bound=1e-2, entropy="huffman")
        ct = ck.compress(act)
        lone = sz_loads(sz_dumps(ct.chunks[1]))  # bookless reference
        assert lone.codebook is None and lone.codebook_shared
        with pytest.raises(ValueError, match="shared codebook"):
            SZCompressor(1e-2, entropy="huffman").decompress(lone)


class TestContextIntegration:
    def test_layer_keys_flow_from_saved_tensor_path(self, rng):
        """CompressingContext passes layer names as cache keys, so each
        conv layer amortizes its codebook independently."""
        from repro.core import CompressingContext
        from repro.nn import Conv2D

        comp, cache = make_cached(eb=1e-2)
        ctx = CompressingContext(comp)
        convs = [Conv2D(3, 2, 3, rng=i + 1, name=f"conv{i}") for i in range(2)]
        # A stable activation stream (the amortization premise); evolving
        # streams and their rebuild triggers are covered above and by
        # benchmarks/bench_hotpath.py at realistic scale.
        x = smoothish(rng, shape=(2, 3, 16, 16))
        for _ in range(3):
            handles = [ctx.pack(c, "x", x) for c in convs]
            for c, h in zip(reversed(convs), reversed(handles)):
                ctx.unpack(c, "x", h)
        assert cache.builds == 2  # one per layer
        assert cache.hits == 4  # two further iterations each
        assert len(cache) == 2
        ctx.close()

    def test_sync_async_bit_identical_with_cache(self, rng):
        """Per-layer keys keep cache decisions deterministic under the
        async engine's worker pool."""
        from repro.core import CompressingContext, MemoryTracker
        from repro.nn import Conv2D

        results = {}
        for engine in ("sync", "async"):
            comp, _ = make_cached(eb=1e-2)
            tracker = MemoryTracker()
            ctx = CompressingContext(comp, tracker=tracker, engine=engine)
            convs = [Conv2D(3, 2, 3, rng=i + 1, name=f"c{i}") for i in range(3)]
            outs = []
            for it in range(3):
                x = smoothish(rng=np.random.default_rng(100 + it), shape=(2, 3, 16, 16))
                handles = [ctx.pack(c, "x", x) for c in convs]
                outs.extend(
                    ctx.unpack(c, "x", h)
                    for c, h in zip(reversed(convs), reversed(handles))
                )
            ctx.close()
            results[engine] = (outs, tracker.per_layer["c0"].stored_bytes)
        for a, b in zip(results["sync"][0], results["async"][0]):
            np.testing.assert_array_equal(a, b)
        assert results["sync"][1] == results["async"][1]
