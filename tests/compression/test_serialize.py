"""Byte serialization of compressed tensors."""

import numpy as np
import pytest

from repro.compression import SZCompressor
from repro.compression.szlike.compressor import HEADER_BYTES
from repro.compression.szlike.serialize import dumps, loads, wire_header_nbytes


@pytest.mark.parametrize("entropy", ["huffman", "zlib", "huffman+zlib", "none"])
def test_roundtrip_all_entropy_stages(activation_tensor, entropy):
    comp = SZCompressor(1e-3, entropy=entropy)
    ct = comp.compress(activation_tensor)
    blob = dumps(ct)
    back = loads(blob)
    y1 = comp.decompress(ct)
    y2 = comp.decompress(back)
    np.testing.assert_array_equal(y1, y2)


@pytest.mark.parametrize("entropy", ["huffman", "zlib", "huffman+zlib", "none"])
def test_nbytes_matches_serialized_length_exactly(activation_tensor, entropy):
    """The accounting contract: nbytes equals the physical byte string,
    with the variable wire header charged at the fixed HEADER_BYTES."""
    comp = SZCompressor(1e-3, entropy=entropy)
    ct = comp.compress(activation_tensor)
    blob = dumps(ct)
    assert ct.nbytes == len(blob) - wire_header_nbytes(blob) + HEADER_BYTES


def test_metadata_preserved(dense_tensor):
    comp = SZCompressor(5e-4, entropy="huffman", zero_filter=False)
    ct = comp.compress(dense_tensor)
    back = loads(dumps(ct))
    assert back.shape == ct.shape
    assert back.dtype == ct.dtype
    assert back.error_bound == ct.error_bound
    assert back.zero_filter == ct.zero_filter
    assert back.count == ct.count


def test_with_outliers(rng):
    x = rng.standard_normal((16, 16)).astype(np.float32)
    x[::4, ::4] += 1e5
    comp = SZCompressor(1e-3, entropy="zlib")
    ct = comp.compress(x)
    assert ct.outliers.size > 0
    back = loads(dumps(ct))
    np.testing.assert_array_equal(comp.decompress(back), comp.decompress(ct))


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        loads(b"XXXX" + b"\x00" * 64)


def test_truncated_rejected(activation_tensor):
    ct = SZCompressor(1e-3, entropy="zlib").compress(activation_tensor)
    blob = dumps(ct)
    with pytest.raises(Exception):
        loads(blob[: len(blob) - 10] )


def test_trailing_garbage_rejected(activation_tensor):
    ct = SZCompressor(1e-3, entropy="zlib").compress(activation_tensor)
    with pytest.raises(ValueError):
        loads(dumps(ct) + b"junk")
