"""End-to-end SZ compressor: error bound, zero preservation, ratios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import SZCompressor, max_abs_error


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 0.1])
    def test_bound_honored(self, activation_tensor, eb):
        c = SZCompressor(eb, entropy="zlib")
        y = c.roundtrip(activation_tensor)
        ulp = float(np.spacing(np.float32(np.abs(activation_tensor).max())))
        assert max_abs_error(activation_tensor, y) <= eb * (1 + 1e-6) + ulp

    @pytest.mark.parametrize("entropy", ["huffman", "zlib", "huffman+zlib", "none"])
    def test_all_entropy_stages_bitexact_same_codes(self, activation_tensor, entropy):
        c = SZCompressor(1e-3, entropy=entropy)
        y = c.roundtrip(activation_tensor)
        assert max_abs_error(activation_tensor, y) <= 1e-3 * (1 + 1e-6)

    def test_relative_mode(self, dense_tensor):
        c = SZCompressor(1e-3, mode="rel", entropy="zlib")
        ct = c.compress(dense_tensor)
        vrange = float(dense_tensor.max() - dense_tensor.min())
        assert ct.error_bound == pytest.approx(1e-3 * vrange)
        y = c.decompress(ct)
        assert max_abs_error(dense_tensor, y) <= ct.error_bound * (1 + 1e-6)

    def test_per_call_override(self, dense_tensor):
        c = SZCompressor(1e-3, entropy="zlib")
        ct = c.compress(dense_tensor, error_bound=0.05)
        assert ct.error_bound == 0.05
        y = c.decompress(ct)
        assert max_abs_error(dense_tensor, y) <= 0.05 * (1 + 1e-6)

    def test_1d_and_2d_inputs(self, rng):
        c = SZCompressor(1e-3, entropy="zlib")
        for shape in [(1000,), (40, 50)]:
            x = rng.standard_normal(shape).astype(np.float32)
            y = c.roundtrip(x)
            assert y.shape == x.shape
            assert max_abs_error(x, y) <= 1e-3 * (1 + 1e-6)

    def test_float64_input(self, rng):
        c = SZCompressor(1e-6, entropy="zlib")
        x = rng.standard_normal((32, 32)).astype(np.float64)
        y = c.roundtrip(x)
        assert y.dtype == np.float64
        assert max_abs_error(x, y) <= 1e-6 * (1 + 1e-6)


class TestZeroHandling:
    def test_zeros_preserved(self, activation_tensor):
        """Section 4.4: ReLU zeros must survive compression exactly."""
        c = SZCompressor(1e-2, entropy="zlib", zero_filter=True)
        y = c.roundtrip(activation_tensor)
        assert np.all(y[activation_tensor == 0] == 0)

    def test_zero_filter_restores_drifted_zeros(self, activation_tensor):
        """With emulated cuSZ zero drift, the filter recovers sparsity."""
        eb = 1e-2
        drifty = SZCompressor(eb, entropy="zlib", zero_filter=False,
                              emulate_zero_drift=True, rng=1)
        y_raw = drifty.roundtrip(activation_tensor)
        zeros = activation_tensor == 0
        assert np.any(y_raw[zeros] != 0)  # the pathology
        assert np.abs(y_raw[zeros]).max() <= eb  # bound still holds

        filtered = SZCompressor(eb, entropy="zlib", zero_filter=True,
                                emulate_zero_drift=True, rng=1)
        y_fix = filtered.roundtrip(activation_tensor)
        assert np.all(y_fix[zeros] == 0)  # the paper's fix

    def test_all_zero_tensor(self):
        c = SZCompressor(1e-3, entropy="zlib")
        x = np.zeros((4, 4, 8, 8), dtype=np.float32)
        ct = c.compress(x)
        assert np.array_equal(c.decompress(ct), x)
        assert ct.compression_ratio > 4  # runs of zeros compress very well

    def test_sparsity_improves_ratio(self, rng):
        from scipy.ndimage import gaussian_filter

        base = gaussian_filter(rng.standard_normal((8, 8, 32, 32)), (0, 0, 1.5, 1.5))
        dense = (base + 10).astype(np.float32)  # no zeros
        sparse = np.maximum(base, 0).astype(np.float32)  # ~50% zeros
        c = SZCompressor(1e-3, entropy="huffman")
        assert c.compress(sparse).compression_ratio > c.compress(dense).compression_ratio


class TestRatios:
    def test_ratio_grows_with_bound(self, activation_tensor):
        c = SZCompressor(entropy="huffman")
        ratios = [
            c.compress(activation_tensor, error_bound=eb).compression_ratio
            for eb in (1e-4, 1e-3, 1e-2)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_beats_lossless_on_activations(self, activation_tensor):
        from repro.compression import DeflateCompressor

        sz = SZCompressor(1e-3, entropy="huffman").compress(activation_tensor)
        lossless = DeflateCompressor().compress(activation_tensor)
        assert sz.compression_ratio > 2 * lossless.compression_ratio

    def test_estimate_tracks_actual(self, activation_tensor):
        c = SZCompressor(1e-3, entropy="huffman")
        est = c.estimate_compressed_nbytes(activation_tensor)
        actual = c.compress(activation_tensor).nbytes
        assert 0.5 * actual < est < 1.5 * actual

    def test_nbytes_accounts_everything(self, activation_tensor):
        ct = SZCompressor(1e-3, entropy="huffman").compress(activation_tensor)
        assert ct.nbytes >= len(ct.payload)
        assert ct.original_nbytes == activation_tensor.nbytes


class TestValidation:
    def test_rejects_integer_input(self):
        with pytest.raises(TypeError):
            SZCompressor(1e-3).compress(np.zeros((4, 4), dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-3).compress(np.zeros((0,), dtype=np.float32))

    def test_rejects_nan(self):
        x = np.ones((4, 4), dtype=np.float32)
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            SZCompressor(1e-3).compress(x)

    def test_rejects_bad_error_bound(self):
        with pytest.raises(ValueError):
            SZCompressor(-1.0)
        with pytest.raises(ValueError):
            SZCompressor(0.0)

    def test_rejects_bad_dict_size(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-3, dict_size=1000)  # not a power of two

    def test_rejects_bad_entropy(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-3, entropy="zstd")

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-3, mode="pointwise")


class TestOutliers:
    def test_spiky_data_roundtrips(self, rng):
        """Values far outside the code range must escape correctly."""
        x = rng.standard_normal((16, 16)).astype(np.float32)
        x[::5, ::5] += 1e5  # massive spikes -> Lorenzo residual outliers
        c = SZCompressor(1e-3, entropy="zlib")
        ct = c.compress(x)
        assert ct.outliers.size > 0
        assert max_abs_error(x, c.decompress(ct)) <= 1e-3 * (1 + 1e-6)


@given(
    st.lists(st.floats(-100, 100, allow_nan=False, width=32), min_size=4, max_size=400),
    st.sampled_from([1e-3, 1e-2, 0.5]),
)
@settings(max_examples=50, deadline=None)
def test_property_bound_and_zero_preservation(values, eb):
    x = np.array(values, dtype=np.float32)
    x[x < 0] = 0  # ReLU-like
    c = SZCompressor(eb, entropy="zlib")
    y = c.roundtrip(x)
    # bound holds up to one output-dtype ulp of the data magnitude
    ulp = float(np.spacing(np.float32(np.abs(x).max() + eb)))
    assert np.abs(x - y).max() <= eb * (1 + 1e-6) + ulp
    assert np.all(y[x == 0] == 0)
