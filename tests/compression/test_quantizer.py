"""Dual-quantization: the error-bound guarantee lives here."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.szlike import (
    codes_from_residuals,
    prequantize,
    reconstruct,
    residuals_from_codes,
)


class TestPrequantize:
    def test_error_bounded(self, rng):
        x = rng.standard_normal(1000).astype(np.float32) * 100
        for eb in (1e-4, 1e-2, 1.0):
            q = prequantize(x, eb)
            # compare in float64: the bound is exact in the quantizer's
            # arithmetic; casting the output to float32 adds at most one
            # ulp of the data magnitude on top (documented behaviour).
            err = np.abs(x.astype(np.float64) - reconstruct(q, eb, dtype=np.float64))
            assert err.max() <= eb * (1 + 1e-9)

    def test_zero_maps_to_zero(self):
        assert prequantize(np.zeros(5, dtype=np.float32), 1e-3).sum() == 0

    def test_grid_pitch_is_two_eb(self):
        eb = 0.5
        x = np.array([0.0, 0.999, 1.001, 2.0], dtype=np.float32)
        q = prequantize(x, eb)
        assert list(q) == [0, 1, 1, 2]

    def test_negative_symmetric(self, rng):
        x = rng.standard_normal(500).astype(np.float32)
        q_pos = prequantize(x, 1e-2)
        q_neg = prequantize(-x, 1e-2)
        # rint ties-to-even is symmetric
        assert np.array_equal(q_pos, -q_neg)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            prequantize(np.ones(3), 0.0)

    def test_int64_for_small_bounds(self):
        """Tiny bounds on large values must not overflow."""
        x = np.array([1e7], dtype=np.float64)
        q = prequantize(x, 1e-6)
        assert q.dtype == np.int64
        assert abs(float(q[0]) * 2e-6 - 1e7) <= 1e-6 + 1e-4


class TestCodes:
    def test_roundtrip_inliers(self, rng):
        delta = rng.integers(-500, 500, size=(13, 17)).astype(np.int64)
        qr = codes_from_residuals(delta, radius=512)
        assert qr.outlier_count == 0
        assert np.array_equal(residuals_from_codes(qr), delta)

    def test_roundtrip_with_outliers(self, rng):
        delta = rng.integers(-500, 500, size=200).astype(np.int64)
        delta[::17] = 10_000  # force escapes
        delta[::23] = -10_000
        qr = codes_from_residuals(delta, radius=512)
        assert qr.outlier_count > 0
        assert np.array_equal(residuals_from_codes(qr), delta)

    def test_boundary_values(self):
        """+-(radius) escapes; +-(radius-1) stays inline."""
        delta = np.array([511, -511, 512, -512], dtype=np.int64)
        qr = codes_from_residuals(delta, radius=512)
        assert qr.outlier_count == 2
        assert np.array_equal(residuals_from_codes(qr), delta)

    def test_marker_zero_reserved(self, rng):
        delta = rng.integers(-100, 100, size=50).astype(np.int64)
        qr = codes_from_residuals(delta, radius=512)
        assert (qr.codes == 0).sum() == qr.outlier_count

    def test_outlier_ratio(self):
        delta = np.array([0, 0, 0, 99999], dtype=np.int64)
        qr = codes_from_residuals(delta, radius=512)
        assert qr.outlier_ratio == pytest.approx(0.25)

    def test_mismatched_outliers_detected(self, rng):
        delta = rng.integers(-100, 100, size=50).astype(np.int64)
        qr = codes_from_residuals(delta, radius=512)
        qr.outliers = np.array([1, 2, 3], dtype=np.int64)  # corrupt
        with pytest.raises(ValueError):
            residuals_from_codes(qr)

    def test_rejects_tiny_radius(self):
        with pytest.raises(ValueError):
            codes_from_residuals(np.zeros(4, dtype=np.int64), radius=1)

    def test_uint32_codes_for_large_radius(self):
        delta = np.zeros(4, dtype=np.int64)
        qr = codes_from_residuals(delta, radius=2**17)
        assert qr.codes.dtype == np.uint32


@given(
    st.lists(st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=1, max_size=200),
    st.floats(1e-5, 10.0),
)
@settings(max_examples=80, deadline=None)
def test_property_error_bound(values, eb):
    x = np.array(values, dtype=np.float32)
    x64 = x.astype(np.float64)
    q = prequantize(x, eb)
    # The contract is exact in the quantizer's float64 arithmetic: the
    # only slack is float64 rounding itself (a few ulps of the data
    # magnitude — orders of magnitude below any float32 ulp).
    ulp64 = float(np.spacing(np.abs(x64).max() + eb))
    err64 = np.abs(x64 - reconstruct(q, eb, dtype=np.float64))
    assert err64.max() <= eb + 4 * ulp64
    # Casting the reconstruction to the output dtype adds at most half an
    # ulp of the data magnitude on top (documented behaviour).
    half_ulp32 = 0.5 * float(np.spacing(np.float32(np.abs(x).max() + eb)))
    err32 = np.abs(x64 - reconstruct(q, eb).astype(np.float64))
    assert err32.max() <= eb + half_ulp32 + 4 * ulp64
