"""Huffman codec: prefix property, roundtrips, both decoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.szlike import (
    HuffmanCodebook,
    build_codebook,
    entropy_bits,
    huffman_decode,
    huffman_encode,
)
from repro.compression.szlike.huffman import MAX_CODE_LENGTH


def _roundtrip(symbols, alphabet, chunked=True):
    cb = build_codebook(symbols, alphabet)
    payload, bits, chunks = huffman_encode(symbols, cb)
    decoded = huffman_decode(
        payload, bits, symbols.size, cb, chunk_offsets=chunks if chunked else None
    )
    return decoded.astype(symbols.dtype)


class TestCodebook:
    def test_kraft_equality(self, rng):
        syms = rng.integers(0, 64, size=5000).astype(np.uint16)
        cb = build_codebook(syms, 64)
        assert cb.kraft_sum() == pytest.approx(1.0)

    def test_frequent_symbols_shorter(self, rng):
        syms = np.concatenate([np.zeros(10_000), rng.integers(1, 32, size=100)]).astype(np.uint16)
        cb = build_codebook(syms, 32)
        assert cb.lengths[0] <= cb.lengths[1:][cb.lengths[1:] > 0].min()

    def test_single_symbol_alphabet(self):
        syms = np.full(100, 7, dtype=np.uint16)
        cb = build_codebook(syms, 16)
        assert cb.lengths[7] == 1
        assert np.count_nonzero(cb.lengths) == 1

    def test_length_limit_enforced(self, rng):
        # Exponential frequencies force deep trees without limiting.
        freqs = np.array([2**i for i in range(40)], dtype=np.int64)
        cb = HuffmanCodebook.from_frequencies(freqs)
        assert cb.max_length <= MAX_CODE_LENGTH
        assert cb.kraft_sum() <= 1.0 + 1e-12

    def test_prefix_free(self, rng):
        syms = rng.integers(0, 100, size=2000).astype(np.uint16)
        cb = build_codebook(syms, 128)
        present = np.nonzero(cb.lengths)[0]
        words = [
            format(int(cb.codes[s]), f"0{int(cb.lengths[s])}b") for s in present
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodebook.from_frequencies(np.zeros(8, dtype=np.int64))

    def test_codebook_nbytes_positive(self, rng):
        syms = rng.integers(0, 16, size=100).astype(np.uint16)
        assert build_codebook(syms, 16).nbytes > 0


class TestRoundtrip:
    @pytest.mark.parametrize("chunked", [True, False])
    def test_uniform_symbols(self, rng, chunked):
        syms = rng.integers(0, 256, size=10_000).astype(np.uint16)
        assert np.array_equal(_roundtrip(syms, 256, chunked), syms)

    @pytest.mark.parametrize("chunked", [True, False])
    def test_skewed_symbols(self, rng, chunked):
        syms = np.minimum(rng.geometric(0.3, size=20_000), 63).astype(np.uint16)
        assert np.array_equal(_roundtrip(syms, 64, chunked), syms)

    @pytest.mark.parametrize("chunked", [True, False])
    def test_single_distinct_symbol(self, chunked):
        syms = np.full(500, 3, dtype=np.uint16)
        assert np.array_equal(_roundtrip(syms, 8, chunked), syms)

    def test_one_symbol_stream(self):
        syms = np.array([5], dtype=np.uint16)
        assert np.array_equal(_roundtrip(syms, 8), syms)

    def test_exact_chunk_multiple(self, rng):
        from repro.compression.szlike.huffman import DEFAULT_CHUNK

        syms = rng.integers(0, 16, size=2 * DEFAULT_CHUNK).astype(np.uint16)
        assert np.array_equal(_roundtrip(syms, 16), syms)

    def test_decoders_agree(self, rng):
        syms = rng.integers(0, 512, size=30_000).astype(np.uint16)
        cb = build_codebook(syms, 512)
        payload, bits, chunks = huffman_encode(syms, cb)
        a = huffman_decode(payload, bits, syms.size, cb, chunk_offsets=chunks)
        b = huffman_decode(payload, bits, syms.size, cb, chunk_offsets=None)
        assert np.array_equal(a, b)

    def test_empty_stream(self):
        cb = HuffmanCodebook.from_frequencies(np.array([1, 1]))
        payload, bits, chunks = huffman_encode(np.zeros(0, dtype=np.uint16), cb)
        assert payload == b""
        out = huffman_decode(payload, bits, 0, cb)
        assert out.size == 0


class TestCompression:
    def test_beats_fixed_width_on_skewed(self, rng):
        syms = np.minimum(rng.geometric(0.5, size=50_000), 255).astype(np.uint16)
        cb = build_codebook(syms, 256)
        payload, bits, _ = huffman_encode(syms, cb)
        assert bits < 8 * syms.size  # 8 bits/symbol fixed width

    def test_near_entropy(self, rng):
        syms = np.minimum(rng.geometric(0.4, size=50_000), 63).astype(np.uint16)
        cb = build_codebook(syms, 64)
        _, bits, _ = huffman_encode(syms, cb)
        h = entropy_bits(syms, 64)
        assert bits <= h + syms.size  # within 1 bit/symbol of entropy

    def test_entropy_bits_uniform(self):
        syms = np.arange(16, dtype=np.uint16).repeat(100)
        assert entropy_bits(syms, 16) == pytest.approx(4.0 * syms.size)

    def test_entropy_bits_constant_is_zero(self):
        assert entropy_bits(np.zeros(100, dtype=np.uint16), 16) == 0.0


class TestErrors:
    def test_symbol_without_code_rejected(self, rng):
        syms = rng.integers(0, 8, size=100).astype(np.uint16)
        cb = build_codebook(syms, 16)
        bad = np.array([15], dtype=np.uint16)
        with pytest.raises(ValueError):
            huffman_encode(bad, cb)

    def test_truncated_payload_detected(self, rng):
        syms = rng.integers(0, 8, size=100).astype(np.uint16)
        cb = build_codebook(syms, 8)
        payload, bits, _ = huffman_encode(syms, cb)
        with pytest.raises(ValueError):
            huffman_decode(payload[: len(payload) // 2], bits, 100, cb, None)


class TestWordPackedEncoder:
    """The low-allocation word-packed kernel against the bit-plane oracle."""

    @pytest.mark.parametrize("size", [1, 100, 4096, 4097, 70_000])
    def test_packers_bit_identical(self, rng, size):
        syms = np.minimum(rng.geometric(0.3, size=size), 255).astype(np.uint16)
        cb = build_codebook(syms, 256)
        words = huffman_encode(syms, cb, packer="words")
        bitplane = huffman_encode(syms, cb, packer="bitplane")
        assert words[0] == bitplane[0]
        assert words[1] == bitplane[1]
        assert np.array_equal(words[2], bitplane[2])

    def test_packers_match_across_block_boundary(self, rng):
        from repro.compression.szlike.huffman import ENCODE_BLOCK

        syms = rng.integers(0, 512, size=ENCODE_BLOCK + 123).astype(np.uint16)
        cb = build_codebook(syms, 512)
        assert huffman_encode(syms, cb, packer="words")[0] == \
            huffman_encode(syms, cb, packer="bitplane")[0]

    def test_unknown_packer_rejected(self, rng):
        syms = rng.integers(0, 8, size=10).astype(np.uint16)
        cb = build_codebook(syms, 8)
        with pytest.raises(ValueError, match="packer"):
            huffman_encode(syms, cb, packer="simd")

    def test_decode_tables_cached_on_codebook(self, rng):
        syms = rng.integers(0, 64, size=1000).astype(np.uint16)
        cb = build_codebook(syms, 64)
        t1 = cb.decode_tables()
        assert cb.decode_tables() is t1  # built once
        import pickle

        clone = pickle.loads(pickle.dumps(cb))
        assert clone._tables is None  # derived state is not shipped
        payload, bits, chunks = huffman_encode(syms, cb)
        assert np.array_equal(
            huffman_decode(payload, bits, syms.size, clone, chunk_offsets=chunks), syms
        )


@given(st.lists(st.integers(0, 31), min_size=1, max_size=3000))
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(values):
    syms = np.array(values, dtype=np.uint16)
    assert np.array_equal(_roundtrip(syms, 32, chunked=True), syms)
    assert np.array_equal(_roundtrip(syms, 32, chunked=False), syms)


@given(st.lists(st.integers(0, 31), min_size=1, max_size=3000))
@settings(max_examples=60, deadline=None)
def test_property_packers_agree(values):
    syms = np.array(values, dtype=np.uint16)
    cb = build_codebook(syms, 32)
    w = huffman_encode(syms, cb, packer="words")
    b = huffman_encode(syms, cb, packer="bitplane")
    assert w[0] == b[0] and w[1] == b[1]
