"""Cross-process codebook cache: the serialized-segment contract.

``SharedCodebookCache`` lets ``ChunkedCodec(executor="process")``
workers adopt canonical Huffman books published by other processes
instead of rebuilding them per worker per step.  Pinned here:

* a fresh process-pool worker observes a cache **hit** for a key the
  parent already built (``builds == 0`` worker-side, one adoption);
* staleness refreshes propagate: a worker's rebuild republished to the
  segment is adopted (not rebuilt) by the next worker;
* ``invalidate()`` clears the segment, so stale books cannot be adopted;
* segment I/O failures degrade to plain per-process caching — counted,
  never raised;
* the auto-upgrade wiring on ``ChunkedCodec(executor="process")`` and
  the ``ensure_shared_codebook_cache`` helper;
* a sanitizer-instrumented run stays clean.
"""

import os
import pickle
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.compression import ChunkedCodec, CodebookCache, SZCompressor, get_codec
from repro.compression.registry import ensure_shared_codebook_cache
from repro.compression.szlike import SharedCodebookCache


def hist_for(seed, alphabet=256, scale=10_000):
    rng = np.random.default_rng(seed)
    return (rng.dirichlet(np.full(alphabet, 0.5)) * scale).astype(np.int64) + 1


# -- worker probes (module-level: the pool pickles them) --------------------

def _probe_lookup(cache_bytes, key, hist):
    cache = pickle.loads(cache_bytes)
    book, reused = cache.lookup(key, hist)
    return reused, cache.stats()


def _probe_compress(inner_bytes, arr, key):
    inner = pickle.loads(inner_bytes)
    inner.compress(arr, cache_key=key)
    return inner.codebook_cache.stats()


def shared_pair():
    cache = SharedCodebookCache()
    return cache, pickle.dumps(cache)


class TestWorkerAdoption:
    def test_worker_hits_parent_published_book(self):
        cache, blob = shared_pair()
        try:
            hist = hist_for(1)
            _, reused = cache.lookup("k", hist)
            assert reused is False and cache.stats()["publishes"] == 1
            blob = pickle.dumps(cache)
            with ProcessPoolExecutor(max_workers=1) as pool:
                reused, stats = pool.submit(_probe_lookup, blob, "k", hist).result()
            assert reused is True
            assert stats["builds"] == 0  # no per-worker rebuild
            assert stats["shared_adoptions"] == 1
            assert stats["hits"] == 1
        finally:
            cache.close()

    def test_adopted_book_is_bit_identical(self):
        """Adoption reconstructs the canonical book from its lengths —
        same codes, so worker and parent streams are interchangeable."""
        cache, _ = shared_pair()
        try:
            hist = hist_for(2)
            parent_book, _ = cache.lookup("k", hist)
            clone = pickle.loads(pickle.dumps(cache))
            worker_book, reused = clone.lookup("k", hist)
            assert reused is True
            np.testing.assert_array_equal(parent_book.lengths, worker_book.lengths)
            np.testing.assert_array_equal(parent_book.codes, worker_book.codes)
        finally:
            cache.close()

    def test_refresh_propagates_through_segment(self):
        """A worker whose histogram flunks the delta check rebuilds and
        republishes; the next fresh worker adopts the refreshed book."""
        cache, _ = shared_pair()
        try:
            cache.lookup("k", hist_for(3))
            shifted = hist_for(99) * 1000  # far off the published book
            clone1 = pickle.loads(pickle.dumps(cache))
            _, reused = clone1.lookup("k", shifted)
            assert reused is False  # stale against the new distribution
            assert clone1.stats()["publishes"] == 1
            clone2 = pickle.loads(pickle.dumps(cache))
            book2, reused2 = clone2.lookup("k", shifted)
            assert reused2 is True  # adopted the *refreshed* book
            assert clone2.stats()["builds"] == 0
            np.testing.assert_array_equal(
                book2.lengths, clone1.lookup("k", shifted)[0].lengths
            )
        finally:
            cache.close()

    def test_invalidate_clears_segment(self):
        cache, _ = shared_pair()
        try:
            hist = hist_for(4)
            cache.lookup("k", hist)
            cache.invalidate("k")
            clone = pickle.loads(pickle.dumps(cache))
            _, reused = clone.lookup("k", hist)
            assert reused is False
            assert clone.stats()["shared_adoptions"] == 0
        finally:
            cache.close()

    def test_unwritable_segment_degrades_to_local(self):
        cache = SharedCodebookCache(segment_path="/nonexistent-dir/books.seg")
        hist = hist_for(5)
        _, reused = cache.lookup("k", hist)
        assert reused is False
        assert cache.stats()["segment_errors"] >= 1
        # Local caching still works.
        _, reused = cache.lookup("k", hist)
        assert reused is True
        cache.close()  # no-op: never owned a real file


class TestChunkedCodecWiring:
    def test_process_executor_auto_upgrades_inner_cache(self):
        ck = get_codec(
            "chunked", inner="szlike", workers=2, executor="process",
            error_bound=1e-3, entropy="huffman", codebook_cache=True,
        )
        try:
            assert isinstance(ck.inner.codebook_cache, SharedCodebookCache)
        finally:
            ck.close()

    def test_thread_executor_keeps_plain_cache(self):
        ck = get_codec(
            "chunked", inner="szlike", workers=2, executor="thread",
            error_bound=1e-3, entropy="huffman", codebook_cache=True,
        )
        cache = ck.inner.codebook_cache
        assert isinstance(cache, CodebookCache)
        assert not isinstance(cache, SharedCodebookCache)
        ck.close()

    def test_shared_cache_false_opts_out(self):
        ck = ChunkedCodec(
            "szlike", workers=2, executor="process", shared_cache=False,
            error_bound=1e-3, entropy="huffman", codebook_cache=True,
        )
        try:
            assert not isinstance(ck.inner.codebook_cache, SharedCodebookCache)
        finally:
            ck.close()

    def test_ensure_helper_upgrades_and_reports(self):
        sz = SZCompressor(1e-3, entropy="huffman", codebook_cache=CodebookCache())
        assert ensure_shared_codebook_cache(sz) is True
        assert isinstance(sz.codebook_cache, SharedCodebookCache)
        assert ensure_shared_codebook_cache(sz) is True  # idempotent
        sz.codebook_cache.close()
        assert ensure_shared_codebook_cache(SZCompressor(1e-3)) is False  # no cache
        ck = ChunkedCodec(
            "szlike", workers=2, error_bound=1e-3, entropy="huffman",
            codebook_cache=True,
        )
        assert ensure_shared_codebook_cache(ck) is True  # recurses to inner
        assert isinstance(ck.inner.codebook_cache, SharedCodebookCache)
        ck.close()

    def test_worker_side_compress_steady_state_no_builds(self):
        """The tentpole number: a fresh worker compressing a chunk whose
        key is already published does zero codebook builds."""
        sz = SZCompressor(1e-3, entropy="huffman", codebook_cache=SharedCodebookCache())
        try:
            rng = np.random.default_rng(6)
            arr = np.maximum(
                rng.standard_normal((2, 4, 16, 16)), 0
            ).astype(np.float32)
            blob = pickle.dumps(sz)
            with ProcessPoolExecutor(max_workers=1) as pool:
                first = pool.submit(_probe_compress, blob, arr, ("l0", "chunk", 0)).result()
                assert first["builds"] == 1  # cold: built and published
                steady = pool.submit(_probe_compress, blob, arr, ("l0", "chunk", 0)).result()
            assert steady["builds"] == 0
            assert steady["hits"] == 1
            assert steady["shared_adoptions"] == 1
        finally:
            sz.codebook_cache.close()

    def test_process_chunked_publishes_per_chunk_keys(self):
        ck = get_codec(
            "chunked", inner="szlike", workers=2, min_chunk_nbytes=1 << 12,
            executor="process", share_codebook=False,
            error_bound=1e-3, entropy="huffman", codebook_cache=True,
        )
        try:
            cache = ck.inner.codebook_cache
            rng = np.random.default_rng(7)
            arr = np.maximum(
                rng.standard_normal((4, 4, 16, 16)), 0
            ).astype(np.float32)
            ct = ck.compress(arr, cache_key="layer0")
            assert len(ct.chunks) > 1
            published = cache._read_segment()
            assert {("layer0", "chunk", i) for i in range(len(ct.chunks))} <= set(published)
            np.testing.assert_allclose(ck.decompress(ct), arr, atol=1e-3 * (1 + 1e-6))
        finally:
            ck.close()
            cache.close()


class TestSanitizerClean:
    def test_instrumented_shared_cache_run_is_clean(self, tmp_path):
        """REPRO_SANITIZE=1: lock-order tracking on the shared cache
        finds no cycles and no errors across publish/adopt traffic."""
        script = tmp_path / "run.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.core import sanitizer\n"
            "from repro.compression.szlike import SharedCodebookCache\n"
            "cache = SharedCodebookCache()\n"
            "rng = np.random.default_rng(0)\n"
            "for i in range(8):\n"
            "    hist = (rng.dirichlet(np.full(256, 0.5)) * 10000).astype(np.int64) + 1\n"
            "    cache.lookup(f'k{i % 3}', hist)\n"
            "import pickle\n"
            "clone = pickle.loads(pickle.dumps(cache))\n"
            "clone.lookup('k0', (rng.dirichlet(np.full(256, 0.5)) * 10000).astype(np.int64) + 1)\n"
            "cache.close()\n"
            "rep = sanitizer.report()\n"
            "assert rep['enabled'], rep\n"
            "assert rep['instrumented_objects'] >= 2, rep\n"
            "assert rep['lock_acquisitions'] > 0, rep\n"
        )
        env = dict(os.environ, REPRO_SANITIZE="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.run(
            [sys.executable, str(script)], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
