"""The unified codec registry: construction, shared contract, chunking.

Every registered codec must pass the same contract suite — roundtrip,
error-bound behaviour, and nbytes/serialization parity — so the
compressing context can swap codecs freely.
"""

import numpy as np
import pytest

from repro.compression import (
    ChunkedCodec,
    ChunkedCompressedTensor,
    SZCompressor,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.compression.registry import dumps, loads, wire_header_nbytes
from repro.kernels import available_backends

#: constructor kwargs for codecs that want non-defaults in the suite
CODEC_SPECS = {
    "szlike": dict(error_bound=1e-3, entropy="huffman"),
    "jpeg": dict(quality=50),
}

#: every registered leaf codec (the chunked wrapper has its own class
#: below); a newly registered codec is pulled into the contract suite
#: automatically.  szlike additionally runs once per available kernel
#: backend (``szlike[numpy]``, and ``szlike[numba]`` where installed) so
#: every backend satisfies the full contract, not just a roundtrip.
LEAF_CODECS = sorted(n for n in available_codecs() if n != "chunked") + [
    f"szlike[{b}]" for b in available_backends()
]


def make(name):
    if name.startswith("szlike["):
        backend = name[len("szlike[") : -1]
        return get_codec(
            "szlike", kernel_backend=backend, **CODEC_SPECS.get("szlike", {})
        )
    return get_codec(name, **CODEC_SPECS.get(name, {}))


class TestRegistry:
    def test_required_codecs_registered(self):
        for name in ("szlike", "jpeg", "lossless", "sparse-lossless", "chunked"):
            assert name in available_codecs()

    def test_get_codec_constructs_with_kwargs(self):
        sz = get_codec("szlike", error_bound=5e-4, entropy="zlib")
        assert isinstance(sz, SZCompressor)
        assert sz.error_bound == 5e-4
        assert sz.entropy == "zlib"

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("zstd-turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec("szlike", SZCompressor)

    def test_chunked_constructible_by_name(self):
        ck = get_codec("chunked", inner="szlike", workers=2, error_bound=1e-3)
        assert isinstance(ck, ChunkedCodec)
        assert ck.error_bounded


@pytest.mark.parametrize("name", LEAF_CODECS)
class TestCodecContract:
    """The shared suite every registered codec must pass."""

    def test_metadata(self, name):
        codec = make(name)
        assert codec.name == name.split("[")[0]
        assert isinstance(codec.error_bounded, bool)
        assert isinstance(codec.lossless, bool)

    def test_roundtrip_shape_and_dtype(self, name, activation_tensor):
        codec = make(name)
        y = codec.decompress(codec.compress(activation_tensor, error_bound=1e-3))
        assert y.shape == activation_tensor.shape
        assert y.dtype == activation_tensor.dtype

    def test_error_bound_contract(self, name, activation_tensor):
        """error_bounded codecs honor the per-call bound; lossless ones
        reconstruct exactly; only the JPEG class has uncontrolled error."""
        codec = make(name)
        eb = 1e-2
        y = codec.decompress(codec.compress(activation_tensor, error_bound=eb))
        err = float(np.abs(activation_tensor.astype(np.float64) - y).max())
        if codec.lossless:
            np.testing.assert_array_equal(y, activation_tensor)
        elif codec.error_bounded:
            ulp = float(np.spacing(np.float32(np.abs(activation_tensor).max())))
            assert err <= eb + ulp
        else:
            assert np.isfinite(err)  # quality knob only — no bound to assert

    def test_nbytes_parity_with_serialization(self, name, activation_tensor):
        """nbytes == physical serialized length, wire header swapped for
        the fixed header charge (the accounting contract)."""
        codec = make(name)
        ct = codec.compress(activation_tensor, error_bound=1e-3)
        blob = dumps(ct)
        assert ct.nbytes == len(blob) - wire_header_nbytes(blob) + ct.header_nbytes

    def test_serialization_roundtrip_decompresses_identically(self, name, activation_tensor):
        codec = make(name)
        ct = codec.compress(activation_tensor, error_bound=1e-3)
        y1 = codec.decompress(ct)
        y2 = codec.decompress(loads(dumps(ct)))
        np.testing.assert_array_equal(y1, y2)

    def test_estimate_tracks_actual(self, name, activation_tensor):
        codec = make(name)
        est = codec.estimate_nbytes(activation_tensor, error_bound=1e-3)
        actual = codec.compress(activation_tensor, error_bound=1e-3).nbytes
        assert 0.5 * actual < est < 1.5 * actual


class TestChunkedCodec:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_equivalent_to_unchunked(self, activation_tensor, workers):
        """Chunks are independent along the batch axis for the SZ codec,
        so the reconstruction is bit-identical to the unchunked path."""
        sz = get_codec("szlike", error_bound=1e-3, entropy="zlib")
        ck = ChunkedCodec(sz, workers=workers, min_chunk_nbytes=1 << 14)
        y_single = sz.decompress(sz.compress(activation_tensor))
        ct = ck.compress(activation_tensor)
        assert isinstance(ct, ChunkedCompressedTensor)
        assert len(ct.chunks) > 1
        np.testing.assert_array_equal(ck.decompress(ct), y_single)

    def test_relative_mode_resolved_once(self, dense_tensor):
        """rel-mode bounds resolve on the whole tensor, not per chunk."""
        sz = get_codec("szlike", error_bound=1e-3, mode="rel", entropy="zlib")
        ck = ChunkedCodec(sz, workers=2, min_chunk_nbytes=1 << 14)
        ct = ck.compress(dense_tensor)
        assert len(ct.chunks) > 1
        ebs = {c.error_bound for c in ct.chunks}
        assert len(ebs) == 1
        assert ct.error_bound == sz.resolve_error_bound(dense_tensor)
        np.testing.assert_array_equal(
            ck.decompress(ct), sz.decompress(sz.compress(dense_tensor))
        )

    def test_small_tensor_not_split(self, rng):
        ck = ChunkedCodec(get_codec("szlike", error_bound=1e-3, entropy="zlib"), workers=4)
        x = rng.standard_normal((4, 2, 8, 8)).astype(np.float32)
        ct = ck.compress(x)
        assert len(ct.chunks) == 1
        np.testing.assert_array_equal(
            ck.decompress(ct), ck.inner.decompress(ck.inner.compress(x))
        )

    def test_error_bound_honored_through_chunks(self, activation_tensor):
        ck = ChunkedCodec("szlike", workers=4, min_chunk_nbytes=1 << 14, error_bound=1e-3)
        y = ck.roundtrip(activation_tensor, error_bound=5e-3)
        assert np.abs(activation_tensor - y).max() <= 5e-3 * (1 + 1e-6)

    def test_nbytes_sums_chunks(self, activation_tensor):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 14, error_bound=1e-3)
        ct = ck.compress(activation_tensor)
        from repro.compression.registry import CHUNK_HEADER_BYTES

        # huffman inner -> one shared codebook, charged once by the
        # container; the chunks themselves carry only references
        assert ct.shared_codebook is not None
        assert all(c.codebook_shared for c in ct.chunks)
        assert ct.nbytes == (
            sum(c.nbytes for c in ct.chunks)
            + CHUNK_HEADER_BYTES
            + ct.shared_codebook.nbytes
        )
        assert ct.original_nbytes == activation_tensor.nbytes
        assert ct.compression_ratio > 1

    def test_serialization_roundtrip(self, activation_tensor):
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 14, error_bound=1e-3)
        ct = ck.compress(activation_tensor)
        back = loads(dumps(ct))
        assert isinstance(back, ChunkedCompressedTensor)
        np.testing.assert_array_equal(ck.decompress(back), ck.decompress(ct))

    def test_lossless_inner_exact(self, activation_tensor):
        ck = ChunkedCodec("lossless", workers=2, min_chunk_nbytes=1 << 14)
        np.testing.assert_array_equal(ck.roundtrip(activation_tensor), activation_tensor)

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ChunkedCodec("szlike", workers=0)

    def test_rejects_bad_min_chunk_nbytes(self):
        with pytest.raises(ValueError):
            ChunkedCodec("szlike", min_chunk_nbytes=0)

    def test_rejects_bad_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ChunkedCodec("szlike", executor="gpu")


class TestProcessExecutor:
    """ChunkedCodec(executor='process'): the GIL-bound Huffman codebook
    build parallelizes across processes, with identical results."""

    @pytest.fixture()
    def proc_codec(self):
        ck = get_codec(
            "chunked", inner="szlike", workers=2, min_chunk_nbytes=1 << 14,
            executor="process", error_bound=1e-3, entropy="huffman",
        )
        yield ck
        ck.close()

    def test_matches_thread_executor_bit_for_bit(self, proc_codec, activation_tensor):
        th = ChunkedCodec(
            get_codec("szlike", error_bound=1e-3, entropy="huffman"),
            workers=2, min_chunk_nbytes=1 << 14,
        )
        ct_p = proc_codec.compress(activation_tensor)
        ct_t = th.compress(activation_tensor)
        assert len(ct_p.chunks) == len(ct_t.chunks) > 1
        assert ct_p.nbytes == ct_t.nbytes
        np.testing.assert_array_equal(
            proc_codec.decompress(ct_p), th.decompress(ct_t)
        )

    def test_closed_process_codec_degrades_to_inline(self, proc_codec, activation_tensor):
        """A closed (or unpickled) process-backed codec must never fork a
        new pool from a possibly multi-threaded process — it runs its
        chunks inline instead, with identical results."""
        ct = proc_codec.compress(activation_tensor)
        proc_codec.close()
        assert proc_codec._pool is None
        ct2 = proc_codec.compress(activation_tensor)
        assert proc_codec._pool is None  # not lazily recreated
        assert ct2.nbytes == ct.nbytes
        np.testing.assert_array_equal(
            proc_codec.decompress(ct2), proc_codec.decompress(ct)
        )

    def test_estimate_through_processes(self, proc_codec, activation_tensor):
        est = proc_codec.estimate_nbytes(activation_tensor)
        actual = proc_codec.compress(activation_tensor).nbytes
        assert 0.5 * actual < est < 1.5 * actual

    def test_single_worker_never_forks_a_pool(self):
        """workers=1 always runs inline, so no idle process is forked."""
        ck = ChunkedCodec("szlike", workers=1, executor="process", error_bound=1e-3)
        assert ck._pool is None
        x = np.linspace(0, 1, 256, dtype=np.float32).reshape(1, 4, 8, 8)
        np.testing.assert_allclose(ck.roundtrip(x), x, atol=1e-3)
        assert ck._pool is None

    def test_inner_codec_is_picklable(self):
        """SZCompressor carries a thread lock; pickling (what the process
        pool does per chunk) must survive and rebuild it."""
        import pickle

        sz = get_codec("szlike", error_bound=1e-3, entropy="huffman")
        clone = pickle.loads(pickle.dumps(sz))
        assert clone.error_bound == sz.error_bound
        x = np.linspace(0, 1, 64, dtype=np.float32).reshape(1, 1, 8, 8)
        np.testing.assert_array_equal(clone.roundtrip(x), sz.roundtrip(x))


class TestCacheAwareEstimate:
    """estimate_nbytes must follow the shared-codebook accounting: one
    container-owned book, not one per chunk (ROADMAP PR 4 open item)."""

    def _tensor(self, nbytes_scale=1):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((8 * nbytes_scale, 16, 28, 28)).astype(np.float32)
        return x * (rng.random(x.shape) > 0.5)

    def _codecs(self, **kw):
        shared = ChunkedCodec("szlike", workers=4, min_chunk_nbytes=1 << 16,
                              error_bound=1e-3, **kw)
        private = ChunkedCodec("szlike", workers=4, min_chunk_nbytes=1 << 16,
                               error_bound=1e-3, share_codebook=False, **kw)
        return shared, private

    def test_shared_estimate_charges_one_codebook(self):
        x = self._tensor()
        shared, private = self._codecs()
        n = shared._num_chunks(x)
        assert n > 1, "test needs an actually-chunked tensor"
        est_shared = shared.estimate_nbytes(x)
        est_private = private.estimate_nbytes(x)
        # exactly (n-1) per-chunk codebook charges removed
        assert est_private - est_shared == (n - 1) * shared.inner.dict_size

    def test_estimate_pins_actual_nbytes_under_sharing(self):
        """Regression: estimate vs actual for the shared-codebook path.

        Before the fix the estimate overcharged (n-1) codebooks (~3 KB
        on this tensor); now it must sit within 5% of the actual
        footprint and must not overcharge codebooks (the payload
        entropy estimate is a lower bound, so staying *below* actual +
        one codebook is the pinned direction)."""
        x = self._tensor()
        shared, _ = self._codecs()
        ct = shared.compress(x)
        assert ct.shared_codebook is not None
        actual = ct.nbytes
        est = shared.estimate_nbytes(x)
        assert abs(est - actual) / actual < 0.05
        # the old bug inflated the estimate by whole codebooks; pin that
        # the estimate no longer exceeds actual by even one book
        assert est < actual + shared.inner.dict_size

    def test_unshared_estimate_unchanged(self):
        x = self._tensor()
        _, private = self._codecs()
        ct = private.compress(x)
        est = private.estimate_nbytes(x)
        assert abs(est - ct.nbytes) / ct.nbytes < 0.05

    def test_non_huffman_inner_estimate_uncorrected(self):
        """Book-less entropy stages have no codebook to decharge."""
        ck = ChunkedCodec("szlike", workers=4, min_chunk_nbytes=1 << 16,
                          error_bound=1e-3, entropy="zlib")
        x = self._tensor()
        est = ck.estimate_nbytes(x)
        assert est > 0  # and no negative correction was applied
        per_chunk = [
            ck.inner.estimate_nbytes(p, error_bound=1e-3)
            for p in np.array_split(x, ck._num_chunks(x), axis=0)
        ]
        from repro.compression.registry import CHUNK_HEADER_BYTES

        assert est == pytest.approx(sum(per_chunk) + CHUNK_HEADER_BYTES)


class TestChunkedProfilerThreading:
    """Per-stage timings must survive the executor boundary (PR 4 open
    item): encode/decode totals are non-zero for chunked work under both
    the thread pool and the process pool."""

    def _run_chunked(self, executor):
        from repro.utils.profiler import StageProfiler

        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 8, 24, 24)).astype(np.float32)
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 14,
                          error_bound=1e-3, executor=executor,
                          share_codebook=False)
        try:
            assert ck._num_chunks(x) > 1
            with StageProfiler() as prof:
                ct = ck.compress(x)
                out = ck.decompress(ct)
            np.testing.assert_allclose(out, x, atol=1e-3)
        finally:
            ck.close()
        return ck._num_chunks(x), prof.snapshot()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_stage_totals_survive_executor(self, executor):
        n, snap = self._run_chunked(executor)
        assert snap["encode"]["seconds"] > 0
        assert snap["decode"]["seconds"] > 0
        # every chunk's stage work was reported, not just the caller's
        assert snap["encode"]["calls"] >= n
        assert snap["decode"]["calls"] >= n

    def test_no_profiler_no_overhead_path(self):
        """Without an active profiler the process path must not wrap ops
        (the merge machinery only engages when one is active)."""
        from repro.utils import profiler

        assert profiler.get_active() is None
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 8, 24, 24)).astype(np.float32)
        ck = ChunkedCodec("szlike", workers=2, min_chunk_nbytes=1 << 14,
                          error_bound=1e-3, executor="process")
        try:
            np.testing.assert_allclose(ck.roundtrip(x), x, atol=1e-3)
        finally:
            ck.close()
