"""Lorenzo predictor: exact invertibility and structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.szlike import lorenzo_decode, lorenzo_encode


class TestRoundtrip:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_exact_inverse_3d_input(self, rng, ndim):
        q = rng.integers(-1000, 1000, size=(5, 7, 9)).astype(np.int64)
        assert np.array_equal(lorenzo_decode(lorenzo_encode(q, ndim), ndim), q)

    @pytest.mark.parametrize("ndim", [1, 2])
    def test_exact_inverse_batched_axes(self, rng, ndim):
        q = rng.integers(-50, 50, size=(2, 3, 8, 8)).astype(np.int64)
        assert np.array_equal(lorenzo_decode(lorenzo_encode(q, ndim), ndim), q)

    def test_single_element(self):
        q = np.array([[7]], dtype=np.int64)
        assert np.array_equal(lorenzo_decode(lorenzo_encode(q, 2), 2), q)

    def test_large_values_no_overflow(self):
        q = np.array([2**40, -(2**40), 2**40], dtype=np.int64)
        assert np.array_equal(lorenzo_decode(lorenzo_encode(q, 1), 1), q)


class TestStructure:
    def test_constant_field_residuals_sparse(self):
        """A constant plane predicts perfectly except the first element."""
        q = np.full((16, 16), 42, dtype=np.int64)
        d = lorenzo_encode(q, 2)
        assert d[0, 0] == 42
        assert np.count_nonzero(d) == 1

    def test_linear_ramp_residuals_small(self):
        """Smooth (linear) data compresses to small residuals."""
        q = (np.arange(32)[:, None] + np.arange(32)[None, :]).astype(np.int64)
        d = lorenzo_encode(q, 2)
        assert np.abs(d[1:, 1:]).max() == 0  # 2-D Lorenzo is exact on planes

    def test_1d_is_first_difference(self, rng):
        q = rng.integers(-10, 10, size=20).astype(np.int64)
        d = lorenzo_encode(q, 1)
        assert d[0] == q[0]
        assert np.array_equal(d[1:], np.diff(q))

    def test_2d_matches_manual_stencil(self, rng):
        q = rng.integers(-10, 10, size=(6, 6)).astype(np.int64)
        d = lorenzo_encode(q, 2)
        # interior: q[i,j] - q[i-1,j] - q[i,j-1] + q[i-1,j-1]
        i, j = 3, 4
        expected = q[i, j] - q[i - 1, j] - q[i, j - 1] + q[i - 1, j - 1]
        assert d[i, j] == expected

    def test_batch_independence(self, rng):
        """Leading axes are carried: each feature map transforms alone."""
        q = rng.integers(-10, 10, size=(3, 4, 4)).astype(np.int64)
        d = lorenzo_encode(q, 2)
        for b in range(3):
            assert np.array_equal(d[b], lorenzo_encode(q[b], 2))


class TestValidation:
    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            lorenzo_encode(np.zeros((4, 4), dtype=np.float32), 2)

    @pytest.mark.parametrize("ndim", [0, 4])
    def test_rejects_bad_ndim(self, ndim):
        with pytest.raises(ValueError):
            lorenzo_encode(np.zeros((4, 4, 4, 4), dtype=np.int64), ndim)

    def test_rejects_insufficient_axes(self):
        with pytest.raises(ValueError):
            lorenzo_encode(np.zeros(5, dtype=np.int64), 2)


@given(
    arrays(np.int64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
           elements=st.integers(-(2**30), 2**30)),
    st.integers(1, 2),
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_2d(q, ndim):
    assert np.array_equal(lorenzo_decode(lorenzo_encode(q, ndim), ndim), q)
