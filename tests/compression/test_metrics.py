"""Compression metrics and distribution tests."""

import numpy as np
import pytest

from repro.compression import (
    compression_ratio,
    error_stats,
    max_abs_error,
    mse,
    normality_pvalue,
    psnr,
    uniformity_pvalue,
)


class TestBasicMetrics:
    def test_compression_ratio(self):
        x = np.zeros(1000, dtype=np.float32)
        assert compression_ratio(x, 1000) == pytest.approx(4.0)

    def test_compression_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            compression_ratio(np.zeros(4, dtype=np.float32), 0)

    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.5, 2.0])
        assert max_abs_error(a, b) == pytest.approx(1.0)

    def test_mse(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert mse(a, b) == pytest.approx(4.0)

    def test_psnr_identical_is_inf(self):
        x = np.linspace(0, 1, 100)
        assert psnr(x, x) == np.inf

    def test_psnr_decreases_with_error(self, rng):
        x = rng.standard_normal(1000)
        p1 = psnr(x, x + 0.01 * rng.standard_normal(1000))
        p2 = psnr(x, x + 0.1 * rng.standard_normal(1000))
        assert p1 > p2


class TestErrorStats:
    def test_moments(self, rng):
        e = rng.normal(0.5, 2.0, size=100_000)
        s = error_stats(e)
        assert s.mean == pytest.approx(0.5, abs=0.05)
        assert s.std == pytest.approx(2.0, rel=0.05)
        assert abs(s.kurtosis) < 0.2
        assert s.n == 100_000


class TestDistributionTests:
    def test_uniform_errors_pass_uniformity(self, rng):
        e = rng.uniform(-1e-3, 1e-3, size=5000)
        assert uniformity_pvalue(e, 1e-3) > 0.01

    def test_normal_errors_fail_uniformity(self, rng):
        e = np.clip(rng.normal(0, 3e-4, size=5000), -1e-3, 1e-3)
        assert uniformity_pvalue(e, 1e-3) < 0.01

    def test_normal_errors_pass_normality(self, rng):
        e = rng.normal(0, 1.0, size=3000)
        assert normality_pvalue(e) > 0.01

    def test_uniform_errors_fail_normality(self, rng):
        e = rng.uniform(-1, 1, size=5000)
        assert normality_pvalue(e) < 0.01

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity_pvalue(np.array([]), 1.0)
        with pytest.raises(ValueError):
            normality_pvalue(np.array([]))

    def test_constant_sample_not_normal(self):
        assert normality_pvalue(np.ones(100)) == 0.0


class TestSZErrorIsUniform:
    """Figure 3: the compressor's reconstruction error is uniform."""

    def test_error_uniformity_on_smooth_data(self, dense_tensor):
        from repro.compression import SZCompressor

        eb = 1e-3
        c = SZCompressor(eb, entropy="zlib", zero_filter=False)
        y = c.roundtrip(dense_tensor)
        err = (dense_tensor.astype(np.float64) - y).reshape(-1)
        # subsample to keep the KS test calibrated
        assert uniformity_pvalue(err[::7][:4000], eb) > 1e-4
        s = error_stats(err)
        # uniform(-eb, eb): std = eb/sqrt(3), mean 0
        assert s.std == pytest.approx(eb / np.sqrt(3), rel=0.1)
        assert abs(s.mean) < 0.1 * eb
