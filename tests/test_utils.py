"""Utility helpers: RNG normalization, byte accounting, scratch pool,
and the hot-path stage profiler."""

import numpy as np
import pytest

from repro.utils import ScratchPool, StageProfiler, ensure_rng, human_bytes, nbytes_of
from repro.utils import profiler as profiler_mod


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(7).standard_normal(5)
        b = ensure_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g


class TestNbytes:
    def test_array(self):
        assert nbytes_of(np.zeros(10, dtype=np.float32)) == 40

    def test_bytes(self):
        assert nbytes_of(b"abcd") == 4

    def test_nested(self):
        obj = {"a": np.zeros(2, dtype=np.float64), "b": [b"xy", np.zeros(1, dtype=np.int8)]}
        assert nbytes_of(obj) == 16 + 2 + 1

    def test_none_is_zero(self):
        assert nbytes_of(None) == 0

    def test_scalar(self):
        assert nbytes_of(3.14) == 8

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of(object())


class TestHumanBytes:
    @pytest.mark.parametrize("n,expected", [
        (512, "512.00 B"),
        (2048, "2.00 KB"),
        (9.30 * 1024**3, "9.30 GB"),
        (407 * 1024**2, "407.00 MB"),
    ])
    def test_formats(self, n, expected):
        assert human_bytes(n) == expected


class TestScratchPool:
    def test_reuse_across_shapes_same_dtype(self):
        pool = ScratchPool()
        with pool.take((4, 8), np.int64) as a:
            a[...] = 7
            first_base = a.base
        # a smaller request of the same dtype reuses the same flat buffer
        with pool.take((2, 3), np.int64) as b:
            assert b.base is first_base
            assert b.shape == (2, 3)
        assert pool.hits == 1 and pool.misses == 1

    def test_concurrent_takes_get_distinct_buffers(self):
        pool = ScratchPool()
        with pool.take((16,), np.float64) as a, pool.take((16,), np.float64) as b:
            assert a.base is not b.base
            a[...] = 1.0
            b[...] = 2.0
            assert float(a.sum()) == 16.0

    def test_thread_safety_under_contention(self):
        from concurrent.futures import ThreadPoolExecutor

        pool = ScratchPool()

        def work(i):
            with pool.take((1024,), np.int64) as buf:
                buf[...] = i
                return int(buf[0]) == i and int(buf[-1]) == i

        with ThreadPoolExecutor(max_workers=8) as ex:
            assert all(ex.map(work, range(64)))

    def test_cross_dtype_view_from_oversized_buffer(self):
        pool = ScratchPool()
        with pool.take((64,), np.float64):  # 512 bytes cached as float64
            pass
        assert pool.misses == 1
        # an int32 request fits in the cached float64 bytes: no fresh alloc
        with pool.take((100,), np.int32) as a:
            assert a.dtype == np.int32 and a.shape == (100,)
            a[...] = -5
            assert int(a.sum()) == -500
        assert pool.misses == 1
        assert pool.hits == 1
        assert pool.cross_dtype_hits == 1
        # the buffer went back to its original (float64) bucket
        with pool.take((64,), np.float64):
            pass
        assert pool.hits == 2 and pool.misses == 1

    def test_cross_dtype_picks_smallest_adequate_buffer(self):
        pool = ScratchPool()
        # concurrent takes allocate two distinct buffers
        with pool.take((1024,), np.float64), pool.take((16,), np.float32):
            pass
        # 40 bytes fit in the 64-byte float32 buffer; the 8 KiB float64
        # buffer must stay untouched for bigger requests
        with pool.take((10,), np.int32) as a:
            assert a.nbytes == 40
        assert pool.cross_dtype_hits == 1
        assert pool.free_bytes == 1024 * 8 + 16 * 4

    def test_cross_dtype_insufficient_bytes_allocates_fresh(self):
        pool = ScratchPool()
        with pool.take((4,), np.int8):  # 4 cached bytes
            pass
        with pool.take((128,), np.float64) as a:
            assert a.nbytes == 1024
        assert pool.cross_dtype_hits == 0
        assert pool.misses == 2

    def test_caps_bound_pool_footprint(self):
        pool = ScratchPool(max_per_dtype=2, max_total_bytes=1 << 20)
        for n in (100, 200, 300, 400):
            with pool.take((n,), np.float64):
                pass
        assert pool.free_bytes <= 2 * 400 * 8

    def test_clear_releases_everything(self):
        pool = ScratchPool()
        with pool.take((64,), np.float32):
            pass
        assert pool.free_bytes > 0
        pool.clear()
        assert pool.free_bytes == 0

    def test_rejects_bad_caps(self):
        with pytest.raises(ValueError):
            ScratchPool(max_per_dtype=0)


class TestStageProfiler:
    def test_inactive_stage_is_noop(self):
        assert profiler_mod.get_active() is None
        with profiler_mod.stage("anything"):
            pass  # no profiler active: nothing recorded, nothing raised

    def test_records_stages_when_active(self):
        p = StageProfiler()
        with p:
            assert profiler_mod.get_active() is p
            with profiler_mod.stage("encode"):
                pass
            with profiler_mod.stage("encode"):
                pass
            with profiler_mod.stage("decode"):
                pass
        assert profiler_mod.get_active() is None
        snap = p.snapshot()
        assert snap["encode"]["calls"] == 2
        assert snap["decode"]["calls"] == 1
        assert snap["encode"]["seconds"] >= 0.0

    def test_disabled_profiler_records_nothing(self):
        p = StageProfiler(enabled=False)
        with p, profiler_mod.stage("x"):
            pass
        assert p.snapshot() == {}

    def test_thread_safe_recording(self):
        from concurrent.futures import ThreadPoolExecutor

        p = StageProfiler()

        def work(_):
            for _ in range(50):
                p.record("s", 0.001)

        with ThreadPoolExecutor(max_workers=8) as ex:
            list(ex.map(work, range(8)))
        snap = p.snapshot()
        assert snap["s"]["calls"] == 400
        assert snap["s"]["seconds"] == pytest.approx(0.4)

    def test_report_lines_and_reset(self):
        p = StageProfiler()
        p.record("quantize", 0.5)
        lines = p.report_lines()
        assert any("quantize" in line for line in lines)
        p.reset()
        assert p.snapshot() == {}

    def test_trainer_knob_profiles_hot_path(self):
        """Trainer(profiler=True) activates stage timing end-to-end: the
        codec stages and the step stage accumulate during training."""
        from repro.core import AdaptiveConfig, CompressedTraining
        from repro.models import build_scaled_model
        from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

        net = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=1)
        opt = SGD(net.parameters(), lr=0.01)
        trainer = Trainer(net, opt, profiler=True)
        CompressedTraining(
            net, opt, config=AdaptiveConfig(W=5, warmup_iterations=1)
        ).attach(trainer)
        ds = SyntheticImageDataset(num_classes=4, image_size=16, seed=5)
        trainer.train(batches(ds, 4, 2, seed=1))
        snap = trainer.profiler.snapshot()
        trainer.close()
        for stage_name in ("step", "quantize", "predict", "encode", "decode"):
            assert stage_name in snap, f"missing stage {stage_name}"
            assert snap[stage_name]["calls"] > 0
        assert profiler_mod.get_active() is None  # close() deactivated it


class TestOverlapSummary:
    """Hidden-vs-exposed stage decomposition (the overlap-efficiency
    report the engine's speculative stages feed)."""

    def test_hidden_time_tracked_separately(self):
        p = StageProfiler()
        p.record("unpack-ahead", 0.3, hidden=True)
        p.record("unpack-ahead", 0.1)  # exposed: ran on the hot path
        snap = p.snapshot()
        assert snap["unpack-ahead"]["calls"] == 2
        assert snap["unpack-ahead"]["seconds"] == pytest.approx(0.4)
        assert snap["unpack-ahead"]["hidden_seconds"] == pytest.approx(0.3)
        summary = p.overlap_summary()
        assert summary["unpack-ahead"]["exposed_seconds"] == pytest.approx(0.1)
        assert summary["unpack-ahead"]["hidden_fraction"] == pytest.approx(0.75)

    def test_stage_context_hidden_flag(self):
        p = StageProfiler()
        with p:
            with profiler_mod.stage("bind-window", hidden=True):
                pass
            with profiler_mod.stage("encode"):
                pass
        snap = p.snapshot()
        assert snap["bind-window"]["hidden_seconds"] > 0.0
        assert "hidden_seconds" not in snap["encode"]

    def test_fully_exposed_stages_stay_out_of_summary(self):
        p = StageProfiler()
        p.record("encode", 0.2)
        assert "encode" not in p.overlap_summary()
        p.record("engine-wait", 0.1)  # always reported: it IS exposure
        assert p.overlap_summary()["engine-wait"]["hidden_fraction"] == 0.0

    def test_merge_folds_hidden_time(self):
        a, b = StageProfiler(), StageProfiler()
        a.record("unpack-ahead", 0.2, hidden=True)
        b.record("unpack-ahead", 0.3, hidden=True)
        a.merge(b.snapshot())
        assert a.snapshot()["unpack-ahead"]["hidden_seconds"] == pytest.approx(0.5)

    def test_reset_clears_hidden(self):
        p = StageProfiler()
        p.record("s", 0.1, hidden=True)
        p.reset()
        assert p.snapshot() == {}
        assert p.overlap_summary() == {}

    def test_engine_run_populates_overlap_summary(self):
        """An async training run records unpack-ahead as hidden time and
        engine-wait as exposure, so the summary decomposes the overlap."""
        from repro.core import AdaptiveConfig, AsyncEngine, CompressedTraining
        from repro.models import build_scaled_model
        from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

        net = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=1)
        opt = SGD(net.parameters(), lr=0.01)
        trainer = Trainer(net, opt, profiler=True)
        CompressedTraining(
            net, opt, config=AdaptiveConfig(W=5, warmup_iterations=1),
            engine=AsyncEngine(workers=2, prefetch_depth=2, unpack_depth=2),
        ).attach(trainer)
        ds = SyntheticImageDataset(num_classes=4, image_size=16, seed=5)
        trainer.train(batches(ds, 4, 3, seed=1))
        summary = trainer.profiler.overlap_summary()
        trainer.close()
        assert "unpack-ahead" in summary
        assert summary["unpack-ahead"]["hidden_seconds"] > 0.0
