"""Utility helpers: RNG normalization and byte accounting."""

import numpy as np
import pytest

from repro.utils import ensure_rng, human_bytes, nbytes_of


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(7).standard_normal(5)
        b = ensure_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g


class TestNbytes:
    def test_array(self):
        assert nbytes_of(np.zeros(10, dtype=np.float32)) == 40

    def test_bytes(self):
        assert nbytes_of(b"abcd") == 4

    def test_nested(self):
        obj = {"a": np.zeros(2, dtype=np.float64), "b": [b"xy", np.zeros(1, dtype=np.int8)]}
        assert nbytes_of(obj) == 16 + 2 + 1

    def test_none_is_zero(self):
        assert nbytes_of(None) == 0

    def test_scalar(self):
        assert nbytes_of(3.14) == 8

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of(object())


class TestHumanBytes:
    @pytest.mark.parametrize("n,expected", [
        (512, "512.00 B"),
        (2048, "2.00 KB"),
        (9.30 * 1024**3, "9.30 GB"),
        (407 * 1024**2, "407.00 MB"),
    ])
    def test_formats(self, n, expected):
        assert human_bytes(n) == expected
