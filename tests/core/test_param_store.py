"""Out-of-core parameter & optimizer state (ParamStore).

The contract under test: moving weights and optimizer slots into an
arena (with spill-to-disk pressure, with or without a lossless codec)
must be *invisible* to training — losses and final weights bit-identical
to resident training — while the tracker's persistent pool stays
byte-exact and every entry is released exactly once.
"""

import numpy as np
import pytest

from repro.compression import SZCompressor
from repro.core import (
    AdaptiveConfig,
    ByteArena,
    CompressedTraining,
    MemoryTracker,
    ParamStore,
    StoreSlots,
)
from repro.models import build_scaled_model
from repro.nn import SGD, Adam, ResidentSlots, SyntheticImageDataset, Trainer, batches


def small_net(rng=42):
    return build_scaled_model("alexnet", num_classes=8, image_size=16, rng=rng)


def train_run(opt_cls, opt_kwargs, param_store=None, iters=4, batch=4):
    net = small_net()
    opt = opt_cls(net.parameters(), **opt_kwargs)
    if param_store is not None:
        param_store.attach(net, opt)
    trainer = Trainer(net, opt)
    dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
    trainer.train(batches(dataset, batch, iters, seed=1))
    losses = trainer.history.losses.copy()
    if param_store is not None:
        param_store.detach()
    weights = np.concatenate([p.data.ravel() for p in net.parameters()])
    slots = {
        p.name: {s: opt.read_slot(p, s).copy() for s in opt.slot_names}
        for p in net.parameters()
    }
    return losses, weights, slots


class TestEntryLifecycle:
    def test_roundtrip_bit_exact(self, rng):
        store = ParamStore(budget_bytes=None)
        arr = rng.standard_normal((17, 5)).astype(np.float32)
        store.adopt("w", arr, layer_name="l1")
        np.testing.assert_array_equal(store.fetch("w"), arr)
        store.close()

    def test_roundtrip_bit_exact_under_budget_pressure(self, rng):
        """budget 0 spills every entry to disk immediately; reads must
        still be bit-exact, including after a mid-epoch write-back."""
        store = ParamStore(budget_bytes=0)
        arrays = {
            f"p{i}": rng.standard_normal((64, 33)).astype(np.float32) for i in range(8)
        }
        for name, arr in arrays.items():
            store.adopt(name, arr, layer_name=name)
        assert store.storage.spill_count >= len(arrays)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(store.fetch(name), arr)
        # write-back new values (the mid-epoch update path), reload
        updated = {n: a * 1.5 + 1.0 for n, a in arrays.items()}
        for name, arr in updated.items():
            store.writeback(name, arr)
        for name, arr in updated.items():
            np.testing.assert_array_equal(store.fetch(name), arr)
        store.close()

    def test_lossless_codec_roundtrip(self, rng):
        store = ParamStore(budget_bytes=0, codec="lossless")
        arr = rng.standard_normal((32, 32)).astype(np.float32)
        store.adopt("w", arr)
        np.testing.assert_array_equal(store.fetch("w"), arr)
        store.close()

    def test_lossy_codec_rejected(self):
        with pytest.raises(ValueError, match="lossless"):
            ParamStore(codec=SZCompressor(error_bound=1e-3))

    def test_release_exactly_once(self, rng):
        store = ParamStore(budget_bytes=None)
        arr = rng.standard_normal((4, 4)).astype(np.float32)
        store.adopt("w", arr)
        out = store.release("w")
        np.testing.assert_array_equal(out, arr)
        with pytest.raises(KeyError):
            store.release("w")
        store.close()

    def test_duplicate_adopt_rejected(self, rng):
        store = ParamStore(budget_bytes=None)
        store.adopt("w", np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError, match="already stored"):
            store.adopt("w", np.zeros(3, dtype=np.float32))
        store.close()


class TestDirtyTracking:
    """Per-entry digests skip write-backs of unchanged bytes — pure I/O
    elision, invisible to training results."""

    def test_unchanged_writeback_skipped(self, rng):
        store = ParamStore(budget_bytes=None)
        arr = rng.standard_normal((32, 8)).astype(np.float32)
        store.adopt("w", arr)
        store.writeback("w", arr.copy())  # identical bytes
        assert store.writeback_count == 0
        assert store.writeback_skipped == 1
        changed = arr * 1.5
        store.writeback("w", changed)
        assert store.writeback_count == 1
        np.testing.assert_array_equal(store.fetch("w"), changed)
        store.writeback("w", changed.copy())  # unchanged again
        assert store.writeback_count == 1
        assert store.writeback_skipped == 2
        store.close()

    def test_zero_grad_step_skips_all_slot_writebacks(self):
        """With zero gradients, SGD leaves velocity (0) and weights
        unchanged: the whole optimizer step must write nothing back."""
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0)
        store.attach(net, opt)
        opt.zero_grad()
        before_writes = store.writeback_count
        opt.step()
        assert store.writeback_count == before_writes  # nothing dirty
        # one weight + one velocity skip per parameter
        assert store.writeback_skipped == 2 * len(net.parameters())
        store.close()

    def test_real_training_writes_back_dirty_entries(self):
        """A real step mutates weights and velocity, so write-backs do
        happen; the skip path must not eat genuine updates (covered
        bit-exactly by TestTrainingEquivalence too)."""
        store = ParamStore(budget_bytes=0)
        losses, _, _ = train_run(SGD, dict(lr=0.01, momentum=0.9), store, iters=2)
        assert np.isfinite(losses).all()
        assert store.writeback_count > 0

    def test_dirty_tracking_can_be_disabled(self, rng):
        store = ParamStore(budget_bytes=None, dirty_tracking=False)
        arr = rng.standard_normal((8, 8)).astype(np.float32)
        store.adopt("w", arr)
        store.writeback("w", arr.copy())
        assert store.writeback_count == 1
        assert store.writeback_skipped == 0
        store.close()


class TestTrainingEquivalence:
    def test_sgd_losses_and_weights_bit_identical(self):
        kw = dict(lr=0.01, momentum=0.9, weight_decay=5e-4)
        base = train_run(SGD, kw)
        oov = train_run(SGD, kw, ParamStore(budget_bytes=0))
        np.testing.assert_array_equal(base[0], oov[0])  # losses
        np.testing.assert_array_equal(base[1], oov[1])  # weights
        for name in base[2]:  # momentum slots, 0 ulp
            np.testing.assert_array_equal(base[2][name]["velocity"], oov[2][name]["velocity"])

    def test_adam_losses_and_slots_bit_identical(self):
        kw = dict(lr=1e-3)
        base = train_run(Adam, kw)
        oov = train_run(Adam, kw, ParamStore(budget_bytes=0))
        np.testing.assert_array_equal(base[0], oov[0])
        np.testing.assert_array_equal(base[1], oov[1])
        for name in base[2]:
            for slot in ("exp_avg", "exp_avg_sq"):
                np.testing.assert_array_equal(base[2][name][slot], oov[2][name][slot])

    def test_lossless_codec_training_bit_identical(self):
        kw = dict(lr=0.01, momentum=0.9)
        base = train_run(SGD, kw)
        oov = train_run(SGD, kw, ParamStore(budget_bytes=0, codec="lossless"))
        np.testing.assert_array_equal(base[0], oov[0])
        np.testing.assert_array_equal(base[1], oov[1])

    def test_spill_and_reload_mid_epoch(self):
        """A tight budget forces spill + reload within a single epoch."""
        store = ParamStore(budget_bytes=8 << 10)
        losses, _, _ = train_run(SGD, dict(lr=0.01, momentum=0.9), store, iters=3)
        assert np.isfinite(losses).all()
        # every fetch after a spill is a reload from disk
        assert store.storage.spill_count > 0

    def test_stub_is_loud_outside_window(self):
        """Outside the JIT window, Parameter.data is a read-only NaN stub:
        accidental reads poison results, writes raise."""
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01)
        store = ParamStore(budget_bytes=None)
        store.attach(net, opt)
        p = net.parameters()[0]
        assert p.data.shape == p.shape
        assert np.isnan(p.data).all()
        with pytest.raises(ValueError):
            p.data[...] = 1.0
        store.detach()
        assert np.isfinite(p.data).all()


class TestAccounting:
    def test_tracker_persistent_byte_exact(self):
        tracker = MemoryTracker()
        store = ParamStore(budget_bytes=0, tracker=tracker)
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store.attach(net, opt)
        # raw tobytes encoding: stored == raw == physical arena bytes
        assert tracker.persistent_stored_bytes == store.stored_nbytes
        assert tracker.persistent_raw_bytes == store.raw_nbytes
        assert store.stored_nbytes == store.storage.total_nbytes
        # one data entry + one velocity slot per parameter, 4 bytes/elem
        assert store.raw_nbytes == 2 * sum(p.size * 4 for p in net.parameters())
        # a step rewrites every entry; books must still balance
        trainer = Trainer(net, opt)
        dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
        trainer.train(batches(dataset, 4, 2, seed=1))
        assert tracker.persistent_stored_bytes == store.stored_nbytes
        assert store.stored_nbytes == store.storage.total_nbytes
        # detach releases every entry exactly once: books drop to zero
        store.detach()
        assert tracker.persistent_stored_bytes == 0
        assert tracker.persistent_raw_bytes == 0
        assert len(store) == 0

    def test_peak_includes_persistent_pool(self):
        tracker = MemoryTracker()
        store = ParamStore(budget_bytes=None, tracker=tracker)
        store.adopt("w", np.zeros((1000,), dtype=np.float32))
        assert tracker.peak_stored_bytes >= 4000
        store.close()

    def test_arena_budget_respected(self):
        """Without async staging, arena-resident bytes can exceed the
        budget only transiently, by at most one entry (put charges the
        new entry before the FIFO spill relieves it)."""
        budget = 8 << 10
        store = ParamStore(budget_bytes=budget)
        train_run(SGD, dict(lr=0.01, momentum=0.9), store, iters=2)
        largest = max(p.size * 4 for p in small_net().parameters())
        assert store.storage.peak_in_memory_nbytes <= budget + largest

    def test_materialized_watermark_below_total(self):
        """JIT binding keeps at most ~one layer resident: the peak
        materialized bytes must be far below the full parameter set."""
        store = ParamStore(budget_bytes=0)
        train_run(SGD, dict(lr=0.01, momentum=0.9), store, iters=2)
        # detach() already ran, so compare against the footprint of an
        # identical model: data + velocity, 4 bytes per element.
        total = 2 * sum(p.size * 4 for p in small_net().parameters())
        assert 0 < store.peak_materialized_nbytes < total
        assert store.materialized_nbytes == 0  # all unbound at rest


class TestSessionIntegration:
    def _session_run(self, param_storage, engine):
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(net, opt)
        arena = ByteArena(budget_bytes=32 << 10)
        session = CompressedTraining(
            net,
            opt,
            compressor=SZCompressor(entropy="zlib", zero_filter=True),
            config=AdaptiveConfig(W=5, warmup_iterations=2),
            storage=arena,
            param_storage=param_storage,
            engine=engine,
        ).attach(trainer)
        dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
        trainer.train(batches(dataset, 4, 4, seed=1))
        losses = trainer.history.losses.copy()
        stats = (session, trainer)
        trainer.close()
        arena.close()
        return losses, stats

    def test_param_storage_knob_bit_identical_sync_async(self):
        l_none, _ = self._session_run(None, "sync")
        l_sync, (sess_s, _) = self._session_run(ParamStore(budget_bytes=0), "sync")
        l_async, (sess_a, _) = self._session_run(ParamStore(budget_bytes=0), "async")
        np.testing.assert_array_equal(l_none, l_sync)
        np.testing.assert_array_equal(l_sync, l_async)
        # the session folded the store's books into its own tracker and
        # close() released them
        assert sess_s.tracker.persistent_stored_bytes == 0
        assert sess_a.tracker.persistent_stored_bytes == 0

    def test_async_engine_stages_upcoming_params(self):
        """The reverse-order prefetch must stage spilled parameter bytes
        for upcoming layers (budget 0 => every fetch would otherwise be
        a cold disk read)."""
        _, (session, _) = self._session_run(ParamStore(budget_bytes=0), "async")
        assert session.engine.param_stages_scheduled > 0
        assert session.param_store.storage.prefetch_count > 0

    def test_byte_arena_accepted_as_param_storage(self):
        arena = ByteArena(budget_bytes=0)
        losses, (session, _) = self._session_run(arena, "sync")
        assert np.isfinite(losses).all()
        assert arena.spill_count > 0
        arena.close()

    def test_trainer_knob(self):
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0)
        with Trainer(net, opt, param_store=store) as trainer:
            dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
            trainer.train(batches(dataset, 4, 2, seed=1))
            assert isinstance(opt.state, StoreSlots)
        # close hook restored residency
        assert isinstance(opt.state, ResidentSlots)
        assert np.isfinite(net.parameters()[0].data).all()

    def test_write_slot_casts_to_entry_dtype(self):
        """A float64 write to a float32 store-backed slot must cast (the
        resident in-place assignment semantics), not corrupt the entry."""
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0)
        store.attach(net, opt)
        p = net.parameters()[0]
        opt.write_slot(p, "velocity", np.full(p.shape, 2.5))  # float64
        v = opt.read_slot(p, "velocity")
        assert v.dtype == np.float32
        np.testing.assert_array_equal(v, np.float32(2.5))
        with pytest.raises(ValueError):  # wrong size fails at write time
            opt.write_slot(p, "velocity", np.zeros(3))
        store.close()

    def test_snapshot_roundtrip_store_backed(self, tmp_path):
        """Snapshots must read/write through the store while attached —
        never the NaN stubs — and raise loudly without a store-aware
        optimizer."""
        from repro.nn import load_snapshot, save_snapshot

        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0)
        store.attach(net, opt)
        path = str(tmp_path / "snap.npz")
        save_snapshot(path, net, opt)
        with np.load(path) as data:
            for p in net.parameters():
                assert np.isfinite(data[f"param/{p.name}"]).all()
        load_snapshot(path, net, opt)
        with pytest.raises(RuntimeError, match="store-backed"):
            save_snapshot(path, net)  # no optimizer: store unreachable
        store.close()

    def test_double_attach_rejected(self):
        net = small_net()
        store = ParamStore(budget_bytes=None)
        store.attach(net)
        with pytest.raises(RuntimeError, match="already attached"):
            store.attach(net)
        store.close()
