"""Error-propagation model: formulas, inversion, and agreement with the
real conv backward pass under error injection (the Section 3.2 claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import conv_gradient_error_sample
from repro.core import (
    PAPER_COEFFICIENT_A,
    THEORY_COEFFICIENT_A,
    error_bound_for_sigma,
    fit_coefficient,
    predict_sigma,
)
from repro.nn import Conv2D


class TestFormulas:
    def test_sigma_scales_linearly_with_eb(self):
        s1 = predict_sigma(1e-3, 0.5, 1000)
        s2 = predict_sigma(2e-3, 0.5, 1000)
        assert s2 == pytest.approx(2 * s1)

    def test_sigma_sqrt_in_elements(self):
        """Paper: '2x increase of elements results in sqrt(2)x sigma'."""
        s1 = predict_sigma(1e-3, 0.5, 1000)
        s2 = predict_sigma(1e-3, 0.5, 2000)
        assert s2 == pytest.approx(np.sqrt(2) * s1)

    def test_sigma_sqrt_in_sparsity(self):
        """Eq. 7: sigma' = sigma * sqrt(R)."""
        dense = predict_sigma(1e-3, 0.5, 1000, nonzero_ratio=1.0)
        half = predict_sigma(1e-3, 0.5, 1000, nonzero_ratio=0.5)
        assert half == pytest.approx(dense * np.sqrt(0.5))

    def test_inversion_roundtrip(self):
        eb = error_bound_for_sigma(1e-4, 0.3, 4096, nonzero_ratio=0.4)
        sigma = predict_sigma(eb, 0.3, 4096, nonzero_ratio=0.4)
        assert sigma == pytest.approx(1e-4)

    def test_theory_coefficient_is_uniform_std(self):
        assert THEORY_COEFFICIENT_A == pytest.approx(1 / np.sqrt(3))

    def test_paper_coefficient_documented(self):
        assert PAPER_COEFFICIENT_A == 0.32

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_sigma(-1.0, 0.5, 100)
        with pytest.raises(ValueError):
            predict_sigma(1e-3, 0.5, 0)
        with pytest.raises(ValueError):
            predict_sigma(1e-3, 0.5, 100, nonzero_ratio=1.5)
        with pytest.raises(ValueError):
            error_bound_for_sigma(0.0, 0.5, 100)
        with pytest.raises(ValueError):
            error_bound_for_sigma(1e-4, 0.0, 100)


class TestFit:
    def test_recovers_planted_coefficient(self, rng):
        a_true = 0.47
        ebs = rng.uniform(1e-4, 1e-2, 30)
        ls = rng.uniform(0.1, 2.0, 30)
        ms = rng.integers(100, 10_000, 30)
        sig = a_true * ls * np.sqrt(ms) * ebs
        a = fit_coefficient(sig, ebs, ls, ms)
        assert a == pytest.approx(a_true, rel=1e-6)

    def test_fit_with_sparsity(self, rng):
        a_true = 0.6
        ebs = rng.uniform(1e-4, 1e-2, 20)
        ls = rng.uniform(0.1, 2.0, 20)
        ms = rng.integers(100, 10_000, 20)
        rs = rng.uniform(0.2, 1.0, 20)
        sig = a_true * ls * np.sqrt(ms * rs) * ebs
        a = fit_coefficient(sig, ebs, ls, ms, rs)
        assert a == pytest.approx(a_true, rel=1e-6)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_coefficient([], [], [], [])
        with pytest.raises(ValueError):
            fit_coefficient([1.0], [0.0], [0.0], [1])


class TestAgainstRealBackward:
    """The load-bearing claim: the formula predicts the measured sigma of
    the *actual* conv backward pass under injected activation error."""

    @pytest.mark.parametrize("n,c,h,cout,k", [(8, 4, 12, 6, 3), (16, 8, 8, 4, 3)])
    def test_dense_prediction_within_15pct(self, rng, n, c, h, cout, k):
        x = rng.standard_normal((n, c, h, h)).astype(np.float32) + 3.0  # dense
        conv = Conv2D(c, cout, k, padding=1, rng=5)
        ho = h  # padded same-size
        dout = rng.standard_normal((n, cout, ho, ho)).astype(np.float32) / n
        eb = 1e-3
        errs = conv_gradient_error_sample(conv, x, dout, eb, trials=4, rng=9)
        measured = errs.std()
        lrms = float(np.sqrt((dout.astype(np.float64) ** 2).mean()))
        predicted = predict_sigma(eb, lrms, n * ho * ho)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_sparse_prediction_needs_sqrt_r(self, rng):
        """With zeros preserved, only the sqrt(R)-corrected prediction fits."""
        x = np.maximum(rng.standard_normal((8, 4, 16, 16)), 0).astype(np.float32)
        r = np.count_nonzero(x) / x.size
        conv = Conv2D(4, 6, 3, padding=1, rng=5)
        dout = rng.standard_normal((8, 6, 16, 16)).astype(np.float32) / 8
        eb = 1e-3
        errs = conv_gradient_error_sample(
            conv, x, dout, eb, trials=4, preserve_zeros=True, rng=9
        )
        measured = errs.std()
        lrms = float(np.sqrt((dout.astype(np.float64) ** 2).mean()))
        with_r = predict_sigma(eb, lrms, 8 * 16 * 16, nonzero_ratio=r)
        without_r = predict_sigma(eb, lrms, 8 * 16 * 16)
        assert measured == pytest.approx(with_r, rel=0.15)
        assert abs(measured - without_r) > abs(measured - with_r)

    def test_fitted_coefficient_is_stable_across_layers(self, rng):
        """Figure 8 in miniature: one coefficient fits every layer."""
        fits = []
        for (n, c, h, cout) in [(8, 4, 12, 6), (4, 8, 16, 8), (16, 2, 8, 4)]:
            x = (rng.standard_normal((n, c, h, h)) + 2.5).astype(np.float32)
            conv = Conv2D(c, cout, 3, padding=1, rng=5)
            dout = rng.standard_normal((n, cout, h, h)).astype(np.float32) / n
            eb = 1e-3
            errs = conv_gradient_error_sample(conv, x, dout, eb, trials=3, rng=9)
            lrms = float(np.sqrt((dout.astype(np.float64) ** 2).mean()))
            a = fit_coefficient([errs.std()], [eb], [lrms], [n * h * h])
            fits.append(a / np.sqrt(3) * np.sqrt(3))  # raw coefficient
        fits = np.array(fits)
        assert fits.std() / fits.mean() < 0.15
        assert fits.mean() == pytest.approx(THEORY_COEFFICIENT_A, rel=0.15)


@given(
    st.floats(1e-6, 1e-1), st.floats(1e-3, 10.0),
    st.integers(1, 10**6), st.floats(0.01, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_property_inversion(sigma, lscale, m, r):
    eb = error_bound_for_sigma(sigma, lscale, m, nonzero_ratio=r)
    back = predict_sigma(eb, lscale, m, nonzero_ratio=r)
    assert back == pytest.approx(sigma, rel=1e-9)
