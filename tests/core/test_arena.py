"""ByteArena storage: budget/spill mechanics, byte-exact accounting, and
the release-exactly-once contract of the compressing context."""

import os

import numpy as np
import pytest

from repro.compression import SZCompressor, get_codec
from repro.compression.registry import dumps as codec_dumps
from repro.core import ByteArena, CompressingContext, MemoryTracker, PackedActivation
from repro.nn import Conv2D, SGD, Sequential, ReLU, Flatten, Linear, MaxPool2D


class TestByteArena:
    def test_put_get_pop(self):
        with ByteArena(budget_bytes=1 << 20) as a:
            k = a.put(b"hello")
            assert k in a
            assert a.get(k) == b"hello"
            assert a.pop(k) == b"hello"
            assert k not in a
            assert len(a) == 0

    def test_budget_spills_oldest_to_disk(self, tmp_path):
        a = ByteArena(budget_bytes=250, spill_dir=str(tmp_path))
        keys = [a.put(bytes([i]) * 100) for i in range(4)]
        # 400 live bytes against a 250 budget: the two oldest spill
        assert a.in_memory_nbytes <= 250
        assert a.spill_count == 2
        assert a.spilled_nbytes == 200
        assert len(os.listdir(tmp_path)) == 2
        # spilled entries read back intact
        for i, k in enumerate(keys):
            assert a.get(k) == bytes([i]) * 100
        a.close()

    def test_pop_spilled_removes_file(self, tmp_path):
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        k = a.put(b"x" * 64)
        assert a.in_memory_nbytes == 0
        assert a.pop(k) == b"x" * 64
        assert a.spilled_nbytes == 0
        assert os.listdir(tmp_path) == []
        a.close()

    def test_no_budget_never_spills(self):
        a = ByteArena(budget_bytes=None)
        for i in range(10):
            a.put(b"y" * 1000)
        assert a.spill_count == 0
        assert a.in_memory_nbytes == 10_000
        a.close()

    def test_peak_statistics(self):
        a = ByteArena(budget_bytes=None)
        k1 = a.put(b"a" * 100)
        k2 = a.put(b"b" * 100)
        a.discard(k1)
        a.put(b"c" * 50)
        assert a.peak_in_memory_nbytes == 200
        assert a.total_nbytes == 150
        a.close()

    def test_peak_counts_resident_bytes_before_spill(self):
        """Every blob is resident before eviction relieves the budget,
        and the peak must record that true high-water mark."""
        a = ByteArena(budget_bytes=0)
        a.put(b"z" * 500)
        assert a.peak_in_memory_nbytes == 500
        assert a.in_memory_nbytes == 0
        a.close()

    def test_close_removes_owned_spill_dir(self):
        a = ByteArena(budget_bytes=0)
        a.put(b"z" * 32)
        spill_dir = a._spill_dir
        assert spill_dir is not None and os.path.isdir(spill_dir)
        a.close()
        assert not os.path.exists(spill_dir)
        with pytest.raises(RuntimeError):
            a.put(b"after close")

    def test_shared_spill_dir_no_collision(self, tmp_path):
        """Two arenas spilling into one directory must not clobber each
        other's entries, and closing one must leave the other's files."""
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        b = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        ka = a.put(b"A" * 50)
        kb = b.put(b"B" * 50)
        assert a.get(ka) == b"A" * 50
        assert b.get(kb) == b"B" * 50
        a.close()
        assert b.get(kb) == b"B" * 50
        b.close()

    def test_close_deletes_spill_files_in_user_dir(self, tmp_path):
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        a.put(b"x" * 64)
        a.put(b"y" * 64)
        assert len(os.listdir(tmp_path)) == 2
        a.close()
        assert os.listdir(tmp_path) == []  # files gone, directory kept
        assert os.path.isdir(tmp_path)

    def test_unknown_key_rejected(self):
        with ByteArena() as a:
            with pytest.raises(KeyError):
                a.get(99)
            a.discard(99)  # no-op by contract

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            ByteArena(budget_bytes=-1)

    def test_prefetch_stages_spilled_entries(self, tmp_path):
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        keys = [a.put(bytes([i]) * 64) for i in range(4)]
        assert a.prefetch(keys[:2]) == 2
        assert a.prefetch_count == 2
        assert a.prefetched_nbytes == 128
        # staging is a cache: accounting and disk entries untouched
        assert a.spilled_nbytes == 256
        # re-prefetching already-staged keys is a no-op
        assert a.prefetch(keys[:2]) == 0
        assert a.prefetch_count == 2
        # first get consumes the staged copy (one-shot handoff)...
        assert a.get(keys[0]) == bytes([0]) * 64
        assert a.prefetched_nbytes == 64
        # ...while the entry itself stays live and re-readable from disk
        assert a.get(keys[0]) == bytes([0]) * 64
        # discard drops an unconsumed staged copy with the entry
        a.discard(keys[1])
        assert a.prefetched_nbytes == 0
        for i, k in enumerate(keys[2:], start=2):
            assert a.get(k) == bytes([i]) * 64
        a.close()
        assert a.prefetched_nbytes == 0

    def test_prefetch_unknown_and_resident_keys_skipped(self):
        with ByteArena(budget_bytes=None) as a:
            k = a.put(b"resident")
            assert a.prefetch([k, 999]) == 0

    def test_prefetch_max_bytes_caps_staging_cache(self, tmp_path):
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        keys = [a.put(bytes([i]) * 64) for i in range(4)]
        # cap admits entries until the cache would exceed max_bytes
        assert a.prefetch(keys, max_bytes=128) == 2
        assert a.prefetched_nbytes == 128
        # cache full: further capped prefetches stage nothing
        assert a.prefetch(keys[2:], max_bytes=128) == 0
        # consuming a staged copy frees room for the next one
        a.get(keys[0])
        assert a.prefetch(keys[2:], max_bytes=128) == 1
        a.close()

    def test_prefetch_max_bytes_zero_still_admits_one(self, tmp_path):
        """Progress guarantee: an empty staging cache admits one entry
        even when max_bytes is smaller than the entry (the budget-0
        spill-everything regime)."""
        a = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        keys = [a.put(b"x" * 64) for _ in range(2)]
        assert a.prefetch(keys, max_bytes=0) == 1
        assert a.prefetched_nbytes == 64
        assert a.prefetch(keys, max_bytes=0) == 0  # cache non-empty now
        a.close()


class TestByteArenaThreadSafety:
    """Concurrent engine workers must not corrupt the FIFO, double-spill,
    or tear the byte accounting."""

    def test_concurrent_put_get_discard(self, tmp_path):
        import threading

        a = ByteArena(budget_bytes=2048, spill_dir=str(tmp_path))
        errors = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(100):
                    size = int(rng.integers(16, 256))
                    payload = bytes([seed]) * size
                    k = a.put(payload)
                    assert a.get(k) == payload
                    a.prefetch((k,))
                    assert a.pop(k) == payload
                    assert k not in a
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(a) == 0
        assert a.in_memory_nbytes == 0
        assert a.spilled_nbytes == 0
        assert a.prefetched_nbytes == 0
        a.close()
        assert os.listdir(tmp_path) == []

    def test_concurrent_spill_pressure_exact_accounting(self):
        import threading

        a = ByteArena(budget_bytes=0)  # every put spills immediately
        keys_per_thread = {}

        def producer(tid):
            keys_per_thread[tid] = [a.put(bytes([tid]) * 128) for _ in range(25)]

        threads = [threading.Thread(target=producer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.spill_count == 100
        assert a.spilled_nbytes == 100 * 128
        for tid, keys in keys_per_thread.items():
            for k in keys:
                assert a.pop(k) == bytes([tid]) * 128
        assert a.total_nbytes == 0
        a.close()


@pytest.fixture
def conv():
    return Conv2D(3, 2, 3, rng=1, name="c")


@pytest.fixture
def act4d(rng):
    return np.maximum(rng.standard_normal((2, 3, 16, 16)), 0).astype(np.float32)


class TestArenaBackedContext:
    def test_pack_stores_bytes_and_unpack_restores(self, conv, act4d):
        with ByteArena(budget_bytes=1 << 20) as arena:
            ctx = CompressingContext(
                SZCompressor(entropy="zlib"), initial_rel_eb=1e-4, storage=arena
            )
            h = ctx.pack(conv, "x", act4d)
            assert isinstance(h, PackedActivation)
            assert h.arena_key is not None and h.compressed is None
            assert len(arena) == 1
            y = ctx.unpack(conv, "x", h)
            assert np.abs(act4d - y).max() <= ctx.error_bounds["c"] * (1 + 1e-6)
            assert len(arena) == 0  # released on unpack

    def test_tracker_numbers_are_physical_bytes(self, conv, act4d):
        """Under arena storage the tracker charge equals len(dumps(ct))."""
        tracker = MemoryTracker()
        with ByteArena(budget_bytes=None) as arena:
            ctx = CompressingContext(
                SZCompressor(entropy="zlib"), tracker=tracker, storage=arena
            )
            comp = SZCompressor(entropy="zlib")
            eb_probe = CompressingContext(comp, initial_rel_eb=1e-3)
            expected = len(codec_dumps(comp.compress(act4d, eb_probe.resolve_error_bound(conv, act4d))))
            h = ctx.pack(conv, "x", act4d)
            assert h.stored_nbytes == expected
            assert arena.in_memory_nbytes == expected
            assert tracker.per_layer["c"].stored_bytes == expected

    def test_spill_to_disk_roundtrips(self, conv, act4d, tmp_path):
        arena = ByteArena(budget_bytes=0, spill_dir=str(tmp_path))
        ctx = CompressingContext(
            SZCompressor(entropy="zlib"), initial_rel_eb=1e-4, storage=arena
        )
        h = ctx.pack(conv, "x", act4d)
        assert arena.spill_count == 1
        assert arena.in_memory_nbytes == 0
        y = ctx.unpack(conv, "x", h)
        assert np.abs(act4d - y).max() <= ctx.error_bounds["c"] * (1 + 1e-6)
        arena.close()

    def test_repeated_unpack_still_works_after_release(self, conv, act4d):
        with ByteArena() as arena:
            ctx = CompressingContext(
                SZCompressor(entropy="zlib"), storage=arena
            )
            h = ctx.pack(conv, "x", act4d)
            y1 = ctx.unpack(conv, "x", h)
            y2 = ctx.unpack(conv, "x", h)  # bytes already released
            np.testing.assert_array_equal(y1, y2)

    def test_relu_recompute_with_unbounded_codec(self, conv, rng):
        """Codecs without an error bound (jpeg/lossless) get the ReLU
        recompute but no eb-band clamp — and must not crash."""
        ctx = CompressingContext(get_codec("jpeg", quality=75))
        ctx.relu_recompute_layers.add("c")
        x = np.maximum(rng.standard_normal((1, 3, 16, 16)), 0).astype(np.float32)
        h = ctx.pack(conv, "x", x)
        y = ctx.unpack(conv, "x", h)
        assert (y >= 0).all()

    def test_chunked_codec_through_arena(self, conv, rng):
        x = np.maximum(rng.standard_normal((4, 3, 16, 16)), 0).astype(np.float32)
        ck = get_codec("chunked", inner="szlike", workers=2, min_chunk_nbytes=1 << 10,
                       error_bound=1e-3, entropy="zlib")
        with ByteArena() as arena:
            ctx = CompressingContext(ck, initial_rel_eb=1e-4, storage=arena)
            h = ctx.pack(conv, "x", x)
            y = ctx.unpack(conv, "x", h)
            assert np.abs(x - y).max() <= ctx.error_bounds["c"] * (1 + 1e-6)


class TestReleaseExactlyOnce:
    """Regression for the double-counted release: unpack + later discard
    must credit the tracker's live-byte counters only once."""

    def _packed(self, tracker, storage=None):
        ctx = CompressingContext(
            SZCompressor(entropy="zlib"), tracker=tracker, storage=storage
        )
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        return ctx, conv, x, ctx.pack(conv, "x", x)

    def test_unpack_then_discard_releases_once(self):
        t = MemoryTracker()
        ctx, conv, x, h = self._packed(t)
        assert t._live_raw == x.nbytes
        ctx.unpack(conv, "x", h)
        assert t._live_raw == 0 and t._live_stored == 0
        # the handle still sits in Layer._saved; a later clear_saved
        # discards it — this must NOT go negative
        ctx.discard(conv, "x", h)
        assert t._live_raw == 0 and t._live_stored == 0

    def test_double_discard_releases_once(self):
        t = MemoryTracker()
        ctx, conv, x, h = self._packed(t)
        ctx.discard(conv, "x", h)
        ctx.discard(conv, "x", h)
        assert t._live_raw == 0 and t._live_stored == 0

    def test_repeated_unpack_releases_once(self):
        t = MemoryTracker()
        ctx, conv, x, h = self._packed(t)
        ctx.unpack(conv, "x", h)
        ctx.unpack(conv, "x", h)
        assert t._live_raw == 0 and t._live_stored == 0

    def test_codec_policy_releases_once(self):
        from repro.core import CodecPolicy

        t = MemoryTracker()
        pol = CodecPolicy(SZCompressor(entropy="zlib"), tracker=t)
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        x = np.random.default_rng(0).standard_normal((1, 3, 8, 8)).astype(np.float32)
        h = pol.pack(conv, "x", x)
        pol.unpack(conv, "x", h)
        pol.discard(conv, "x", h)
        assert t._live_raw == 0 and t._live_stored == 0

    def test_layer_load_then_clear_saved(self):
        """End-to-end through the Layer plumbing: _load leaves the handle
        in _saved, clear_saved discards it afterwards."""
        t = MemoryTracker()
        ctx = CompressingContext(SZCompressor(entropy="zlib"), tracker=t)
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        conv.saved_ctx = ctx
        x = np.random.default_rng(0).standard_normal((1, 3, 8, 8)).astype(np.float32)
        conv._save("x", x)
        conv._load("x")  # unpack without popping
        conv.clear_saved()  # discard the same handle
        assert t._live_raw == 0 and t._live_stored == 0


class TestArenaTraining:
    def test_training_with_spill_stays_correct(self):
        """quickstart-scale training through a tight arena budget: spills
        happen, learning proceeds, live counters return to zero."""
        from repro.core import AdaptiveConfig, CompressedTraining
        from repro.nn import SyntheticImageDataset, Trainer, batches

        net = Sequential([
            Conv2D(3, 6, 3, padding=1, rng=1), ReLU(), MaxPool2D(2),
            Conv2D(6, 8, 3, padding=1, rng=2), ReLU(), MaxPool2D(2),
            Flatten(), Linear(8 * 4 * 4, 4, rng=3),
        ])
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        tr = Trainer(net, opt)
        with ByteArena(budget_bytes=2048) as arena:  # tiny: force spills
            sess = CompressedTraining(
                net, opt,
                compressor=SZCompressor(entropy="zlib"),
                config=AdaptiveConfig(W=5, warmup_iterations=2),
                storage=arena,
            ).attach(tr)
            ds = SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)
            tr.train(batches(ds, 8, 6, seed=0))
            assert arena.spill_count > 0
            assert len(arena) == 0  # every pack released by backward
            assert sess.tracker._live_raw == 0
            assert all(r > 1 for r in sess.ratio_history())


class TestGroupBudgets:
    """Per-group sub-budgets: entries tagged with put(group=...) spill
    independently of (and before) the arena-wide FIFO budget."""

    def test_group_overflow_spills_only_that_group(self):
        with ByteArena(budget_bytes=None) as arena:
            arena.set_group_budget("hot", 64)
            k_cold = arena.put(b"c" * 100, group="cold")
            k1 = arena.put(b"a" * 40, group="hot")
            k2 = arena.put(b"b" * 40, group="hot")  # pushes hot to 80 > 64
            stats = arena.group_stats()
            assert stats["hot"]["spill_count"] == 1
            assert stats["hot"]["in_memory_nbytes"] == 40
            assert stats["hot"]["spilled_nbytes"] == 40
            # the untagged-budget group is untouched
            assert stats["cold"]["spill_count"] == 0
            assert stats["cold"]["in_memory_nbytes"] == 100
            # oldest-first within the group, and reads stay exact
            assert arena.get(k1) == b"a" * 40
            assert arena.get(k2) == b"b" * 40
            assert arena.get(k_cold) == b"c" * 100

    def test_budget_applies_retroactively(self):
        with ByteArena(budget_bytes=None) as arena:
            for _ in range(4):
                arena.put(b"x" * 32, group="g")
            assert arena.group_stats()["g"]["spill_count"] == 0
            arena.set_group_budget("g", 64)  # immediate enforcement
            stats = arena.group_stats()
            assert stats["g"]["in_memory_nbytes"] <= 64
            assert stats["g"]["spill_count"] == 2

    def test_discard_releases_group_accounting(self):
        with ByteArena(budget_bytes=None) as arena:
            arena.set_group_budget("g", 64)
            keys = [arena.put(b"y" * 40, group="g") for _ in range(3)]
            for k in keys:
                arena.discard(k)
            stats = arena.group_stats()
            assert stats["g"]["in_memory_nbytes"] == 0
            assert stats["g"]["spilled_nbytes"] == 0

    def test_global_budget_still_enforced_on_top(self):
        with ByteArena(budget_bytes=64) as arena:
            arena.set_group_budget("g", 1 << 20)  # generous group cap
            arena.put(b"z" * 60, group="g")
            arena.put(b"w" * 60)  # untagged; global FIFO spills the oldest
            assert arena.spill_count >= 1
            assert arena.in_memory_nbytes <= 64

    def test_validation_and_closed_arena(self):
        arena = ByteArena(budget_bytes=None)
        with pytest.raises(ValueError, match="budget_bytes"):
            arena.set_group_budget("g", -1)
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.set_group_budget("g", 10)

    def test_policy_label_tags_flow_from_context(self):
        """Arena-backed packs are tagged with their policy group, so a
        rule's arena_budget bounds exactly its layers' bytes."""
        from repro.core.policy_table import (
            PolicyTable, ResolvedPolicy, compile_matcher,
        )

        table = PolicyTable([
            (compile_matcher("c"), ResolvedPolicy(label="front")),
        ])
        rng = np.random.default_rng(0)
        with ByteArena(budget_bytes=None) as arena:
            arena.set_group_budget("front", 1)
            ctx = CompressingContext(
                SZCompressor(entropy="zlib"), initial_rel_eb=1e-3,
                storage=arena, policy_table=table,
            )
            conv = Conv2D(3, 2, 3, rng=1, name="c")
            x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
            h = ctx.pack(conv, "x", x)
            stats = arena.group_stats()
            assert stats["front"]["spill_count"] == 1  # over its 1-byte cap
            y = ctx.unpack(conv, "x", h)
            assert np.abs(x - y).max() <= max(ctx.error_bounds.values()) * (1 + 1e-6)
            ctx.close()
