"""The CompressedTraining session: wiring, accounting, adaptivity."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveConfig,
    CompressedTraining,
    CompressingContext,
    GradientAssessor,
    MemoryTracker,
    PackedActivation,
)
from repro.compression.szlike import SZCompressor
from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    batches,
    iter_layers,
)


@pytest.fixture
def dataset():
    return SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)


def small_conv_net(seed=1):
    return Sequential([
        Conv2D(3, 6, 3, padding=1, rng=seed), ReLU(), MaxPool2D(2),
        Conv2D(6, 8, 3, padding=1, rng=seed + 1), ReLU(), MaxPool2D(2),
        Flatten(), Linear(8 * 4 * 4, 4, rng=seed + 2),
    ])


def make_session(dataset, W=5, **cfg):
    net = small_conv_net()
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    tr = Trainer(net, opt)
    sess = CompressedTraining(
        net, opt,
        compressor=SZCompressor(entropy="zlib"),
        config=AdaptiveConfig(W=W, warmup_iterations=2, **cfg),
    ).attach(tr)
    return net, opt, tr, sess


class TestCompressingContext:
    def test_pack_compresses_4d_only(self, rng):
        ctx = CompressingContext(SZCompressor(entropy="zlib"))
        conv = Conv2D(3, 2, 3, rng=1)
        x4 = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        x2 = rng.standard_normal((4, 10)).astype(np.float32)
        assert isinstance(ctx.pack(conv, "x", x4), PackedActivation)
        assert ctx.pack(conv, "x", x2) is x2  # non-4D passes through

    def test_unpack_respects_error_bound(self, rng):
        ctx = CompressingContext(SZCompressor(entropy="zlib"), initial_rel_eb=1e-4)
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        h = ctx.pack(conv, "x", x)
        y = ctx.unpack(conv, "x", h)
        assert np.abs(x - y).max() <= ctx.error_bounds["c"] * (1 + 1e-6)

    def test_controller_bound_used_once_set(self, rng):
        ctx = CompressingContext(SZCompressor(entropy="zlib"))
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        ctx.error_bounds["c"] = 0.05
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        h = ctx.pack(conv, "x", x)
        assert h.compressed.error_bound == 0.05

    def test_observed_statistics_recorded(self, rng):
        ctx = CompressingContext(SZCompressor(entropy="zlib"))
        conv = Conv2D(3, 2, 3, rng=1, name="c")
        x = np.maximum(rng.standard_normal((1, 3, 8, 8)), 0).astype(np.float32)
        ctx.pack(conv, "x", x)
        assert 0 < ctx.observed_nonzero["c"] < 1
        assert ctx.observed_ratio["c"] > 1

    def test_disabled_context_passes_through(self, rng):
        ctx = CompressingContext(SZCompressor(entropy="zlib"))
        ctx.enabled = False
        conv = Conv2D(3, 2, 3, rng=1)
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        assert ctx.pack(conv, "x", x) is x


class TestMemoryTracker:
    def test_ratio_accounting(self):
        t = MemoryTracker()
        t.record_pack("a", 1000, 100)
        t.record_pack("b", 500, 100)
        assert t.end_iteration() == pytest.approx(1500 / 200)
        assert t.overall_ratio == pytest.approx(1500 / 200)

    def test_peak_tracks_live_bytes(self):
        t = MemoryTracker()
        t.record_pack("a", 1000, 100)
        t.record_pack("b", 1000, 100)
        t.record_release(1000, 100)
        t.record_pack("c", 1000, 100)
        assert t.peak_raw_bytes == 2000
        assert t.peak_stored_bytes == 200

    def test_iteration_ratios_history(self):
        t = MemoryTracker()
        for _ in range(3):
            t.record_pack("a", 100, 10)
            t.end_iteration()
        assert t.iteration_ratios == [10.0, 10.0, 10.0]

    def test_per_layer_summary(self):
        t = MemoryTracker()
        t.record_pack("conv1", 100, 20)
        t.record_pack("conv1", 100, 20)
        (rec,) = t.summary()
        assert rec.packs == 2
        assert rec.ratio == pytest.approx(5.0)


class TestGradientAssessor:
    def test_budget_is_fraction_of_momentum(self):
        p = Parameter(np.zeros((4,)))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad[:] = 2.0
        opt.step()
        a = GradientAssessor(opt, sigma_fraction=0.01)
        assert a.sigma_budget(p) == pytest.approx(0.02)
        assert a.sigma_budget() == pytest.approx(0.02)

    def test_fallback_uses_gradient(self):
        p = Parameter(np.zeros((4,)))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad[:] = 3.0
        a = GradientAssessor(opt, sigma_fraction=0.01)
        assert a.sigma_budget(p) == 0.0  # no momentum yet
        assert a.gradient_fallback_budget(p) == pytest.approx(0.03)

    def test_fraction_validated(self):
        p = Parameter(np.zeros((4,)))
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            GradientAssessor(opt, sigma_fraction=0.0)


class TestSession:
    def test_installs_on_conv_layers_only(self, dataset):
        net, opt, tr, sess = make_session(dataset)
        assert sess.compressed_layers == 2
        convs = [l for l in iter_layers(net) if isinstance(l, Conv2D)]
        assert all(c.saved_ctx is sess.ctx for c in convs)

    def test_rejects_convless_network(self):
        net = Sequential([Flatten(), Linear(12, 4, rng=1)])
        opt = SGD(net.parameters(), lr=0.01)
        with pytest.raises(ValueError):
            CompressedTraining(net, opt)

    def test_training_produces_ratio_history(self, dataset):
        net, opt, tr, sess = make_session(dataset)
        tr.train(batches(dataset, 8, 6, seed=0))
        assert len(sess.ratio_history()) == 6
        assert all(r > 1 for r in sess.ratio_history())
        assert "compression_ratio" in tr.history.records[0].extras

    def test_error_bounds_adapt(self, dataset):
        net, opt, tr, sess = make_session(dataset)
        tr.train(batches(dataset, 8, 8, seed=0))
        assert len(sess.error_bounds) == 2
        assert all(eb > 0 for eb in sess.error_bounds.values())
        assert sess.controller.updates >= 2

    def test_collection_interval_respected(self, dataset):
        net, opt, tr, sess = make_session(dataset, W=4)
        tr.train(batches(dataset, 8, 10, seed=0))
        # warmup (0,1) + iterations 4 and 8
        assert sess.controller.updates == pytest.approx(4, abs=1)

    def test_loss_statistics_collected_per_conv(self, dataset):
        net, opt, tr, sess = make_session(dataset)
        tr.train(batches(dataset, 8, 3, seed=0))
        assert len(sess.controller.loss_scales) == 2
        assert all(v > 0 for v in sess.controller.loss_scales.values())
        assert all(m > 0 for m in sess.controller.combined_elements.values())

    def test_compression_does_not_break_learning(self, dataset):
        net, opt, tr, sess = make_session(dataset)
        tr.train(batches(dataset, 16, 50, seed=0))
        assert tr.history.losses[-10:].mean() < tr.history.losses[:10].mean()

    def test_detach_restores_plain_storage(self, dataset, rng):
        net, opt, tr, sess = make_session(dataset)
        sess.detach()
        conv = next(l for l in iter_layers(net) if isinstance(l, Conv2D))
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        conv.forward(x)
        assert isinstance(conv._saved["x"], np.ndarray)

    def test_decompressed_activations_error_bounded(self, dataset, rng):
        """End-to-end: what backward sees differs from the true activation
        by at most the layer's current error bound."""
        net, opt, tr, sess = make_session(dataset)
        conv = next(l for l in iter_layers(net) if isinstance(l, Conv2D))
        seen = {}
        orig_unpack = sess.ctx.unpack

        def spy_unpack(layer, key, handle):
            out = orig_unpack(layer, key, handle)
            if layer is conv and isinstance(handle, PackedActivation):
                seen["eb"] = handle.compressed.error_bound
            return out

        sess.ctx.unpack = spy_unpack
        x, y = dataset.sample(8, rng=0)
        tr.train_step(x, y)
        assert seen["eb"] > 0
