"""Runtime sanitizer: buffer poisoning, double-release traps, lock-order
cycle detection, and the build_session wiring.

The sanitizer is process-wide and sticky, so every test that enables it
disables it again; objects constructed after disable() are untouched.
"""

import threading

import numpy as np
import pytest

from repro.core import sanitizer
from repro.core.arena import ByteArena
from repro.core.sanitizer import (
    DoubleReleaseError,
    LockOrderError,
    LockOrderMonitor,
    TrackedLock,
    UseAfterReleaseError,
)
from repro.utils.scratch import ScratchPool

# True when the test process itself was launched with REPRO_SANITIZE=1.
ENV_SANITIZED = sanitizer.enabled()


@pytest.fixture
def sanitized():
    sanitizer.enable()
    yield
    sanitizer.disable()


@pytest.mark.skipif(ENV_SANITIZED, reason="process launched with REPRO_SANITIZE=1")
def test_disabled_by_default():
    arena = ByteArena(budget_bytes=None)
    key = arena.put(b"abc")
    assert bytes(arena.get(key)) == b"abc"
    arena.discard(key)
    arena.discard(key)  # without the sanitizer this stays a silent no-op
    arena.close()
    assert not sanitizer.report()["enabled"]


def test_double_release_raises(sanitized):
    arena = ByteArena(budget_bytes=None)
    key = arena.put(b"abc")
    arena.discard(key)
    with pytest.raises(DoubleReleaseError) as excinfo:
        arena.discard(key)
    # the trap names both sites: first release and the offending one
    assert "first released" in str(excinfo.value)
    arena.close()


def test_use_after_release_raises(sanitized):
    arena = ByteArena(budget_bytes=None)
    key = arena.put(b"abc")
    arena.discard(key)
    with pytest.raises(UseAfterReleaseError):
        arena.get(key)
    arena.close()


def test_unknown_key_discard_stays_noop(sanitized):
    arena = ByteArena(budget_bytes=None)
    arena.discard(123456)  # never-acquired keys keep the no-op contract
    arena.close()


def test_released_buffer_is_nan_poisoned(sanitized):
    arena = ByteArena(budget_bytes=None)
    payload = np.arange(4, dtype=np.float64).tobytes()
    key = arena.put(payload)
    leaked = arena.get(key)  # aliasing reference held past the release
    arena.discard(key)
    values = np.frombuffer(bytes(leaked), dtype=np.float64)
    assert np.isnan(values).all()
    assert sanitizer.report()["poisoned_buffers"] >= 1
    arena.close()


def test_pop_returns_intact_bytes(sanitized):
    arena = ByteArena(budget_bytes=None)
    key = arena.put(b"abcd")
    assert arena.pop(key) == b"abcd"  # copied out before the poison pass
    arena.close()


def test_scratch_buffers_poisoned_on_return(sanitized):
    pool = ScratchPool()
    with pool.take((4,), np.float64) as buf:
        buf[:] = 1.0
        view = buf
    assert np.isnan(view).all()


def test_lock_order_cycle_detected(sanitized):
    monitor = LockOrderMonitor()
    lock_a = TrackedLock(threading.Lock(), "a", False, monitor)
    lock_b = TrackedLock(threading.Lock(), "b", False, monitor)
    with lock_a:
        with lock_b:
            pass  # establishes the a -> b ordering edge
    with lock_b:
        with pytest.raises(LockOrderError):
            lock_a.acquire()


def test_nonreentrant_self_acquire_detected(sanitized):
    monitor = LockOrderMonitor()
    lock = TrackedLock(threading.Lock(), "plain", False, monitor)
    with lock:
        with pytest.raises(LockOrderError):
            lock.acquire()


def test_reentrant_lock_allows_nesting(sanitized):
    monitor = LockOrderMonitor()
    lock = TrackedLock(threading.RLock(), "rlock", True, monitor)
    with lock:
        with lock:
            pass


def test_build_session_enables_sanitizer_and_reports():
    from repro.api import SessionConfig, build_session
    from repro.api.config import SanitizerSpec, StorageSpec
    from repro.models import build_scaled_model
    from repro.nn import SyntheticImageDataset, batches

    config = SessionConfig(
        sanitizer=SanitizerSpec(enabled=True),
        storage=StorageSpec(activations="arena", budget_bytes=1 << 20),
    )
    net = build_scaled_model("alexnet", num_classes=4, image_size=8, rng=0)
    dataset = SyntheticImageDataset(num_classes=4, image_size=8, seed=1)
    try:
        with build_session(net, config) as session:
            session.train(batches(dataset, 2, 2, seed=2))
            report = session.sanitizer_report
            assert report["enabled"]
            assert report["instrumented_objects"] > 0
            assert report["lock_acquisitions"] > 0
    finally:
        sanitizer.disable()
