"""Double-buffered unpack: the speculative-decompress window.

The async engine's decode-ahead (``unpack_depth``) speculatively
decompresses the next backward layers' saved activations on the worker
pool.  Contract pinned here:

* bit-identity to ``SyncEngine`` for every ``unpack_depth`` (including
  ``"auto"``), with mixed per-layer policy codecs and a fully-spilled
  arena — the hardest composition the engine supports;
* the decode-ahead budget defers (never drops) over-budget jobs, still
  bit-identically;
* ``close()`` mid-backward with speculative decompress in flight is
  clean: queued jobs are cancelled and counted, budget accounting zeroes.
"""

import threading
import time

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core import (
    AdaptiveConfig,
    AsyncEngine,
    ByteArena,
    CompressedTraining,
    CompressingContext,
    SyncEngine,
)
from repro.core.policy_table import PolicyTable, ResolvedPolicy, compile_matcher
from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    batches,
)


def mixed_net():
    return Sequential([
        Conv2D(3, 6, 3, padding=1, rng=1, name="c1"), ReLU(), MaxPool2D(2),
        Conv2D(6, 8, 3, padding=1, rng=2, name="c2"), ReLU(), MaxPool2D(2),
        Conv2D(8, 8, 3, padding=1, rng=4, name="c3"), ReLU(),
        Flatten(), Linear(8 * 4 * 4, 4, rng=3),
    ])


def mixed_table():
    """Three codecs across the net: lossless, tight szlike, jpeg."""
    return PolicyTable([
        (compile_matcher("c1"), ResolvedPolicy(label="front", codec=get_codec("lossless"), adaptive=False)),
        (compile_matcher("c2"), ResolvedPolicy(label="mid", error_bound=1e-4, adaptive=False)),
        (compile_matcher("c3"), ResolvedPolicy(label="back", codec=get_codec("jpeg", quality=80), adaptive=False)),
    ])


def train_mixed(engine, iters=6):
    net = mixed_net()
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    tr = Trainer(net, opt)
    with ByteArena(budget_bytes=0) as arena:  # everything spills
        sess = CompressedTraining(
            net, opt,
            compressor=get_codec("szlike", entropy="zlib"),
            config=AdaptiveConfig(W=5, warmup_iterations=2),
            storage=arena, engine=engine, policy_table=mixed_table(),
        ).attach(tr)
        ds = SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)
        tr.train(batches(ds, 8, iters, seed=0))
        tr.close()
        assert len(arena) == 0
    return tr, sess


class TestUnpackBitIdentity:
    """Mixed policy codecs x spilled arena x every decode-ahead depth."""

    @pytest.mark.parametrize("depth", [0, 1, 2, 4, "auto"])
    def test_matches_sync_at_depth(self, depth):
        tr_s, sess_s = train_mixed(SyncEngine())
        tr_a, sess_a = train_mixed(
            AsyncEngine(workers=2, prefetch_depth=2, unpack_depth=depth)
        )
        np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
        assert sess_s.tracker.iteration_ratios == sess_a.tracker.iteration_ratios
        for name in ("c1", "c2", "c3"):
            a = sess_s.tracker.per_layer[name]
            b = sess_a.tracker.per_layer[name]
            assert (a.raw_bytes, a.stored_bytes, a.packs) == (
                b.raw_bytes, b.stored_bytes, b.packs
            )
        if depth == 0:
            assert sess_a.engine.prefetch_hits == 0
        else:
            assert sess_a.engine.prefetch_hits > 0
            assert sess_a.engine.last_effective_unpack_depth >= 1

    def test_default_follows_prefetch_depth(self):
        eng = AsyncEngine(workers=1, prefetch_depth=3)
        assert eng.unpack_depth is None
        train_mixed(eng)
        assert eng.last_effective_unpack_depth == 3

    def test_budget_deferral_is_counted_and_bit_identical(self):
        tr_s, _ = train_mixed(SyncEngine())
        eng = AsyncEngine(
            workers=2, prefetch_depth=2, unpack_depth=3, unpack_budget_bytes=1
        )
        tr_a, _ = train_mixed(eng)
        np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
        # One job per window is always admitted (progress guarantee);
        # the rest of the window hits the 1-byte budget and defers.
        assert eng.unpack_budget_deferrals > 0
        assert eng._unpack_inflight_bytes == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="unpack_depth"):
            AsyncEngine(unpack_depth=-1)
        with pytest.raises(ValueError, match="unpack_depth"):
            AsyncEngine(unpack_depth="turbo")
        with pytest.raises(ValueError, match="unpack_budget_bytes"):
            AsyncEngine(unpack_budget_bytes=0)


class TestShutdownWithSpeculativeUnpack:
    def test_close_cancels_queued_decompress_jobs(self):
        """Mid-backward close with speculation in flight: queued jobs are
        cancelled (and counted), nothing deadlocks, budget zeroes."""
        layers = [Conv2D(3, 2, 3, rng=i + 1, name=f"u{i}") for i in range(6)]
        rng = np.random.default_rng(5)
        eng = AsyncEngine(workers=1, prefetch_depth=0, unpack_depth=4)
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), engine=eng, initial_rel_eb=1e-3
        )
        xs = [rng.standard_normal((2, 3, 16, 16)).astype(np.float32) for _ in layers]
        handles = [ctx.pack(l, "x", x) for l, x in zip(layers, xs)]
        eng.flush()
        # Pin the single worker so every speculative job stays queued.
        release = threading.Event()
        eng._ensure_pool().submit(release.wait)
        ctx.unpack(layers[-1], "x", handles[-1])  # schedules the window
        queued = sum(1 for h in handles[:-1] if h._prefetch_future is not None)
        assert queued > 0
        release.set()  # close() joins the pool; let the pinned job finish
        ctx.close()
        assert eng.unpacks_cancelled > 0
        assert eng._unpack_inflight_bytes == 0
        # Idempotent.
        ctx.close()

    def test_training_close_midstream_is_clean(self):
        """Stop a training run between steps with the decode-ahead window
        armed; close() must not hang or corrupt the tracker."""
        net = mixed_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        tr = Trainer(net, opt)
        with ByteArena(budget_bytes=0) as arena:
            sess = CompressedTraining(
                net, opt,
                compressor=get_codec("szlike", entropy="zlib"),
                config=AdaptiveConfig(W=5, warmup_iterations=2),
                storage=arena,
                engine=AsyncEngine(workers=2, prefetch_depth=2, unpack_depth=2),
                policy_table=mixed_table(),
            ).attach(tr)
            ds = SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)
            tr.train(batches(ds, 8, 2, seed=0))
            tr.close()
            assert sess.tracker._live_raw == 0
            assert sess.tracker._live_stored == 0


class TestAdaptiveUnpackDepth:
    def test_auto_depth_adapts_from_latencies(self):
        eng = AsyncEngine(workers=2, unpack_depth="auto", max_auto_depth=6)
        assert eng.adaptive_unpack
        # Jobs 3x slower than the backward gap -> window of ~3.
        with eng._ema_lock:
            eng._gap_ema, eng._job_ema = 0.010, 0.030
        assert eng._effective_unpack_depth() == 3
        assert eng.last_effective_unpack_depth == 3
        with eng._ema_lock:
            eng._job_ema = 1.0
        assert eng._effective_unpack_depth() == 6  # clamped

    def test_fixed_depth_does_not_adapt(self):
        eng = AsyncEngine(workers=1, unpack_depth=2)
        with eng._ema_lock:
            eng._gap_ema, eng._job_ema = 0.001, 1.0
        assert eng._effective_unpack_depth() == 2
