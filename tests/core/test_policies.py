"""Baseline memory policies compared against the adaptive framework."""

import numpy as np
import pytest

from repro.compression import (
    DeflateCompressor,
    JpegLikeCompressor,
    SparseLosslessCompressor,
)
from repro.core import CodecPolicy, FixedBoundSZPolicy, RawPolicy
from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    batches,
    set_saved_ctx,
)


@pytest.fixture
def dataset():
    return SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)


def net_with_policy(policy, seed=1):
    net = Sequential([
        Conv2D(3, 6, 3, padding=1, rng=seed), ReLU(), MaxPool2D(2),
        Conv2D(6, 8, 3, padding=1, rng=seed + 1), ReLU(), MaxPool2D(2),
        Flatten(), Linear(8 * 4 * 4, 4, rng=seed + 2),
    ])
    if policy is not None:
        set_saved_ctx(net, policy, predicate=lambda l: l.compressible)
    return net


def train_with(policy, dataset, iters=8):
    net = net_with_policy(policy)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    tr = Trainer(net, opt)
    tr.train(batches(dataset, 8, iters, seed=0))
    return tr


class TestRawPolicy:
    def test_accounting_ratio_is_one(self, dataset):
        pol = RawPolicy()
        train_with(pol, dataset)
        assert pol.tracker.overall_ratio == pytest.approx(1.0)

    def test_training_identical_to_no_policy(self, dataset):
        t1 = train_with(None, dataset)
        t2 = train_with(RawPolicy(), dataset)
        np.testing.assert_allclose(t1.history.losses, t2.history.losses, rtol=1e-6)


class TestCodecPolicy:
    @pytest.mark.parametrize("codec,lossless", [
        (DeflateCompressor(), True),
        (SparseLosslessCompressor(), True),
        (JpegLikeCompressor(quality=60), False),
    ])
    def test_training_runs_and_tracks(self, dataset, codec, lossless):
        pol = CodecPolicy(codec)
        tr = train_with(pol, dataset)
        assert np.isfinite(tr.history.losses).all()
        assert pol.tracker.overall_ratio > (0.9 if lossless else 1.0)

    def test_lossless_policy_exactly_matches_baseline(self, dataset):
        t1 = train_with(None, dataset)
        t2 = train_with(CodecPolicy(SparseLosslessCompressor()), dataset)
        np.testing.assert_allclose(t1.history.losses, t2.history.losses, rtol=1e-6)

    def test_rejects_non_codec(self):
        with pytest.raises(TypeError):
            CodecPolicy(object())


class TestFixedBoundSZPolicy:
    def test_near_lossless_bound_matches_baseline(self, dataset):
        t1 = train_with(None, dataset)
        t2 = train_with(FixedBoundSZPolicy(1e-7, entropy="zlib"), dataset)
        np.testing.assert_allclose(t1.history.losses, t2.history.losses, atol=1e-4)

    def test_coarser_bound_higher_ratio(self, dataset):
        p1 = FixedBoundSZPolicy(1e-4, entropy="zlib")
        p2 = FixedBoundSZPolicy(1e-2, entropy="zlib")
        train_with(p1, dataset)
        train_with(p2, dataset)
        assert p2.tracker.overall_ratio > p1.tracker.overall_ratio


class TestPolicyRanking:
    def test_sz_beats_lossless_beats_raw(self, dataset):
        """Table 1's ordering: error-bounded lossy >> lossless >= 1."""
        raw = RawPolicy()
        lossless = CodecPolicy(SparseLosslessCompressor())
        sz = FixedBoundSZPolicy(1e-3, entropy="zlib")
        for pol in (raw, lossless, sz):
            train_with(pol, dataset, iters=4)
        assert sz.tracker.overall_ratio > lossless.tracker.overall_ratio
        assert lossless.tracker.overall_ratio >= raw.tracker.overall_ratio * 0.99
