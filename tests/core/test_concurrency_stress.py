"""Concurrency stress: the shared-infrastructure pieces a multi-tenant
server leans on, hammered from many threads at once.

Runs in the ``REPRO_SANITIZE=1`` CI leg too, where lock-order tracking
and double-release trapping are armed — so a regression in the
:class:`MemoryTracker` locking, the :class:`ByteArena` spill path, or
the :class:`ArenaPool` rebalance valve fails loudly instead of
corrupting counters silently.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.arena import ArenaPool, ByteArena
from repro.core.memory_tracker import MemoryTracker

THREADS = 6
OPS = 150


def run_threads(target, n=THREADS):
    errors = []

    def wrap(i):
        try:
            target(i)
        except BaseException as exc:  # surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:1]


class TestMemoryTrackerUnderPressure:
    def test_group_summary_consistent_during_concurrent_packs(self):
        tracker = MemoryTracker()
        stop = threading.Event()
        snapshots = []

        def writer(i):
            group = f"g{i % 3}"
            for k in range(OPS):
                tracker.record_pack(f"layer{i}", 1000, 100, group=group)
                tracker.record_release(1000, 100)
                if k % 25 == 0:
                    tracker.end_iteration()

        def reader():
            while not stop.is_set():
                for rec in tracker.group_summary():
                    # a consistent snapshot: never a torn record where
                    # bytes moved but the pack count did not
                    assert rec.raw_bytes == 10 * rec.stored_bytes
                snapshots.append(len(tracker.summary()))

        r = threading.Thread(target=reader)
        r.start()
        try:
            run_threads(writer)
        finally:
            stop.set()
            r.join()

        total_packs = sum(rec.packs for rec in tracker.group_summary())
        assert total_packs == THREADS * OPS
        assert sum(rec.packs for rec in tracker.summary()) == THREADS * OPS

    def test_ratio_accounting_balances_after_race(self):
        tracker = MemoryTracker()

        def worker(i):
            for _ in range(OPS):
                tracker.record_pack(f"l{i}", 800, 80)
                tracker.record_release(800, 80)
            tracker.end_iteration()

        run_threads(worker)
        assert tracker.overall_ratio == 10.0
        # every pack was matched by a release: nothing live leaks
        assert tracker.end_iteration() == 0.0


class TestArenaUnderPressure:
    def test_simultaneous_put_spill_get(self):
        with ByteArena(budget_bytes=20_000) as arena:
            def worker(i):
                rng = np.random.default_rng(i)
                keys = {}
                for _ in range(OPS):
                    size = int(rng.integers(100, 800))
                    tag = int(rng.integers(0, 256))
                    keys[arena.put(bytes([tag]) * size)] = (tag, size)
                    if len(keys) > 10:
                        key, (tag, size) = keys.popitem()
                        assert arena.pop(key) == bytes([tag]) * size
                for key, (tag, size) in keys.items():
                    assert arena.pop(key) == bytes([tag]) * size

            run_threads(worker)
            assert arena.in_memory_nbytes == 0
            assert arena.spilled_nbytes == 0
            assert len(arena) == 0

    def test_pool_rebalance_under_multi_tenant_pressure(self):
        with ArenaPool(budget_bytes=15_000) as pool:
            arenas = [pool.create_arena(f"t{i}", budget_bytes=60_000) for i in range(THREADS)]

            def worker(i):
                arena = arenas[i]
                rng = np.random.default_rng(100 + i)
                keys = {}
                for _ in range(OPS):
                    size = int(rng.integers(100, 600))
                    tag = int(rng.integers(0, 256))
                    keys[arena.put(bytes([tag]) * size)] = (tag, size)
                    if len(keys) > 8:
                        key, (tag, size) = keys.popitem()
                        assert arena.pop(key) == bytes([tag]) * size
                for key, (tag, size) in keys.items():
                    assert arena.get(key) == bytes([tag]) * size

            run_threads(worker)
            stats = pool.stats()
            live = sum(
                t["in_memory_nbytes"] + t["spilled_nbytes"]
                for t in stats["tenants"].values()
            )
            # every byte still accounted for, split across mem + disk
            expected = sum(a.in_memory_nbytes + a.spilled_nbytes for a in arenas)
            assert live == expected
            # the pool held its aggregate line while tenants raced
            assert stats["forced_spill_count"] > 0

    def test_tracker_and_pool_together(self):
        """The server-shaped composite: every thread is a 'tenant'
        putting packed bytes into its pool member arena while recording
        into one shared MemoryTracker, with group_summary() read
        concurrently — the exact pattern the stats() endpoint drives."""
        tracker = MemoryTracker()
        stop = threading.Event()
        with ArenaPool(budget_bytes=10_000) as pool:
            arenas = [pool.create_arena(f"s{i}", budget_bytes=40_000) for i in range(4)]

            def tenant(i):
                arena = arenas[i % 4]
                for k in range(OPS):
                    data = bytes([k % 256]) * 300
                    key = arena.put(data)
                    tracker.record_pack(f"conv{i}", 3000, 300, group=f"tenant{i % 4}")
                    assert arena.pop(key) == data
                    tracker.record_release(3000, 300)
                    if k % 50 == 0:
                        tracker.end_iteration()

            def observer():
                while not stop.is_set():
                    pool.stats()
                    tracker.group_summary()

            obs = threading.Thread(target=observer)
            obs.start()
            try:
                run_threads(tenant, n=4)
            finally:
                stop.set()
                obs.join()
            assert sum(r.packs for r in tracker.group_summary()) == 4 * OPS
            assert tracker.overall_ratio == 10.0
