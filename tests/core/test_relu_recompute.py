"""Section 4.4's first mechanism: recompute the activation function on
decompression so ReLU zeros survive regardless of codec behaviour."""

import numpy as np

from repro.compression import SZCompressor
from repro.core import AdaptiveConfig, CompressedTraining
from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    MaxPool2D,
    ReLU,
    Residual,
    SGD,
    Sequential,
)


def _session(net):
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    return CompressedTraining(
        net, opt,
        compressor=SZCompressor(entropy="zlib"),
        config=AdaptiveConfig(W=5, warmup_iterations=1),
    )


class TestMarking:
    def test_relu_fed_conv_marked(self):
        net = Sequential([
            Conv2D(3, 4, 3, padding=1, rng=1, name="c1"), ReLU(),
            Conv2D(4, 4, 3, padding=1, rng=2, name="c2"),
            Conv2D(4, 4, 3, padding=1, rng=3, name="c3"),
            Flatten(), Linear(4 * 8 * 8, 2, rng=4),
        ])
        net.output_shape((1, 3, 8, 8))
        sess = _session(net)
        assert sess.ctx.relu_recompute_layers == {"c2"}

    def test_pooling_preserves_marking(self):
        net = Sequential([
            Conv2D(3, 4, 3, padding=1, rng=1, name="c1"), ReLU(), MaxPool2D(2),
            Conv2D(4, 4, 3, padding=1, rng=2, name="c2"),
            Flatten(), Linear(4 * 4 * 4, 2, rng=3),
        ])
        sess = _session(net)
        assert "c2" in sess.ctx.relu_recompute_layers

    def test_batchnorm_breaks_nonnegativity(self):
        net = Sequential([
            Conv2D(3, 4, 3, padding=1, rng=1, name="c1"), ReLU(), BatchNorm2D(4),
            Conv2D(4, 4, 3, padding=1, rng=2, name="c2"),
            Flatten(), Linear(4 * 8 * 8, 2, rng=3),
        ])
        sess = _session(net)
        assert "c2" not in sess.ctx.relu_recompute_layers

    def test_residual_output_not_assumed_nonnegative(self):
        block = Residual(Sequential([
            Conv2D(3, 3, 3, padding=1, rng=1, name="cm"), ReLU(),
        ]))
        net = Sequential([
            block,
            Conv2D(3, 4, 3, padding=1, rng=2, name="c_after"),
            GlobalAvgPool2D(), Linear(4, 2, rng=3),
        ])
        sess = _session(net)
        # conv after a residual sum must NOT be marked; conv inside the
        # main branch takes the block input (unknown sign) — also unmarked
        assert "c_after" not in sess.ctx.relu_recompute_layers
        assert "cm" not in sess.ctx.relu_recompute_layers

    def test_relu_into_residual_branches_marked(self):
        inner = Sequential([Conv2D(3, 3, 3, padding=1, rng=1, name="cm")])
        sc = Sequential([Conv2D(3, 3, 1, rng=2, name="cs")])
        net = Sequential([
            Conv2D(3, 3, 3, padding=1, rng=0, name="c0"), ReLU(),
            Residual(inner, sc),
            GlobalAvgPool2D(), Linear(3, 2, rng=3),
        ])
        sess = _session(net)
        assert {"cm", "cs"} <= sess.ctx.relu_recompute_layers


class TestEffect:
    def test_drifted_zeros_restored_on_unpack(self, rng):
        """Even with codec drift and the zero filter disabled, marked
        layers see exact zeros after decompression."""
        net = Sequential([
            Conv2D(3, 4, 3, padding=1, rng=1, name="c1"), ReLU(),
            Conv2D(4, 4, 3, padding=1, rng=2, name="c2"),
            Flatten(), Linear(4 * 8 * 8, 2, rng=3),
        ])
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        comp = SZCompressor(1e-2, entropy="zlib", zero_filter=False,
                            emulate_zero_drift=True, rng=4)
        sess = CompressedTraining(net, opt, compressor=comp,
                                  config=AdaptiveConfig(W=5, warmup_iterations=1))
        conv2 = net[2]
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = net.forward(x)

        relu_out = np.maximum(net[0].saved_ctx.compressor.decompress(
            conv2._saved["x"].compressed), -np.inf)  # raw decompression
        seen = sess.ctx.unpack(conv2, "x", conv2._saved["x"])
        true_relu = np.maximum(net[0].forward(x), 0)  # what ReLU produced
        # raw decompression drifts zeros; unpack() restores them
        assert np.all(seen[true_relu == 0] == 0)
        assert np.any(relu_out[true_relu == 0] != 0)
