"""Compression engines: async/sync bit-identity, ordering, concurrency.

The async engine's contract is "indistinguishable from SyncEngine except
for wall-clock time": bit-identical reconstructions and byte-exact
tracker numbers for every registry codec, release-exactly-once handle
semantics under any interleaving of pack/unpack/discard, and clean
shutdown with work still in flight.
"""

import numpy as np
import pytest

from repro.compression import available_codecs, get_codec
from repro.core import (
    AdaptiveConfig,
    AsyncEngine,
    ByteArena,
    CodecPolicy,
    CompressedTraining,
    CompressingContext,
    MemoryTracker,
    SyncEngine,
)
from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    batches,
)

#: constructor kwargs so every registry codec builds at test scale
CODEC_SPECS = {
    "szlike": dict(error_bound=1e-3, entropy="huffman"),
    "jpeg": dict(quality=60),
    "lossless": {},
    "sparse-lossless": {},
    "chunked": dict(inner="szlike", workers=2, min_chunk_nbytes=1 << 10, error_bound=1e-3),
}


def make_codec(name):
    return get_codec(name, **CODEC_SPECS[name])


@pytest.fixture
def conv():
    return Conv2D(3, 2, 3, rng=1, name="c")


@pytest.fixture
def act4d(rng):
    return np.maximum(rng.standard_normal((2, 3, 16, 16)), 0).astype(np.float32)


class TestEngineResolution:
    def test_default_is_sync(self):
        ctx = CompressingContext(make_codec("szlike"))
        assert isinstance(ctx.engine, SyncEngine)

    def test_string_keys(self):
        assert isinstance(CompressingContext(engine="sync").engine, SyncEngine)
        assert isinstance(CompressingContext(engine="async").engine, AsyncEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CompressingContext(engine="gpu")
        with pytest.raises(TypeError):
            CompressingContext(engine=42)

    def test_engine_binds_to_one_context(self):
        eng = AsyncEngine(workers=1)
        CompressingContext(make_codec("szlike"), engine=eng)
        with pytest.raises(RuntimeError, match="already bound"):
            CompressingContext(make_codec("szlike"), engine=eng)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AsyncEngine(workers=0)
        with pytest.raises(ValueError):
            AsyncEngine(prefetch_depth=-1)


class TestBitIdentityPerCodec:
    """Async reconstructions and tracker charges equal sync, per codec."""

    @pytest.mark.parametrize("name", sorted(available_codecs()))
    @pytest.mark.parametrize("use_arena", [False, True])
    def test_roundtrip_and_accounting_match(self, name, use_arena, conv, act4d):
        results = {}
        for engine in ("sync", "async"):
            tracker = MemoryTracker()
            storage = ByteArena(budget_bytes=0) if use_arena else None
            ctx = CompressingContext(
                make_codec(name), initial_rel_eb=1e-3,
                tracker=tracker, storage=storage, engine=engine,
            )
            handles = [ctx.pack(conv, f"x{i}", act4d + i) for i in range(3)]
            outs = [ctx.unpack(conv, f"x{i}", h) for i, h in reversed(list(enumerate(handles)))]
            ctx.close()
            if storage is not None:
                assert len(storage) == 0
                storage.close()
            rec = tracker.per_layer["c"]
            results[engine] = (outs, rec.raw_bytes, rec.stored_bytes, rec.packs)
        for a, b in zip(results["sync"][0], results["async"][0]):
            np.testing.assert_array_equal(a, b)
        assert results["sync"][1:] == results["async"][1:]


def small_net():
    return Sequential([
        Conv2D(3, 6, 3, padding=1, rng=1, name="c1"), ReLU(), MaxPool2D(2),
        Conv2D(6, 8, 3, padding=1, rng=2, name="c2"), ReLU(), MaxPool2D(2),
        Flatten(), Linear(8 * 4 * 4, 4, rng=3),
    ])


def train_session(engine, storage=None, iters=8):
    net = small_net()
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    tr = Trainer(net, opt)
    sess = CompressedTraining(
        net, opt,
        compressor=get_codec("szlike", entropy="zlib"),
        config=AdaptiveConfig(W=5, warmup_iterations=2),
        storage=storage, engine=engine,
    ).attach(tr)
    ds = SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)
    tr.train(batches(ds, 8, iters, seed=0))
    tr.close()
    return tr, sess


class TestTrainingBitIdentity:
    def test_losses_and_tracker_match_sync(self):
        tr_s, sess_s = train_session("sync")
        tr_a, sess_a = train_session(AsyncEngine(workers=2, prefetch_depth=2))
        np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
        assert sess_s.tracker.iteration_ratios == sess_a.tracker.iteration_ratios
        assert sess_s.tracker.peak_raw_bytes == sess_a.tracker.peak_raw_bytes
        assert sess_s.tracker.peak_stored_bytes == sess_a.tracker.peak_stored_bytes
        for name in ("c1", "c2"):
            a, b = sess_s.tracker.per_layer[name], sess_a.tracker.per_layer[name]
            assert (a.raw_bytes, a.stored_bytes, a.packs) == (b.raw_bytes, b.stored_bytes, b.packs)
        assert sess_a.engine.packs_submitted == 16
        assert sess_a.tracker._live_raw == 0 and sess_a.tracker._live_stored == 0

    def test_arena_spill_prefetch_matches_sync(self):
        tr_s, _ = train_session("sync")
        with ByteArena(budget_bytes=0) as arena:  # everything spills
            tr_a, sess_a = train_session(AsyncEngine(workers=2, prefetch_depth=2), storage=arena)
            np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
            assert arena.spill_count > 0
            assert sess_a.engine.prefetch_hits > 0  # spilled bytes read ahead
            assert len(arena) == 0

    def test_stage_ahead_window_uses_arena_prefetch(self):
        """Beyond the decompress window, the engine stages the *next*
        handles' spilled bytes back into arena memory via prefetch()."""
        import time

        layers = [Conv2D(3, 2, 3, rng=i + 1, name=f"s{i}") for i in range(8)]
        rng = np.random.default_rng(3)
        with ByteArena(budget_bytes=0) as arena:  # everything spills
            ctx = CompressingContext(
                get_codec("szlike", entropy="zlib"), storage=arena,
                engine=AsyncEngine(workers=2, prefetch_depth=2),
            )
            xs = [rng.standard_normal((2, 3, 16, 16)).astype(np.float32) for _ in layers]
            handles = [ctx.pack(l, "x", x) for l, x in zip(layers, xs)]
            outs = [ctx.unpack(layers[i], "x", handles[i]) for i in reversed(range(8))]
            # staging runs on pool workers; give a submitted read a moment
            deadline = time.monotonic() + 2.0
            while arena.prefetch_count == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert arena.prefetch_count > 0
            for x, y in zip(reversed(xs), outs):
                assert np.abs(x - y).max() <= max(ctx.error_bounds.values()) * (1 + 1e-6)
            ctx.close()
            assert len(arena) == 0

    def test_error_bounds_identical_across_engines(self):
        _, sess_s = train_session("sync")
        _, sess_a = train_session("async")
        assert sess_s.error_bounds == sess_a.error_bounds


class TestKernelBackendBitIdentity:
    """Every available kernel backend trains bit-identically — and
    sync/async engine identity holds per backend, not just on the
    default one."""

    def train_with_backend(self, backend, engine):
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        tr = Trainer(net, opt)
        sess = CompressedTraining(
            net, opt,
            compressor=get_codec(
                "szlike", entropy="huffman", kernel_backend=backend
            ),
            config=AdaptiveConfig(W=5, warmup_iterations=2),
            engine=engine,
        ).attach(tr)
        ds = SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)
        tr.train(batches(ds, 8, 6, seed=0))
        tr.close()
        return tr.history.losses, sess.tracker.iteration_ratios

    def test_backends_train_bit_identically(self):
        from repro.kernels import available_backends

        results = {b: self.train_with_backend(b, "sync") for b in available_backends()}
        ref_losses, ref_ratios = results["numpy"]
        for backend, (losses, ratios) in results.items():
            np.testing.assert_array_equal(losses, ref_losses)
            assert ratios == ref_ratios

    def test_async_matches_sync_per_backend(self):
        from repro.kernels import available_backends

        for backend in available_backends():
            losses_s, _ = self.train_with_backend(backend, "sync")
            losses_a, _ = self.train_with_backend(
                backend, AsyncEngine(workers=2, prefetch_depth=2)
            )
            np.testing.assert_array_equal(losses_s, losses_a)


class TestConcurrencyStress:
    """Many interleaved pack/unpack/discard across layers: reconstructions
    bit-identical to sync, tracker released exactly once per handle,
    arena drained."""

    def _interleave(self, engine, storage, rng):
        layers = [Conv2D(3, 2, 3, rng=i + 1, name=f"c{i}") for i in range(6)]
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), initial_rel_eb=1e-3,
            tracker=tracker, storage=storage, engine=engine,
        )
        tensors, outs = {}, {}
        handles = {}
        # Three waves of forward packs with partial backward consumption
        # interleaved between them, plus discards of never-unpacked handles.
        for wave in range(3):
            for i, layer in enumerate(layers):
                x = rng.standard_normal((2, 3, 12, 12)).astype(np.float32)
                key = (wave, i)
                tensors[key] = x
                handles[key] = ctx.pack(layer, f"x{wave}", x)
            # consume this wave's later half in reverse order right away
            for i in reversed(range(3, len(layers))):
                key = (wave, i)
                outs[key] = ctx.unpack(layers[i], f"x{wave}", handles.pop(key))
        # drain the remaining handles in global reverse order, discarding
        # every third one without unpacking it
        for n, key in enumerate(sorted(handles, reverse=True)):
            layer = layers[key[1]]
            if n % 3 == 0:
                ctx.discard(layer, f"x{key[0]}", handles[key])
            else:
                outs[key] = ctx.unpack(layer, f"x{key[0]}", handles[key])
        ctx.close()
        return tracker, outs

    def test_stress_bit_identical_and_exact_release(self):
        rng_s = np.random.default_rng(7)
        rng_a = np.random.default_rng(7)
        with ByteArena(budget_bytes=4096) as arena_s:
            t_sync, out_sync = self._interleave("sync", arena_s, rng_s)
            assert len(arena_s) == 0
        with ByteArena(budget_bytes=4096) as arena_a:
            t_async, out_async = self._interleave(
                AsyncEngine(workers=4, prefetch_depth=3), arena_a, rng_a
            )
            assert len(arena_a) == 0
        assert sorted(out_sync) == sorted(out_async)
        for key in out_sync:
            np.testing.assert_array_equal(out_sync[key], out_async[key])
        # exact once-only release: every pack credited back, live counts zero
        for t in (t_sync, t_async):
            assert t._live_raw == 0 and t._live_stored == 0
        for name, rec in t_sync.per_layer.items():
            other = t_async.per_layer[name]
            assert (rec.raw_bytes, rec.stored_bytes, rec.packs) == (
                other.raw_bytes, other.stored_bytes, other.packs)

    def test_repeated_unpack_and_discard_release_once(self, conv, act4d):
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), tracker=tracker,
            engine=AsyncEngine(workers=2),
        )
        h = ctx.pack(conv, "x", act4d)
        y1 = ctx.unpack(conv, "x", h)
        y2 = ctx.unpack(conv, "x", h)
        ctx.discard(conv, "x", h)
        ctx.discard(conv, "x", h)
        np.testing.assert_array_equal(y1, y2)
        assert tracker._live_raw == 0 and tracker._live_stored == 0
        ctx.close()

    def test_discard_before_job_completes_still_charges_tracker(self, conv, act4d):
        """A handle discarded while its pack job may still be in flight is
        finalized first: the tracker sees pack + release, never a release
        of an uncharged handle."""
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), tracker=tracker,
            engine=AsyncEngine(workers=2),
        )
        h = ctx.pack(conv, "x", act4d)
        ctx.discard(conv, "x", h)
        assert tracker.per_layer["c"].packs == 1
        assert tracker._live_raw == 0 and tracker._live_stored == 0
        ctx.close()


class TestShutdownMidFlight:
    def test_close_with_pending_packs_is_clean(self, conv, act4d):
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"),
            engine=AsyncEngine(workers=1),
        )
        for i in range(8):
            ctx.pack(conv, f"x{i}", act4d)
        ctx.close()  # jobs pending on a single worker: cancel or absorb
        ctx.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            ctx.pack(conv, "y", act4d)

    def test_arena_closed_under_engine_is_survivable(self, conv, act4d):
        """Closing the arena with pack jobs still in flight must not
        raise from close(); the pending handles are dropped."""
        arena = ByteArena(budget_bytes=0)
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), storage=arena,
            engine=AsyncEngine(workers=1),
        )
        for i in range(6):
            ctx.pack(conv, f"x{i}", act4d)
        arena.close()  # out from under the engine
        ctx.close()    # must absorb the arena-closed failures
        assert len(arena) == 0

    def test_failed_pack_job_does_not_corrupt_tracker(self, conv, act4d):
        """A pack job that raises (codec error surfacing at flush) leaves
        an uncharged handle; the error-path cleanup discard must not
        credit bytes that were never recorded."""
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), tracker=tracker,
            engine=AsyncEngine(workers=1),
        )
        bad = act4d.copy()
        bad[0, 0, 0, 0] = np.nan  # SZ rejects non-finite input
        h_ok = ctx.pack(conv, "a", act4d)
        h_bad = ctx.pack(conv, "b", bad)
        with pytest.raises(ValueError):
            ctx.flush()
        ctx.discard(conv, "a", h_ok)
        ctx.discard(conv, "b", h_bad)
        assert tracker.per_layer["c"].packs == 1  # only the good handle charged
        assert tracker._live_raw == 0 and tracker._live_stored == 0
        # the failed handle was dropped from the live-order record too
        assert all(h is not h_bad for h in ctx.engine._live)
        ctx.close()

    def test_backpressure_bounds_pending_queue(self, conv, act4d):
        """Queued pack jobs pin raw activations; the pipeline depth must
        stay within max_pending no matter how fast packs are submitted."""
        eng = AsyncEngine(workers=1, max_pending=2)
        ctx = CompressingContext(get_codec("szlike", entropy="zlib"), engine=eng)
        handles = []
        for i in range(8):
            handles.append(ctx.pack(conv, f"x{i}", act4d))
            assert len(eng._pending) <= 2
        for i, h in reversed(list(enumerate(handles))):
            ctx.unpack(conv, f"x{i}", h)
        ctx.close()

    def test_invalid_max_pending_rejected(self):
        with pytest.raises(ValueError):
            AsyncEngine(max_pending=0)

    def test_discard_after_midflight_close_keeps_tracker_consistent(self, conv, act4d):
        """Handles whose pack was cancelled by close() were never charged;
        a late discard (clear_saved/detach) must not credit them."""
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), tracker=tracker,
            engine=AsyncEngine(workers=1),
        )
        handles = [ctx.pack(conv, f"x{i}", act4d) for i in range(6)]
        ctx.close()
        for i, h in enumerate(handles):
            ctx.discard(conv, f"x{i}", h)
        # charged handles balance exactly; dropped ones were skipped
        assert tracker._live_raw == 0 and tracker._live_stored == 0

    def test_equal_payload_handles_tracked_by_identity(self):
        """Handles packing identical tensors (e.g. dead all-zero feature
        maps) must be tracked by identity: field-wise equality would
        choke on ndarray comparison and leak entries from the engine's
        live list."""
        eng = AsyncEngine(workers=1, prefetch_depth=2)
        ctx = CompressingContext(get_codec("szlike", entropy="zlib"), engine=eng)
        convs = [Conv2D(3, 2, 3, rng=1, name=f"z{i}") for i in range(3)]
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        handles = [ctx.pack(c, "x", x) for c in convs]
        assert handles[0] != handles[1]
        for c, h in zip(reversed(convs), reversed(handles)):
            ctx.unpack(c, "x", h)
        # every slot tombstoned: no released handle is still tracked live
        assert all(h is None for h in eng._live)
        ctx.close()

    def test_flush_finalizes_everything(self, conv, act4d):
        tracker = MemoryTracker()
        ctx = CompressingContext(
            get_codec("szlike", entropy="zlib"), tracker=tracker,
            engine=AsyncEngine(workers=2),
        )
        handles = [ctx.pack(conv, f"x{i}", act4d) for i in range(4)]
        ctx.flush()
        assert tracker.per_layer["c"].packs == 4
        assert all(h.stored_nbytes > 0 for h in handles)
        for i, h in enumerate(handles):
            ctx.unpack(conv, f"x{i}", h)
        ctx.close()


class TestAdaptivePrefetchDepth:
    """prefetch_depth="auto": depth derived from observed backward-step
    latency vs materialization cost — a pure scheduling knob, so results
    must stay bit-identical to sync at every depth."""

    @pytest.mark.parametrize("depth", [0, 1, 3, "auto"])
    def test_bit_identity_at_depth(self, depth):
        tr_s, sess_s = train_session("sync")
        tr_a, sess_a = train_session(AsyncEngine(workers=2, prefetch_depth=depth))
        np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
        assert sess_s.tracker.iteration_ratios == sess_a.tracker.iteration_ratios
        assert sess_s.tracker.peak_stored_bytes == sess_a.tracker.peak_stored_bytes

    def test_auto_depth_adapts_from_latencies(self, rng):
        """Feed the EMAs directly: slow materialize over fast backward
        steps must deepen the window; the clamp bounds it."""
        eng = AsyncEngine(workers=1, prefetch_depth="auto", max_auto_depth=4)
        assert eng.adaptive_prefetch
        eng._update_ema("_gap_ema", 0.010)
        eng._update_ema("_job_ema", 0.025)
        assert eng._effective_depth() == 3  # ceil(25ms / 10ms)
        eng._job_ema = 1.0  # pathological codec: clamp holds
        assert eng._effective_depth() == 4
        eng._job_ema = 1e-5  # fast codec: never below one
        assert eng._effective_depth() == 1
        eng.close()

    def test_auto_depth_trains_and_settles(self):
        eng = AsyncEngine(workers=2, prefetch_depth="auto")
        with ByteArena(budget_bytes=0) as arena:
            tr_a, _ = train_session(eng, storage=arena)
            tr_s, _ = train_session("sync")
            np.testing.assert_array_equal(tr_s.history.losses, tr_a.history.losses)
        # the latency model saw real gaps and jobs and settled on a depth
        assert eng._gap_ema is not None and eng._job_ema is not None
        assert 1 <= eng.last_effective_depth <= eng.max_auto_depth

    def test_fixed_depth_engines_do_not_adapt(self):
        eng = AsyncEngine(workers=1, prefetch_depth=2)
        assert not eng.adaptive_prefetch
        eng._update_ema("_gap_ema", 0.001)
        eng._update_ema("_job_ema", 1.0)
        assert eng._effective_depth() == 2
        eng.close()

    def test_bad_depth_strings_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            AsyncEngine(prefetch_depth="turbo")
        with pytest.raises(ValueError):
            AsyncEngine(prefetch_depth="auto", max_auto_depth=0)


class TestCodecPolicyEngine:
    """The unified base gives the baseline policies engines + storage."""

    def test_codec_policy_async_matches_sync(self, conv, act4d):
        outs = {}
        for engine in ("sync", "async"):
            pol = CodecPolicy(get_codec("sparse-lossless"), engine=engine)
            h = pol.pack(conv, "x", act4d)
            outs[engine] = pol.unpack(conv, "x", h)
            assert pol.tracker._live_raw == 0
            pol.close()
        np.testing.assert_array_equal(outs["sync"], outs["async"])

    def test_codec_policy_with_arena_storage(self, conv, act4d):
        with ByteArena(budget_bytes=0) as arena:
            pol = CodecPolicy(
                get_codec("szlike", error_bound=1e-3, entropy="zlib"),
                storage=arena, engine="async",
            )
            h = pol.pack(conv, "x", act4d)
            pol.flush()
            assert arena.spill_count == 1
            y = pol.unpack(conv, "x", h)
            assert np.abs(act4d - y).max() <= 1e-3 * (1 + 1e-6)
            assert len(arena) == 0
            pol.close()

    def test_overlap_statistics_populated(self):
        eng = AsyncEngine(workers=2, prefetch_depth=2)
        _, sess = train_session(eng)
        assert eng.packs_submitted > 0
        assert eng.prefetches_scheduled > 0
        assert eng.prefetch_hits <= eng.prefetches_scheduled
