"""Bind-window weight grouping (``ParamStore(bind_window_bytes=...)``).

Adjacent small layers share one materialization window: entering any
layer of a window materializes the whole group, and a layer leaving its
refcount at zero stays *resident* until the window switches.  Pinned
here: training is bit-identical to the un-windowed store, residency
accounting (``materialized_nbytes``, peak, ``window_switches``) stays
exact, optimizer updates on window-resident weights flow through the
ordinary fetch/writeback cycle, and the forward-side
``stage_next_window`` hook prefetches the next group's spilled bytes.
"""

import numpy as np
import pytest

from repro.core import AsyncEngine, ParamStore
from repro.models import build_scaled_model
from repro.nn import SGD, Adam, SyntheticImageDataset, Trainer, batches


def small_net(rng=42):
    return build_scaled_model("alexnet", num_classes=8, image_size=16, rng=rng)


def train_run(param_store=None, opt_cls=SGD, iters=4, batch=4):
    net = small_net()
    kwargs = {"lr": 0.01, "momentum": 0.9} if opt_cls is SGD else {"lr": 0.001}
    opt = opt_cls(net.parameters(), **kwargs)
    if param_store is not None:
        param_store.attach(net, opt)
    trainer = Trainer(net, opt)
    dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
    trainer.train(batches(dataset, batch, iters, seed=1))
    losses = trainer.history.losses.copy()
    if param_store is not None:
        param_store.detach()
    weights = np.concatenate([p.data.ravel() for p in net.parameters()])
    return losses, weights


class TestWindowedTrainingEquivalence:
    @pytest.mark.parametrize("window_bytes", [1, 16 << 10, 1 << 30])
    def test_bit_identical_to_unwindowed(self, window_bytes):
        """One param per window, a few layers per window, and one window
        for everything must all train identically."""
        base_losses, base_weights = train_run(ParamStore(budget_bytes=0))
        win_losses, win_weights = train_run(
            ParamStore(budget_bytes=0, bind_window_bytes=window_bytes)
        )
        np.testing.assert_array_equal(base_losses, win_losses)
        np.testing.assert_array_equal(base_weights, win_weights)

    def test_bit_identical_with_adam_slots(self):
        base = train_run(ParamStore(budget_bytes=0), opt_cls=Adam)
        win = train_run(
            ParamStore(budget_bytes=0, bind_window_bytes=32 << 10), opt_cls=Adam
        )
        np.testing.assert_array_equal(base[0], win[0])
        np.testing.assert_array_equal(base[1], win[1])

    def test_windows_actually_switch(self):
        store = ParamStore(budget_bytes=0, bind_window_bytes=16 << 10)
        train_run(store)
        assert store.window_switches > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="bind_window_bytes"):
            ParamStore(bind_window_bytes=-1)
        assert ParamStore(bind_window_bytes=0)._windowing is False


class TestResidencyAccounting:
    def test_accounting_returns_to_zero(self):
        store = ParamStore(budget_bytes=0, bind_window_bytes=16 << 10)
        train_run(store)  # detaches inside
        assert store.materialized_nbytes == 0
        assert not store._window_resident
        assert store._current_window is None

    def test_residents_counted_in_materialized_bytes(self):
        """Mid-window, a resident layer's bytes stay charged even at
        refcount zero; the peak covers the whole window."""
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0, bind_window_bytes=1 << 30)  # one window
        store.attach(net, opt)
        total = sum(
            sum(p.data.nbytes for p in params) for params in store._layers.values()
        )
        first = next(iter(store._layers))
        store._bind(first)  # materializes the whole (single) window
        store._unbind(first)
        # All layers are now window-resident at refcount 0.
        assert store.materialized_nbytes == total
        assert store.peak_materialized_nbytes >= total
        store.detach()
        assert store.materialized_nbytes == 0

    def test_windowed_peak_bounded_by_window_not_model(self):
        """Small windows keep the live footprint well under the whole
        model (the reason bind windows exist)."""
        one_window = ParamStore(budget_bytes=0, bind_window_bytes=1 << 30)
        train_run(one_window)
        small = ParamStore(budget_bytes=0, bind_window_bytes=1)
        train_run(small)
        assert small.peak_materialized_nbytes < one_window.peak_materialized_nbytes


class TestStageNextWindow:
    def test_stages_following_window_bytes(self):
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0, bind_window_bytes=1)  # one layer per window
        store.attach(net, opt)
        first = next(iter(store._layers))
        staged = store.stage_next_window(first)
        assert staged > 0  # next window's spilled bytes pulled into memory
        assert store.stage_next_window("no-such-layer") == 0  # soft no-op
        store.detach()

    def test_async_engine_drives_forward_staging(self):
        net = small_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        store = ParamStore(budget_bytes=0, bind_window_bytes=16 << 10)
        from repro.core import CompressedTraining

        engine = AsyncEngine(workers=2, prefetch_depth=1)
        trainer = Trainer(net, opt)
        sess = CompressedTraining(
            net, opt, param_storage=store, engine=engine
        ).attach(trainer)
        dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)
        trainer.train(batches(dataset, 4, 2, seed=1))
        trainer.close()
        assert engine.forward_param_stages > 0
        assert sess.tracker._live_raw == 0
