"""Spec system: building live networks and symbolic shape walking agree."""

import numpy as np
import pytest

from repro.models.specs import (
    AvgPoolS,
    BatchNormS,
    ConvS,
    DropoutS,
    FlattenS,
    GlobalAvgPoolS,
    LinearS,
    LRNS,
    MaxPoolS,
    ReLUS,
    ResidualS,
    build_network,
    walk_shapes,
)


SPECS = [
    ConvS(8, 3, stride=1, padding=1), BatchNormS(), ReLUS(),
    MaxPoolS(2),
    ResidualS(
        main=(ConvS(16, 3, stride=2, padding=1, bias=False), BatchNormS()),
        shortcut=(ConvS(16, 1, stride=2, bias=False), BatchNormS()),
    ),
    ReLUS(),
    GlobalAvgPoolS(),
    LinearS(5),
]


class TestBuildWalkAgreement:
    def test_forward_shape_matches_walk(self, rng):
        in_shape = (2, 3, 16, 16)
        net = build_network(SPECS, in_shape, rng=0)
        x = rng.standard_normal(in_shape).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (2, 5)
        assert net.output_shape(in_shape) == out.shape

    def test_walk_terminal_shape(self):
        reports = walk_shapes(SPECS, (2, 3, 16, 16))
        assert reports[-1].out_shape == (2, 5)

    def test_weight_count_matches_live_params(self):
        in_shape = (2, 3, 16, 16)
        net = build_network(SPECS, in_shape, rng=0)
        live = sum(p.size for p in net.parameters())
        walked = sum(r.weight_count for r in walk_shapes(SPECS, in_shape))
        assert live == walked

    def test_backward_through_built_network(self, rng):
        in_shape = (2, 3, 16, 16)
        net = build_network(SPECS, in_shape, rng=0)
        x = rng.standard_normal(in_shape).astype(np.float32)
        out = net.forward(x)
        dx = net.backward(np.ones_like(out))
        assert dx.shape == in_shape

    def test_conv_reports_flagged(self):
        reports = walk_shapes(SPECS, (2, 3, 16, 16))
        convs = [r for r in reports if r.is_conv]
        assert len(convs) == 3  # main conv, residual main conv, shortcut conv
        assert all(r.kind == "conv" for r in convs)

    def test_saved_bytes_conventions(self):
        reports = walk_shapes(
            [ConvS(4, 3, padding=1), ReLUS(), MaxPoolS(2), DropoutS(0.5)],
            (2, 3, 8, 8),
        )
        conv, relu, pool, drop = reports
        assert conv.saved_bytes == 2 * 3 * 8 * 8 * 4  # fp32 input
        assert relu.saved_bytes == 2 * 4 * 8 * 8 * 1  # 1-byte mask
        assert pool.saved_bytes == 2 * 4 * 4 * 4 * 2  # int16 argmax
        assert drop.saved_bytes == 2 * 4 * 4 * 4 * 4  # fp32 mask

    def test_flops_conv_formula(self):
        r = walk_shapes([ConvS(8, 3, stride=1, padding=1)], (1, 4, 8, 8))[0]
        assert r.flops == 2.0 * 1 * 8 * 8 * 8 * 4 * 9

    def test_residual_shape_mismatch_rejected(self):
        bad = [ResidualS(main=(ConvS(8, 3, stride=2, padding=1),),
                         shortcut=(ConvS(8, 1, stride=1),))]
        with pytest.raises(ValueError):
            build_network(bad, (1, 3, 8, 8), rng=0)

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError):
            walk_shapes([object()], (1, 3, 8, 8))

    @pytest.mark.parametrize("spec,delta", [
        (LRNS(), 0), (AvgPoolS(2), None), (FlattenS(), None),
    ])
    def test_misc_specs_walk(self, spec, delta):
        reports = walk_shapes([spec], (2, 4, 8, 8))
        assert len(reports) == 1
