"""Architecture fidelity: layer counts, parameter counts, Table 1 sizes."""

import numpy as np
import pytest

from repro.models import (
    PAPER_REFERENCE,
    alexnet_specs,
    build_scaled_model,
    conv_activation_bytes,
    full_model_specs,
    resnet18_specs,
    resnet50_specs,
    scaled_model_specs,
    total_saved_bytes,
    vgg16_specs,
    walk_shapes,
    weight_bytes,
)
from repro.models.specs import ConvS, ResidualS


def _count_convs(specs):
    n = 0
    for s in specs:
        if isinstance(s, ConvS):
            n += 1
        elif isinstance(s, ResidualS):
            n += _count_convs(s.main)
            if s.shortcut:
                n += _count_convs(s.shortcut)
    return n


class TestArchitectureFidelity:
    def test_alexnet_has_5_convs(self):
        assert _count_convs(alexnet_specs()) == 5

    def test_vgg16_has_13_convs(self):
        assert _count_convs(vgg16_specs()) == 13

    def test_resnet18_main_convs(self):
        # 1 stem + 2 per basic block x 8 blocks + 3 downsample projections
        assert _count_convs(resnet18_specs()) == 1 + 16 + 3

    def test_resnet50_conv_count(self):
        # 1 stem + 3 per bottleneck x 16 + 4 projections
        assert _count_convs(resnet50_specs()) == 1 + 48 + 4

    @pytest.mark.parametrize("name,params_m", [
        ("alexnet", 61), ("vgg16", 138), ("resnet18", 11.7), ("resnet50", 25.6),
    ])
    def test_parameter_counts_match_literature(self, name, params_m):
        reports = walk_shapes(full_model_specs(name), (1, 3, 224, 224))
        total = sum(r.weight_count for r in reports) / 1e6
        assert total == pytest.approx(params_m, rel=0.05)

    @pytest.mark.parametrize("name,classes", [
        ("alexnet", 1000), ("vgg16", 1000), ("resnet18", 1000), ("resnet50", 1000),
    ])
    def test_full_output_shape(self, name, classes):
        reports = walk_shapes(full_model_specs(name), (2, 3, 224, 224))
        assert reports[-1].out_shape == (2, classes)


class TestTable1Accounting:
    @pytest.mark.parametrize("name,tol", [
        ("alexnet", 0.10), ("vgg16", 0.10), ("resnet50", 0.05),
    ])
    def test_conv_activation_bytes_match_paper(self, name, tol):
        mine = conv_activation_bytes(name, batch=256)
        paper = PAPER_REFERENCE[name].conv_act_bytes_baseline
        assert mine == pytest.approx(paper, rel=tol)

    def test_resnet18_same_order_as_paper(self):
        """ResNet-18 accounting conventions differ (see EXPERIMENTS.md);
        assert same order of magnitude rather than a tight match."""
        mine = conv_activation_bytes("resnet18", batch=256)
        paper = PAPER_REFERENCE["resnet18"].conv_act_bytes_baseline
        assert 0.4 < mine / paper < 1.5

    def test_activation_scales_linearly_with_batch(self):
        a64 = conv_activation_bytes("alexnet", batch=64)
        a256 = conv_activation_bytes("alexnet", batch=256)
        assert a256 == 4 * a64

    def test_activations_dominate_weights(self):
        """Figure 2's point: activations >> weights for CNNs at batch 32+."""
        for name in ("vgg16", "resnet18", "resnet50"):
            assert total_saved_bytes(name, batch=32) > weight_bytes(name)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            full_model_specs("lenet")
        with pytest.raises(KeyError):
            scaled_model_specs("lenet")


class TestScaledModels:
    @pytest.mark.parametrize("name", ["alexnet", "vgg16", "resnet18", "resnet50"])
    def test_scaled_forward_backward(self, name, rng):
        net = build_scaled_model(name, num_classes=5, image_size=32, rng=0)
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (2, 5)
        dx = net.backward(np.ones_like(out))
        assert dx.shape == x.shape

    @pytest.mark.parametrize("name", ["alexnet", "vgg16", "resnet18", "resnet50"])
    def test_scaled_has_conv_layers(self, name):
        from repro.nn import Conv2D, iter_layers

        net = build_scaled_model(name, num_classes=5, image_size=32, rng=0)
        convs = [l for l in iter_layers(net) if isinstance(l, Conv2D)]
        assert len(convs) >= 3

    def test_scaled_trains_one_step(self, rng):
        from repro.nn import SGD, SoftmaxCrossEntropy

        net = build_scaled_model("resnet18", num_classes=4, image_size=32, rng=0)
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        x = rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
        y = rng.integers(0, 4, size=4)
        loss = SoftmaxCrossEntropy()
        logits = net.forward(x)
        l0, d = loss.forward(logits, y)
        net.backward(d)
        opt.step()
        l1, _ = loss.forward(net.forward(x), y)
        assert np.isfinite(l1)
