"""The shipped sources must be reprolint-clean at HEAD.

This is the self-check gate: any rule violation introduced in src/repro
fails this test before it ever reaches the CI lint job.
"""

import os

from repro.lint import lint_paths

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro")
)


def test_src_tree_is_clean():
    violations, files_checked = lint_paths([SRC])
    assert files_checked > 60
    assert violations == [], "\n".join(v.format() for v in violations)
