"""Same pattern as lck001_bad.py but explicitly suppressed."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        return self.count  # reprolint: disable=LCK001
