"""Known-bad: guarded attribute read outside the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        return self.count  # guarded read outside the lock
