"""Known-bad: arena acquisitions that leak or double-release."""


def leaky(arena, blob):
    key = arena.put(blob)  # never released, never escapes
    if not blob:
        return None
    return None


def double_release(arena, blob):
    key = arena.put(blob)
    data = arena.get(key)
    arena.discard(key)
    arena.discard(key)  # second release of the same key
    return data
