"""Known-bad: nondeterminism sources reprolint must flag."""

import random
import time

import numpy as np


def stamp():
    return time.time()  # wall clock


def jitter():
    np.random.seed(0)  # numpy global RNG
    return random.random()  # stdlib global RNG


def order(layers):
    return [n for n in {"a", "b"}]  # hash-ordered set iteration
