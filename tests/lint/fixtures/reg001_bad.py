"""Known-bad: codec constructed by class outside compression/."""


def build():
    from repro.compression.szlike import SZCompressor

    return SZCompressor(error_bound=1e-3)  # bypasses the registry
