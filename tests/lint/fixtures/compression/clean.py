"""Clean: float64 bound math; only reconstructed values are cast down."""

import numpy as np


def reconstruct(codes, error_bound, dtype):
    grid = 2.0 * np.float64(error_bound)
    out = codes.astype(np.float64) * grid
    return out.astype(dtype)  # value cast, no bound identifier involved
