"""Known-bad: float32-truncated bound math (lives under compression/)."""

import numpy as np


def quantize(data, error_bound):
    eb = np.float32(error_bound)  # bound truncated to float32
    return np.round(data / (2.0 * eb))
