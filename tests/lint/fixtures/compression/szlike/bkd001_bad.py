"""Known-bad: szlike code reaching private kernel entry points."""

from repro.kernels.numpy_backend import _numpy_quantize_decode


def decode(codes, outliers, radius, shape, ndim):
    return _numpy_quantize_decode(codes, outliers, radius, shape, ndim)


def pack(module, symbols, lengths, codes, chunk_size):
    return module._numpy_huffman_pack_words(symbols, lengths, codes, chunk_size)
