"""Clean: szlike code dispatching through the backend registry."""

from repro.kernels import get_backend
from repro.kernels.numpy_backend import diff_axes_alloc  # building block, exempt


def decode(codes, outliers, radius, shape, ndim):
    kernels = get_backend("auto")
    return kernels.quantize_decode(codes, outliers, radius, shape, ndim)


def residuals(q, ndim):
    return diff_axes_alloc(q, ndim)
