"""Clean fixture: near-miss patterns no rule may flag."""

import threading
import time

import numpy as np


class Guarded:
    """Lock-owning class whose every guarded touch is under the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.rate = 0.0  # never mutated under the lock: unguarded

    def bump(self):
        with self._lock:
            self.count += 1

    def read(self):
        with self._lock:
            return self.count

    def rate_hint(self):
        return self.rate

    def _sync(self):
        """Advance the counter (callers hold the lock)."""
        self.count += 1


class CondGuarded:
    """A Condition is a lock context manager: ``with self._cond:``
    guards exactly like ``with self._lock:`` on the wrapped lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.queue = []

    def push(self, item):
        with self._cond:
            self.queue.append(item)
            self._cond.notify()

    def steal(self):
        with self._lock:  # same underlying lock as the condition
            return self.queue.pop() if self.queue else None


def transfer(arena, blob):
    key = arena.put(blob)
    try:
        return arena.get(key)
    finally:
        arena.discard(key)


def stash(handles, arena, blob):
    key = arena.put(blob)
    handles.append(key)  # ownership escapes to the caller's list


def durations():
    return time.perf_counter()  # monotonic clock is fine; wall clock is not


def draw(seed):
    rng = np.random.default_rng(seed)  # explicitly seeded generator
    return rng.standard_normal(4)


def ordered(names):
    return sorted({n.lower() for n in names})  # sorted(set) is deterministic
