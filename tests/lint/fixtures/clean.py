"""Clean fixture: near-miss patterns no rule may flag."""

import threading
import time

import numpy as np


class Guarded:
    """Lock-owning class whose every guarded touch is under the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.rate = 0.0  # never mutated under the lock: unguarded

    def bump(self):
        with self._lock:
            self.count += 1

    def read(self):
        with self._lock:
            return self.count

    def rate_hint(self):
        return self.rate

    def _sync(self):
        """Advance the counter (callers hold the lock)."""
        self.count += 1


def transfer(arena, blob):
    key = arena.put(blob)
    try:
        return arena.get(key)
    finally:
        arena.discard(key)


def stash(handles, arena, blob):
    key = arena.put(blob)
    handles.append(key)  # ownership escapes to the caller's list


def durations():
    return time.perf_counter()  # monotonic clock is fine; wall clock is not


def draw(seed):
    rng = np.random.default_rng(seed)  # explicitly seeded generator
    return rng.standard_normal(4)


def ordered(names):
    return sorted({n.lower() for n in names})  # sorted(set) is deterministic
