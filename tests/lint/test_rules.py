"""Each reprolint rule catches its fixture's known-bad pattern at the
expected line, and the clean fixtures stay clean."""

import json
import os
import subprocess
import sys

from repro.lint import lint_paths

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def lint_fixture(*names):
    paths = [os.path.join(FIXTURES, name) for name in names]
    violations, checked = lint_paths(paths)
    assert checked == len(paths)
    return violations


def ids_and_lines(violations):
    return [(v.rule_id, v.line) for v in violations]


def test_lck001_flags_unlocked_read():
    violations = lint_fixture("lck001_bad.py")
    assert ids_and_lines(violations) == [("LCK001", 16)]
    assert "Counter.count" in violations[0].message
    assert "outside" in violations[0].message


def test_lck001_line_suppression():
    assert lint_fixture("lck001_suppressed.py") == []


def test_rel001_flags_leak_and_double_release():
    violations = lint_fixture("rel001_bad.py")
    assert ids_and_lines(violations) == [("REL001", 5), ("REL001", 15)]
    assert "never released" in violations[0].message
    assert "released again" in violations[1].message


def test_ebd001_flags_float32_bound():
    violations = lint_fixture(os.path.join("compression", "ebd001_bad.py"))
    assert ids_and_lines(violations) == [("EBD001", 7)]
    assert "float64" in violations[0].message


def test_det001_flags_clock_rng_and_set_iteration():
    violations = lint_fixture("det001_bad.py")
    assert ids_and_lines(violations) == [
        ("DET001", 10),
        ("DET001", 14),
        ("DET001", 15),
        ("DET001", 19),
    ]
    messages = " | ".join(v.message for v in violations)
    assert "time.time()" in messages
    assert "np.random.seed" in messages
    assert "hash-dependent" in messages


def test_reg001_flags_direct_codec_construction():
    violations = lint_fixture("reg001_bad.py")
    assert ids_and_lines(violations) == [("REG001", 7)]
    assert "get_codec" in violations[0].message


def test_bkd001_flags_private_kernel_references():
    violations = lint_fixture(os.path.join("compression", "szlike", "bkd001_bad.py"))
    assert ids_and_lines(violations) == [("BKD001", 3), ("BKD001", 7), ("BKD001", 11)]
    assert "get_backend" in violations[0].message
    assert "_numpy_quantize_decode" in violations[1].message
    assert "_numpy_huffman_pack_words" in violations[2].message


def test_clean_fixtures_have_no_violations():
    violations = lint_fixture(
        "clean.py",
        os.path.join("compression", "clean.py"),
        os.path.join("compression", "szlike", "clean.py"),
    )
    assert violations == [], "\n".join(v.format() for v in violations)


def _run_cli(*argv):
    env = dict(os.environ)
    src = os.path.join(FIXTURES, os.pardir, os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_json_output_and_exit_code():
    proc = _run_cli("--json", os.path.join(FIXTURES, "reg001_bad.py"))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["files_checked"] == 1
    assert [v["rule"] for v in doc["violations"]] == ["REG001"]


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("LCK001", "REL001", "EBD001", "DET001", "REG001", "BKD001"):
        assert rule_id in proc.stdout
