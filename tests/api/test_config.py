"""SessionConfig serialization, validation, and codec-spec round-trips."""

from __future__ import annotations

import pytest

from repro.api import (
    AdaptiveSpec,
    CodecSpec,
    ConfigError,
    EngineSpec,
    OptimizerSpec,
    PolicyRule,
    SessionConfig,
    StorageSpec,
)
from repro.compression.registry import get_codec, spec_of


class TestRoundTrip:
    def test_default_config_is_empty_dict(self):
        assert SessionConfig().to_dict() == {}

    def test_dict_round_trip_identity(self):
        cfg = SessionConfig(
            codec=CodecSpec("szlike", {"entropy": "zlib", "error_bound": 1e-4}),
            rules=[
                PolicyRule(match="l0", codec=CodecSpec("lossless"), label="a"),
                PolicyRule(match="l[24]", error_bound=2e-4, label="b",
                           eb_min=1e-6, eb_max=1e-2),
                PolicyRule(match="l*", storage="inmem", initial_rel_eb=1e-2),
            ],
            storage=StorageSpec(activations="arena", budget_bytes=1 << 20,
                                params="arena", param_budget_bytes=1 << 18,
                                param_codec=CodecSpec("lossless")),
            engine=EngineSpec(kind="async", workers=3, prefetch_depth="auto"),
            adaptive=AdaptiveSpec(W=25, warmup_iterations=3, eb_max=0.5),
            optimizer=OptimizerSpec(kind="adam", lr=1e-3,
                                    options={"betas": [0.9, 0.99], "eps": 1e-7}),
        )
        d = cfg.to_dict()
        assert SessionConfig.from_dict(d).to_dict() == d

    def test_json_round_trip_identity(self, tmp_path):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l1?", error_bound=1e-3)],
            engine=EngineSpec(kind="async"),
        )
        path = tmp_path / "cfg.json"
        cfg.to_json(str(path))
        assert SessionConfig.from_json(str(path)).to_dict() == cfg.to_dict()
        # and from a raw JSON string
        assert SessionConfig.from_json(cfg.to_json()).to_dict() == cfg.to_dict()

    def test_sparse_serialization_omits_defaults(self):
        d = SessionConfig(engine=EngineSpec(kind="async")).to_dict()
        assert d == {"engine": {"kind": "async"}}

    def test_committed_mixed_policy_config_round_trips(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "configs",
            "mixed_policy_vgg.json",
        )
        cfg = SessionConfig.from_json(path)
        assert len(cfg.rules) == 3
        # two genuinely distinct codec families and distinct bound regimes
        names = {r.codec.name for r in cfg.rules if r.codec is not None}
        assert len(names) >= 2
        assert SessionConfig.from_json(cfg.to_json()).to_dict() == cfg.to_dict()


class TestValidation:
    def test_unknown_codec_lists_available(self):
        with pytest.raises(ConfigError, match="available: .*szlike"):
            CodecSpec("szlik").validate()

    def test_unknown_key_names_section_and_accepted_keys(self):
        with pytest.raises(ConfigError, match="engine: unknown key.*'worker'.*workers"):
            SessionConfig.from_dict({"engine": {"worker": 3}})

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="session: unknown key"):
            SessionConfig.from_dict({"codecs": {}})

    def test_rule_errors_name_the_rule(self):
        with pytest.raises(ConfigError, match=r"rules\[1\].*error_bound must be positive"):
            SessionConfig.from_dict(
                {"rules": [{"match": "l0"}, {"match": "l1", "error_bound": -1.0}]}
            )

    def test_fixed_bound_contradicts_adaptive(self):
        with pytest.raises(ConfigError, match="adaptive=True contradicts"):
            PolicyRule(match="l0", error_bound=1e-3, adaptive=True).validate()

    def test_rule_arena_storage_requires_session_arena(self):
        cfg = SessionConfig(rules=[PolicyRule(match="l0", storage="arena")])
        with pytest.raises(ConfigError, match="storage.activations='arena'"):
            cfg.validate()

    def test_lossy_param_codec_rejected(self):
        with pytest.raises(ConfigError, match="lossy"):
            StorageSpec(params="arena", param_codec=CodecSpec("jpeg")).validate()

    def test_duplicate_rule_labels_rejected(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="a", label="x"), PolicyRule(match="b", label="x")]
        )
        with pytest.raises(ConfigError, match="duplicate rule label"):
            cfg.validate()

    def test_bad_engine_kind(self):
        with pytest.raises(ConfigError, match="'sync' or 'async'"):
            EngineSpec(kind="turbo").validate()

    def test_live_objects_in_options_rejected(self):
        with pytest.raises(ConfigError, match="JSON-serializable"):
            CodecSpec("szlike", {"rng": object()}).validate()

    def test_missing_config_file(self):
        with pytest.raises(ConfigError, match="does not exist"):
            SessionConfig.from_json("/nonexistent/run.json")

    def test_bad_engine_kernel_backend(self):
        with pytest.raises(ConfigError, match="engine: kernel_backend must be one of"):
            EngineSpec(kernel_backend="cuda").validate()

    def test_bad_rule_kernel_backend(self):
        with pytest.raises(ConfigError, match="kernel_backend must be one of"):
            PolicyRule(match="l0", kernel_backend="cuda").validate()

    def test_invalid_json_text(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            SessionConfig.from_json("{not json]")


class TestKernelBackendSpec:
    def test_engine_default_stays_sparse(self):
        assert "kernel_backend" not in EngineSpec().to_dict()

    def test_engine_explicit_backend_round_trips(self):
        cfg = SessionConfig(engine=EngineSpec(kernel_backend="numpy"))
        d = cfg.to_dict()
        assert d["engine"]["kernel_backend"] == "numpy"
        assert SessionConfig.from_dict(d).engine.kernel_backend == "numpy"

    def test_rule_backend_round_trips(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", kernel_backend="numpy", label="a")]
        )
        d = cfg.to_dict()
        assert d["rules"][0]["kernel_backend"] == "numpy"
        assert SessionConfig.from_dict(d).rules[0].kernel_backend == "numpy"

    def test_numba_round_trips_on_numba_less_hosts(self):
        """Validation is membership-only: a config written on a numba
        host parses everywhere — availability is a *build*-time check."""
        cfg = SessionConfig.from_dict({"engine": {"kernel_backend": "numba"}})
        assert cfg.engine.kernel_backend == "numba"

    def test_codec_level_backend_in_spec_of(self):
        codec = get_codec("szlike", kernel_backend="numpy")
        spec = spec_of(codec)
        assert spec["options"]["kernel_backend"] == "numpy"
        clone = get_codec(spec["name"], **spec["options"])
        assert clone.kernel_backend == "numpy"
        # the default ("auto") stays sparse
        assert "kernel_backend" not in spec_of(get_codec("szlike"))["options"]


class TestCodecSpecOf:
    """spec_of is the inverse of get_codec for every registry family."""

    @pytest.mark.parametrize(
        "name,options",
        [
            ("szlike", {}),
            ("szlike", {"error_bound": 1e-4, "entropy": "zlib", "zero_filter": False}),
            ("szlike", {"codebook_cache": True, "codebook_refresh": 16}),
            ("jpeg", {"quality": 75}),
            ("lossless", {"level": 3}),
            ("sparse-lossless", {}),
            ("chunked", {"inner": "szlike", "workers": 2, "error_bound": 1e-3}),
        ],
    )
    def test_spec_of_round_trip(self, name, options):
        codec = get_codec(name, **options)
        spec = spec_of(codec)
        rebuilt = get_codec(spec["name"], **spec["options"])
        assert spec_of(rebuilt) == spec

    def test_spec_of_unknown_type_is_actionable(self):
        with pytest.raises(TypeError, match="registry codec"):
            spec_of(object())

    def test_spec_of_refuses_ablation_mode(self):
        with pytest.raises(ValueError, match="ablation"):
            spec_of(get_codec("szlike", emulate_zero_drift=True))

    def test_codec_spec_build_matches_get_codec(self):
        codec = CodecSpec("szlike", {"error_bound": 5e-4}).build()
        assert codec.error_bound == 5e-4


class TestReviewRegressions:
    """Pin the load-time-vs-runtime validation fixes."""

    def test_partial_rule_clamp_conflict_fails_at_load_time(self):
        # rule eb_min above the session's global eb_max would only have
        # exploded at the controller's first update; must fail in validate
        cfg = SessionConfig(rules=[PolicyRule(match="l*", eb_min=20.0)])
        with pytest.raises(ConfigError, match="effective eb clamps are inverted"):
            cfg.validate()
        # and a rule override that restores a valid pair passes
        SessionConfig(rules=[PolicyRule(match="l*", eb_min=20.0, eb_max=30.0)]).validate()

    def test_engine_integer_knobs_validated(self):
        with pytest.raises(ConfigError, match="prefetch_depth"):
            SessionConfig.from_dict({"engine": {"kind": "async", "prefetch_depth": -3}})
        with pytest.raises(ConfigError, match="max_pending"):
            SessionConfig.from_dict({"engine": {"kind": "async", "max_pending": 0}})
        with pytest.raises(ConfigError, match="max_auto_depth"):
            SessionConfig.from_dict({"engine": {"kind": "async", "max_auto_depth": 0}})

    def test_adaptive_coefficient_round_trips(self):
        from repro.api import capture_session_config
        from repro.core import AdaptiveConfig

        cfg = capture_session_config(
            adaptive_config=AdaptiveConfig(W=10, coefficient=0.5)
        )
        assert cfg is not None
        assert cfg.adaptive.coefficient == 0.5
        rebuilt = SessionConfig.from_json(cfg.to_json())
        assert rebuilt.adaptive.to_adaptive_config().coefficient == 0.5

    def test_default_coefficient_stays_sparse(self):
        from repro.core.error_model import THEORY_COEFFICIENT_A

        d = SessionConfig(adaptive=AdaptiveSpec(W=10)).to_dict()
        assert "coefficient" not in d["adaptive"]
        assert AdaptiveSpec().coefficient == float(THEORY_COEFFICIENT_A)

    def test_param_codec_probe_does_not_leak_a_pool(self):
        # validating a process-executor chunked param codec must close
        # the probe instance's eagerly-forked pool
        spec = StorageSpec(
            params="arena",
            param_codec=CodecSpec("chunked", {"inner": "lossless", "workers": 2,
                                              "executor": "process"}),
        )
        import multiprocessing

        before = len(multiprocessing.active_children())
        spec.validate()
        assert len(multiprocessing.active_children()) == before


class TestMatchKind:
    def test_regex_rule_round_trips(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match=r"l\d+", match_kind="regex", error_bound=1e-3)],
        )
        d = cfg.to_dict()
        assert d["rules"][0]["match_kind"] == "regex"
        again = SessionConfig.from_dict(d)
        assert again.rules[0].match_kind == "regex"
        assert again.to_dict() == d

    def test_glob_default_stays_sparse(self):
        d = SessionConfig(rules=[PolicyRule(match="l*")]).to_dict()
        assert "match_kind" not in d["rules"][0]

    def test_invalid_regex_fails_at_parse_time(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l[", match_kind="regex")],
        )
        with pytest.raises(ConfigError, match=r"rules\[0\].*invalid regex"):
            cfg.validate()

    def test_unknown_match_kind_rejected(self):
        cfg = SessionConfig(rules=[PolicyRule(match="l0", match_kind="prefix")])
        with pytest.raises(ConfigError, match="glob.*regex.*prefix"):
            cfg.validate()

    def test_regex_matcher_is_fullmatch(self):
        from repro.core.policy_table import compile_matcher

        matches = compile_matcher(r"l\d+", kind="regex")
        assert matches("l12")
        assert not matches("l12_extra")  # fullmatch, not search
        assert not matches("xl12")

    def test_regex_rule_selects_layers_in_policy_table(self):
        from repro.api.session import build_policy_table

        cfg = SessionConfig(
            rules=[
                PolicyRule(match=r"(conv|fc)\d", match_kind="regex",
                           error_bound=2e-3, label="re"),
                PolicyRule(match="*", storage="inmem", label="rest"),
            ],
        )
        cfg.validate()
        table = build_policy_table(cfg.rules)
        assert table.group_of("conv1") == "re"
        assert table.group_of("fc2") == "re"
        assert table.group_of("pool1") == "rest"


class TestSanitizerSpec:
    def test_round_trip_and_sparse_default(self):
        from repro.api.config import SanitizerSpec

        assert "sanitizer" not in SessionConfig().to_dict()
        cfg = SessionConfig(sanitizer=SanitizerSpec(enabled=True, poison=False))
        d = cfg.to_dict()
        assert d["sanitizer"] == {"enabled": True, "poison": False}
        assert SessionConfig.from_dict(d).to_dict() == d

    def test_non_bool_flag_rejected(self):
        from repro.api.config import SanitizerSpec

        cfg = SessionConfig(sanitizer=SanitizerSpec(enabled="yes"))
        with pytest.raises(ConfigError, match="sanitizer"):
            cfg.validate()


class TestPipelineOverlapKnobs:
    """EngineSpec unpack/bind-window/shared-cache knobs and per-rule
    arena budgets: round-trip, validation, capture."""

    def test_round_trip(self):
        cfg = SessionConfig(
            storage=StorageSpec(activations="arena"),
            engine=EngineSpec(
                kind="async", unpack_depth=3, shared_codebook_cache=True,
                bind_window_bytes=1 << 20,
            ),
            rules=[PolicyRule(match="l0", label="front", arena_budget=4096)],
        )
        rebuilt = SessionConfig.from_json(cfg.to_json())
        assert rebuilt == cfg
        assert rebuilt.engine.unpack_depth == 3
        assert rebuilt.engine.shared_codebook_cache is True
        assert rebuilt.engine.bind_window_bytes == 1 << 20
        assert rebuilt.rules[0].arena_budget == 4096

    def test_auto_unpack_depth_round_trips(self):
        cfg = SessionConfig(engine=EngineSpec(kind="async", unpack_depth="auto"))
        assert SessionConfig.from_json(cfg.to_json()).engine.unpack_depth == "auto"

    def test_defaults_stay_sparse(self):
        d = SessionConfig(engine=EngineSpec(kind="async")).to_dict()
        assert d["engine"] == {"kind": "async"}

    def test_validation(self):
        with pytest.raises(ConfigError, match="unpack_depth"):
            SessionConfig.from_dict({"engine": {"unpack_depth": -1}})
        with pytest.raises(ConfigError, match="unpack_depth"):
            SessionConfig.from_dict({"engine": {"unpack_depth": "turbo"}})
        with pytest.raises(ConfigError, match="bind_window_bytes"):
            SessionConfig.from_dict({"engine": {"bind_window_bytes": -5}})
        with pytest.raises(ConfigError, match="shared_codebook_cache"):
            SessionConfig.from_dict({"engine": {"shared_codebook_cache": "yes"}})

    def test_arena_budget_validation(self):
        with pytest.raises(ConfigError, match="arena_budget"):
            PolicyRule(match="l0", arena_budget=0).validate()
        with pytest.raises(ConfigError, match="arena_budget"):
            PolicyRule(match="l0", arena_budget=4096, storage="inmem").validate()
        # session-level: a sub-budget needs an arena to carve from
        with pytest.raises(ConfigError, match="arena_budget"):
            SessionConfig(
                rules=[PolicyRule(match="l0", arena_budget=4096)]
            ).validate()

    def test_engine_capture_preserves_unpack_spec(self):
        from repro.api import capture_session_config
        from repro.core.engine import AsyncEngine

        eng = AsyncEngine(workers=3, prefetch_depth=2, unpack_depth="auto")
        cfg = capture_session_config(engine=eng)
        eng.close()
        assert cfg is not None
        assert cfg.engine.unpack_depth == "auto"
        rebuilt = SessionConfig.from_json(cfg.to_json())
        assert rebuilt.engine.unpack_depth == "auto"

    def test_capture_bind_window_and_shared_cache(self):
        from repro.api import capture_session_config
        from repro.compression.registry import ensure_shared_codebook_cache
        from repro.core.engine import AsyncEngine
        from repro.core.param_store import ParamStore

        store = ParamStore(bind_window_bytes=1 << 20)
        codec = get_codec(
            "szlike", error_bound=1e-3, entropy="huffman", codebook_cache=True
        )
        ensure_shared_codebook_cache(codec)
        eng = AsyncEngine(workers=2)
        cfg = capture_session_config(
            compressor=codec, param_storage=store, engine=eng
        )
        eng.close()
        codec.codebook_cache.close()
        store.close()
        assert cfg is not None
        assert cfg.engine.bind_window_bytes == 1 << 20
        assert cfg.engine.shared_codebook_cache is True


class TestDistributedSpec:
    def cfg(self, **kw):
        from repro.api import DistributedSpec

        return SessionConfig(distributed=DistributedSpec(**kw))

    def test_round_trip_identity(self):
        from repro.api import DistributedSpec

        cfg = SessionConfig(
            distributed=DistributedSpec(
                world_size=4,
                grad_codec=CodecSpec("szlike", {"error_bound": 1e-3, "mode": "abs"}),
                error_feedback=False,
                reduce_order="linear",
                rank_arena_budget=1 << 20,
            ),
            storage=StorageSpec(activations="arena", budget_bytes=4 << 20),
        )
        cfg.validate()
        d = cfg.to_dict()
        assert SessionConfig.from_dict(d).to_dict() == d
        assert SessionConfig.from_json(cfg.to_json()).to_dict() == d

    def test_defaults_stay_sparse(self):
        assert "distributed" not in SessionConfig().to_dict()
        assert self.cfg(world_size=2).to_dict() == {"distributed": {"world_size": 2}}

    def test_committed_ddp_config_round_trips(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "configs",
            "ddp_vgg.json",
        )
        cfg = SessionConfig.from_json(path)
        cfg.validate()
        assert cfg.distributed.world_size == 2
        assert cfg.distributed.grad_codec.name == "szlike"
        assert SessionConfig.from_json(cfg.to_json()).to_dict() == cfg.to_dict()

    def test_unknown_key_names_the_section(self):
        with pytest.raises(ConfigError, match="distributed"):
            SessionConfig.from_dict({"distributed": {"wrold_size": 2}})

    def test_world_size_error_names_the_section(self):
        with pytest.raises(ConfigError, match="distributed: world_size"):
            self.cfg(world_size=0).validate()
        with pytest.raises(ConfigError, match="distributed: world_size"):
            self.cfg(world_size=True).validate()

    def test_reduce_order_validated(self):
        with pytest.raises(ConfigError, match="distributed: reduce_order"):
            self.cfg(world_size=2, reduce_order="ring").validate()

    def test_unbounded_lossy_grad_codec_rejected(self):
        with pytest.raises(
            ConfigError, match="distributed.grad_codec.*error-bounded.*lossless"
        ):
            self.cfg(world_size=2, grad_codec=CodecSpec("jpeg")).validate()

    def test_error_bounded_and_lossless_grad_codecs_accepted(self):
        for spec in (
            CodecSpec("szlike", {"error_bound": 1e-3}),
            CodecSpec("lossless"),
            CodecSpec("sparse-lossless"),
        ):
            self.cfg(world_size=2, grad_codec=spec).validate()

    def test_rule_grad_codec_requires_distributed(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", grad_codec=CodecSpec("sparse-lossless"))]
        )
        with pytest.raises(ConfigError, match="world_size > 1"):
            cfg.validate()

    def test_rule_grad_codec_round_trips(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", grad_codec=CodecSpec("sparse-lossless"))],
        )
        cfg.distributed.world_size = 2
        cfg.validate()
        d = cfg.to_dict()
        assert SessionConfig.from_dict(d).to_dict() == d
        back = SessionConfig.from_dict(d)
        assert back.rules[0].grad_codec.name == "sparse-lossless"

    def test_rank_arena_budget_requires_arena_storage(self):
        with pytest.raises(ConfigError, match="rank_arena_budget"):
            self.cfg(world_size=2, rank_arena_budget=1 << 20).validate()

    def test_rank_arena_budget_must_be_positive(self):
        with pytest.raises(ConfigError, match="rank_arena_budget"):
            self.cfg(world_size=2, rank_arena_budget=-4).validate()
