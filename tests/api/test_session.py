"""build_session equivalence contracts.

Three things are pinned here:

1. **Config == hand-wired**: a session built from a SessionConfig trains
   bit-identically to the equivalent legacy ``Trainer`` +
   ``CompressedTraining`` pair (the shims really are shims).
2. **JSON == programmatic**: ``to_json -> from_json -> build_session``
   changes nothing — a committed file reproduces a run.
3. **Per-layer policies behave**: rules resolve the right codec / bound /
   storage per layer, fixed bounds survive the adaptive controller,
   per-rule accounting lands in the tracker.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import (
    AdaptiveSpec,
    CodecSpec,
    ConfigError,
    EngineSpec,
    OptimizerSpec,
    PolicyRule,
    ProfilerSpec,
    SessionConfig,
    StorageSpec,
    build_session,
)
from repro.compression.lossless import LosslessCompressedTensor
from repro.compression.szlike import CompressedTensor
from repro.core import AdaptiveConfig, CompressedTraining, ParamStore
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

MIXED_CONFIG = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "configs",
    "mixed_policy_vgg.json",
)


def make_net(model="alexnet", seed=42, image_size=16):
    return build_scaled_model(model, num_classes=8, image_size=image_size, rng=seed)


def run(session_or_trainer, iters=5, batch=4, image_size=16, data_seed=7):
    dataset = SyntheticImageDataset(
        num_classes=8, image_size=image_size, signal=0.4, seed=data_seed
    )
    session_or_trainer.train(batches(dataset, batch, iters, seed=1))
    return session_or_trainer.history.losses


class TestShimEquivalence:
    def test_default_config_matches_legacy_compressed_training(self):
        with build_session(make_net(), SessionConfig(
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2)
        )) as s:
            losses_cfg = run(s)
            ratios_cfg = list(s.tracker.iteration_ratios)
            bounds_cfg = dict(s.error_bounds)

        net = make_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(net, opt)
        legacy = CompressedTraining(
            net, opt, config=AdaptiveConfig(W=10, warmup_iterations=2)
        ).attach(trainer)
        losses_legacy = run(trainer)
        trainer.close()

        np.testing.assert_array_equal(losses_cfg, losses_legacy)
        assert ratios_cfg == legacy.tracker.iteration_ratios
        assert bounds_cfg == legacy.error_bounds

    def test_legacy_session_config_twin_reproduces_bit_identically(self):
        """CompressedTraining(...) builds a SessionConfig internally;
        feeding it back through build_session is the same run."""
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(net, opt)
        legacy = CompressedTraining(
            net, opt,
            compressor="szlike",
            config=AdaptiveConfig(W=10, warmup_iterations=2),
            engine="async",
        ).attach(trainer)
        losses_legacy = run(trainer)
        trainer.close()

        twin = legacy.session_config
        assert twin is not None
        # the twin itself serializes
        twin2 = SessionConfig.from_json(twin.to_json())
        with build_session(make_net(), twin2) as s:
            np.testing.assert_array_equal(run(s), losses_legacy)
            assert s.tracker.iteration_ratios == legacy.tracker.iteration_ratios

    def test_trainer_shim_config_twin(self):
        """Bare Trainer(param_store=..., profiler=True) == its config."""
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(
            net, opt, param_store=ParamStore(budget_bytes=64 << 10), profiler=True
        )
        twin = trainer.session_config
        assert twin is not None
        assert twin.compress_activations is False
        assert twin.storage.params == "arena"
        assert twin.profiler.enabled is True
        losses_legacy = run(trainer)
        trainer.close()

        with build_session(make_net(), twin) as s:
            np.testing.assert_array_equal(run(s), losses_legacy)
            assert s.compressed is None
            assert s.param_store is not None
            assert s.profiler is not None
            assert s.profiler.total_seconds("step") > 0

    def test_non_declarative_sessions_have_no_config_twin(self):
        class WeirdCodec:
            error_bounded = False
            lossless = True

            def compress(self, x, error_bound=None):
                raise NotImplementedError

            def decompress(self, ct):
                raise NotImplementedError

        net = make_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        legacy = CompressedTraining(net, opt, compressor=WeirdCodec())
        assert legacy.session_config is None
        legacy.close()

    def test_out_of_core_param_config_matches_legacy(self):
        cfg = SessionConfig(
            storage=StorageSpec(params="arena", param_budget_bytes=64 << 10),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            losses_cfg = run(s)
            assert s.param_store is not None
            assert s.param_store.fetch_count > 0

        net = make_net()
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(net, opt)
        CompressedTraining(
            net, opt,
            config=AdaptiveConfig(W=10, warmup_iterations=2),
            param_storage=ParamStore(budget_bytes=64 << 10),
        ).attach(trainer)
        losses_legacy = run(trainer)
        trainer.close()
        np.testing.assert_array_equal(losses_cfg, losses_legacy)


class TestJsonReproducibility:
    def test_json_round_trip_trains_bit_identically(self):
        cfg = SessionConfig(
            codec=CodecSpec("szlike", {"entropy": "zlib"}),
            rules=[PolicyRule(match="l0", error_bound=1e-3)],
            storage=StorageSpec(activations="arena", budget_bytes=1 << 20),
            engine=EngineSpec(kind="async"),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s1:
            losses_direct = run(s1)
            ratios_direct = list(s1.tracker.iteration_ratios)

        with build_session(make_net(), SessionConfig.from_json(cfg.to_json())) as s2:
            np.testing.assert_array_equal(run(s2), losses_direct)
            assert list(s2.tracker.iteration_ratios) == ratios_direct

    def test_committed_mixed_policy_config_acceptance(self):
        """The acceptance artifact: the committed JSON builds a
        mixed-policy VGG session (>= 2 distinct codecs and bound
        regimes via globs), round-trips unchanged, and trains
        bit-identically to the programmatically-built equivalent."""
        cfg = SessionConfig.from_json(MIXED_CONFIG)
        assert SessionConfig.from_json(cfg.to_json()).to_dict() == cfg.to_dict()

        with build_session(make_net("vgg16"), cfg) as s1:
            losses_file = run(s1, iters=4, batch=4)
            groups = {r.layer_name: r.packs for r in s1.tracker.group_summary()}
            table = s1.policy_table
            # globs spread the conv layers across >= 2 rule groups
            assert groups["early-tight"] > 0
            assert groups["mid-lossless"] > 0
            assert groups["late-chunked"] > 0
            assert table.group_of("l0") == "early-tight"
            assert table.group_of("l5") == "mid-lossless"
            assert table.group_of("l10") == "late-chunked"
            # distinct codecs actually packed: SZ for l0, lossless for l5
            ctx = s1.compressed.ctx
            assert type(ctx._layer_codec["l0"]) is not type(ctx._layer_codec["l5"])
            # distinct error-bound regimes: l0/l2 pinned, others adaptive
            assert s1.error_bounds["l0"] == pytest.approx(5e-4)
            assert s1.error_bounds["l2"] == pytest.approx(5e-4)
            assert s1.error_bounds["l10"] != pytest.approx(5e-4)

        # programmatic twin: same tree built in Python, not parsed
        with build_session(make_net("vgg16"), SessionConfig.from_dict(cfg.to_dict())) as s2:
            np.testing.assert_array_equal(run(s2, iters=4, batch=4), losses_file)


class TestPolicyBehaviour:
    def _mixed_session(self, **overrides):
        defaults = dict(
            rules=[
                PolicyRule(match="l0", label="pinned", error_bound=2e-3),
                PolicyRule(match="l4", label="loose", codec=CodecSpec("lossless")),
            ],
            adaptive=AdaptiveSpec(W=2, warmup_iterations=2),
        )
        defaults.update(overrides)
        return build_session(make_net(), SessionConfig(**defaults))

    def test_fixed_bound_survives_adaptive_updates(self):
        with self._mixed_session() as s:
            run(s, iters=6)
            assert s.compressed.controller.updates > 0
            assert s.error_bounds["l0"] == pytest.approx(2e-3)
            # unmatched layers were adapted away from the pinned value
            others = [v for k, v in s.error_bounds.items() if k not in ("l0",)]
            assert any(v != pytest.approx(2e-3) for v in others)

    def test_rule_codec_actually_packs_that_family(self):
        packed = {}

        with self._mixed_session() as s:
            ctx = s.compressed.ctx
            orig = ctx._make_pack_job

            def spying(layer, arr):
                job = orig(layer, arr)

                def wrapped():
                    out = job()
                    packed[layer.name] = out[0]
                    return out

                return wrapped

            ctx._make_pack_job = spying
            run(s, iters=1)
        assert isinstance(packed["l4"], LosslessCompressedTensor)
        assert isinstance(packed["l0"], CompressedTensor)

    def test_per_rule_inmem_storage_under_arena_session(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", label="hot", storage="inmem")],
            storage=StorageSpec(activations="arena", budget_bytes=1 << 20),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        seen = {"hot_arena": 0, "other_arena": 0, "other_total": 0}
        with build_session(make_net(), cfg) as s:
            ctx = s.compressed.ctx
            orig = ctx._finalize_pack

            def spying(handle, payload):
                orig(handle, payload)
                if handle.layer_name == "l0":
                    assert handle.arena_key is None, "inmem rule must skip the arena"
                    seen["hot_arena"] += handle.arena_key is not None
                else:
                    seen["other_total"] += 1
                    seen["other_arena"] += handle.arena_key is not None

            ctx._finalize_pack = spying
            run(s, iters=2)
        assert seen["other_total"] > 0 and seen["other_arena"] == seen["other_total"]

    def test_per_rule_group_accounting(self):
        with self._mixed_session() as s:
            run(s, iters=3)
            groups = {r.layer_name: r for r in s.tracker.group_summary()}
            assert set(groups) >= {"pinned", "loose", "default"}
            assert groups["pinned"].packs == 3  # one conv1 pack per iteration
            # group ledger is consistent with the per-layer ledger
            assert groups["pinned"].raw_bytes == s.tracker.per_layer["l0"].raw_bytes

    def test_per_rule_eb_clamp_override(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", label="capped", eb_max=1e-6)],
            adaptive=AdaptiveSpec(W=2, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            run(s, iters=6)
            assert s.compressed.controller.updates > 0
            assert s.error_bounds["l0"] <= 1e-6

    def test_adaptive_disabled_keeps_warmup_bounds(self):
        cfg = SessionConfig(adaptive=AdaptiveSpec(enabled=False, W=2))
        with build_session(make_net(), cfg) as s:
            run(s, iters=5)
            assert s.compressed.controller.updates == 0
            assert s.compressed.adaptive_enabled is False

    def test_async_engine_bit_identical_to_sync_under_policies(self):
        results = {}
        for kind in ("sync", "async"):
            cfg = SessionConfig(
                rules=[
                    PolicyRule(match="l0", label="pinned", error_bound=2e-3),
                    PolicyRule(match="l4", label="loose", codec=CodecSpec("lossless")),
                ],
                storage=StorageSpec(activations="arena", budget_bytes=1 << 18),
                engine=EngineSpec(kind=kind),
                adaptive=AdaptiveSpec(W=2, warmup_iterations=2),
            )
            with build_session(make_net(), cfg) as s:
                results[kind] = (run(s, iters=5), list(s.tracker.iteration_ratios))
        np.testing.assert_array_equal(results["sync"][0], results["async"][0])
        assert results["sync"][1] == results["async"][1]

    def test_session_close_is_idempotent_and_owned(self):
        cfg = SessionConfig(
            engine=EngineSpec(kind="async"),
            storage=StorageSpec(params="arena", param_budget_bytes=32 << 10),
            profiler=ProfilerSpec(enabled=True),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        s = build_session(make_net(), cfg)
        run(s, iters=2)
        s.close()
        s.close()  # idempotent
        # parameters restored to residency by the one close
        for p in s.network.parameters():
            assert np.isfinite(p.data).all()

    def test_prebuilt_optimizer_override(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.05, momentum=0.0)
        with build_session(net, SessionConfig(), optimizer=opt) as s:
            assert s.optimizer is opt

    def test_adam_from_config(self):
        cfg = SessionConfig(
            optimizer=OptimizerSpec(kind="adam", lr=1e-3,
                                    options={"betas": [0.9, 0.99]}),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            losses = run(s, iters=3)
            assert np.isfinite(losses).all()
            assert s.optimizer.betas == (0.9, 0.99)


class TestPipelineOverlapWiring:
    """build_session threads the PR's overlap knobs into the live stack."""

    def _cfg(self, **engine_kwargs):
        return SessionConfig(
            storage=StorageSpec(
                activations="arena", budget_bytes=1 << 16,
                params="arena", param_budget_bytes=1 << 16,
            ),
            engine=EngineSpec(kind="async", workers=2, **engine_kwargs),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )

    def test_rule_arena_budget_reaches_the_arena(self):
        cfg = self._cfg()
        cfg.rules = [PolicyRule(
            match="l0", label="front", codec=CodecSpec("lossless"),
            arena_budget=2048,
        )]
        with build_session(make_net(), cfg) as s:
            run(s, iters=3)
            stats = s.compressed.ctx.storage.group_stats()
            assert stats["front"]["budget_bytes"] == 2048
            assert stats["front"]["spill_count"] > 0  # cap actually bites

    def test_bind_window_bytes_reaches_param_store(self):
        cfg = self._cfg(bind_window_bytes=32 << 10)
        with build_session(make_net(), cfg) as s:
            assert s.param_store.bind_window_bytes == 32 << 10
            run(s, iters=3)
            assert s.param_store.window_switches > 0

    def test_shared_codebook_cache_upgrades_codecs(self):
        from repro.compression.szlike import SharedCodebookCache

        cfg = self._cfg(shared_codebook_cache=True)
        cfg.codec = CodecSpec("szlike", {"entropy": "huffman", "codebook_cache": True})
        cfg.rules = [PolicyRule(
            match="l0", label="front",
            codec=CodecSpec("szlike", {"entropy": "huffman", "codebook_cache": True,
                                       "error_bound": 1e-3}),
        )]
        with build_session(make_net(), cfg) as s:
            assert isinstance(
                s.compressed.ctx.compressor.codebook_cache, SharedCodebookCache
            )
            rule_codec = s.policy_table.rules[0].codec
            assert isinstance(rule_codec.codebook_cache, SharedCodebookCache)
            run(s, iters=2)

    def test_config_unpack_depth_bit_identical_to_sync(self):
        sync_cfg = self._cfg()
        sync_cfg.engine = EngineSpec(kind="sync")
        with build_session(make_net(), sync_cfg) as s:
            losses_sync = run(s)
        for depth in (0, 2, "auto"):
            cfg = self._cfg(prefetch_depth=2, unpack_depth=depth,
                            bind_window_bytes=32 << 10)
            with build_session(make_net(), cfg) as s:
                losses = run(s)
                assert s.engine.unpack_depth == depth
            np.testing.assert_array_equal(losses_sync, losses)

    def test_knobs_round_trip_through_json(self, tmp_path):
        cfg = self._cfg(unpack_depth=2, bind_window_bytes=1 << 20,
                        shared_codebook_cache=True)
        cfg.rules = [PolicyRule(match="l0", label="front", arena_budget=4096)]
        path = tmp_path / "overlap.json"
        cfg.to_json(str(path))
        rebuilt = SessionConfig.from_json(str(path))
        assert rebuilt == cfg


class TestConfigRoundTripSurface:
    """Satellite: Session.from_json + session.capture() identities."""

    def test_from_json_builds_and_trains(self, tmp_path):
        cfg = SessionConfig(adaptive=AdaptiveSpec(W=10, warmup_iterations=2))
        path = tmp_path / "run.json"
        cfg.to_json(str(path))
        from repro.api import Session

        with Session.from_json(str(path), make_net()) as s:
            losses_file = run(s)
        with build_session(make_net(), cfg) as s:
            losses_cfg = run(s)
        np.testing.assert_array_equal(losses_file, losses_cfg)

    def test_capture_is_identity(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", codec=CodecSpec("lossless"))],
            engine=EngineSpec(kind="async", workers=2),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            captured = s.capture()
        assert captured.to_dict() == cfg.to_dict()
        assert captured is not cfg  # an independent copy

    def test_capture_round_trips_distributed_config(self):
        from repro.api import DistributedSpec

        cfg = SessionConfig(
            compress_activations=False,
            distributed=DistributedSpec(world_size=2),
        )
        with build_session(make_net(), cfg) as s:
            captured = s.capture()
        assert captured.to_dict() == cfg.to_dict()
        assert captured.distributed.world_size == 2

    def test_captured_config_rebuilds_the_same_run(self):
        cfg = SessionConfig(adaptive=AdaptiveSpec(W=10, warmup_iterations=2))
        with build_session(make_net(), cfg) as s:
            losses_a = run(s)
            captured = s.capture()
        with build_session(make_net(), captured) as s:
            losses_b = run(s)
        np.testing.assert_array_equal(losses_a, losses_b)


class TestKernelBackendWiring:
    def test_engine_backend_applies_to_session_codec(self):
        cfg = SessionConfig(
            engine=EngineSpec(kernel_backend="numpy"),
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            stats = s.kernel_stats
            assert stats["selected_backend"] == "numpy"
            for key in ("numba_probed", "auto_fallbacks", "runtime_fallbacks"):
                assert key in stats

    def test_rule_backend_override_clones_session_codec(self):
        cfg = SessionConfig(
            rules=[PolicyRule(match="l0", kernel_backend="numpy", label="pinned")],
            adaptive=AdaptiveSpec(W=10, warmup_iterations=2),
        )
        with build_session(make_net(), cfg) as s:
            table = s.policy_table
            pol = table.rules[0]
            # the override got its own clone of the session codec ...
            assert pol.codec is not None
            session_codec = s.compressed.ctx.compressor
            assert pol.codec is not session_codec
            assert pol.codec.kernel_backend_selected == "numpy"
            run(s, iters=2)

    def test_explicit_numba_unavailable_fails_at_build(self):
        from repro.kernels import available_backends

        if "numba" in available_backends():
            pytest.skip("numba installed: explicit selection succeeds here")
        cfg = SessionConfig(engine=EngineSpec(kernel_backend="numba"))
        with pytest.raises(ConfigError, match="unavailable"):
            build_session(make_net(), cfg)

    def test_auto_fallback_counter_visible_in_session_stats(self, monkeypatch):
        import sys

        from repro.kernels.backends import _reset_probe_for_tests

        _reset_probe_for_tests()
        try:
            monkeypatch.setitem(sys.modules, "numba", None)  # poison the probe
            cfg = SessionConfig(adaptive=AdaptiveSpec(W=10, warmup_iterations=2))
            with build_session(make_net(), cfg) as s:
                losses = run(s, iters=2)
                assert len(losses) == 2  # degraded silently, training works
                stats = s.kernel_stats
                assert stats["selected_backend"] == "numpy"
                assert stats["numba_available"] is False
                assert stats["auto_fallbacks"] >= 1
        finally:
            _reset_probe_for_tests()
