"""Regression tests: ``Session.close()`` is a guarded no-op the second
time — a double-close must never double-release resources — for both
the single-worker session and the multi-process DistributedSession.

A multi-tenant server calls ``session.close()`` on eviction *and* again
through ``server.close()``'s sweep; before the explicit ``_closed``
guard this leaned entirely on every close hook being individually
re-entrant."""

from __future__ import annotations

import numpy as np

from repro.api import SessionConfig, build_session
from repro.api.config import DistributedSpec, EngineSpec, StorageSpec
from repro.models.specs import ConvS, FlattenS, LinearS, ReLUS, build_network
from repro.nn import SyntheticImageDataset, batches


def make_net(seed=42, image_size=12, batch=8):
    specs = [ConvS(8, 3, padding=1), ReLUS(), FlattenS(), LinearS(8)]
    return build_network(specs, (batch, 3, image_size, image_size), rng=seed)


def data(iters=2, batch=8, image_size=12):
    dataset = SyntheticImageDataset(num_classes=8, image_size=image_size, signal=0.6, seed=7)
    return batches(dataset, batch, iters, seed=1)


class TestSingleWorkerDoubleClose:
    def test_close_hooks_run_exactly_once(self):
        cfg = SessionConfig(
            engine=EngineSpec(kind="async"),
            storage=StorageSpec(activations="arena", budget_bytes=1 << 20),
        )
        session = build_session(make_net(), cfg)
        calls = []
        session.trainer.close_hooks.append(lambda tr: calls.append(1))
        session.train(data())
        session.close()
        assert calls == [1]
        session.close()
        session.close()
        assert calls == [1]  # guarded: later closes never re-enter hooks

    def test_closed_flag_set_before_hooks_run(self):
        # A hook that (indirectly) re-enters close() must not recurse.
        session = build_session(make_net(), SessionConfig())
        reentered = []
        session.trainer.close_hooks.append(
            lambda tr: (session.close(), reentered.append(session._closed))
        )
        session.close()
        assert reentered == [True]

    def test_context_manager_plus_explicit_close(self):
        with build_session(make_net(), SessionConfig()) as session:
            session.train(data())
            session.close()  # explicit close inside the with block
        for p in session.network.parameters():
            assert np.isfinite(p.data).all()


class TestDistributedDoubleClose:
    def test_double_close_is_a_noop(self):
        cfg = SessionConfig(
            compress_activations=False,
            distributed=DistributedSpec(world_size=2),
        )
        session = build_session(make_net(), cfg)
        session.train(data(iters=2))
        losses = list(session.history.losses)
        session.close()
        weights = [p.data.copy() for p in session.network.parameters()]
        session.close()  # second close: no rank respawn, no re-pull
        session.close()
        for before, after in zip(weights, (p.data for p in session.network.parameters())):
            assert np.array_equal(before, after)
        assert list(session.history.losses) == losses
