"""Gradient codec resolution, error feedback, and rank-config derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CodecSpec, PolicyRule, SessionConfig, StorageSpec
from repro.api.config import DistributedSpec
from repro.compression.registry import SparseLosslessCodec
from repro.compression.szlike import SZCompressor
from repro.distributed import (
    ErrorFeedback,
    build_grad_plan,
    derive_rank_config,
    downlink_codec_spec,
)
from repro.models import build_scaled_model


def make_net(seed=42):
    return build_scaled_model("alexnet", num_classes=8, image_size=16, rng=seed)


class TestGradPlan:
    def test_default_codec_is_sparse_lossless(self):
        net = make_net()
        cfg = SessionConfig(distributed=DistributedSpec(world_size=2))
        plan = build_grad_plan(net, cfg)
        assert len(plan) == len(list(net.parameters()))
        assert all(isinstance(gp.codec, SparseLosslessCodec) for gp in plan)
        # one shared instance across every parameter with the same spec
        assert len({id(gp.codec) for gp in plan}) == 1

    def test_plan_order_follows_layer_traversal(self):
        net = make_net()
        cfg = SessionConfig(distributed=DistributedSpec(world_size=2))
        plan = build_grad_plan(net, cfg)
        ids = [id(gp.param) for gp in plan]
        assert ids == [id(p) for p in net.parameters()]

    def test_rule_grad_codec_wins_per_layer(self):
        net = make_net()
        cfg = SessionConfig(
            rules=[
                PolicyRule(
                    match="l0",
                    grad_codec=CodecSpec("szlike", {"error_bound": 1e-3, "mode": "abs"}),
                )
            ],
            distributed=DistributedSpec(world_size=2),
        )
        plan = build_grad_plan(net, cfg)
        by_name = {gp.name: gp for gp in plan}
        assert isinstance(by_name["l0.weight"].codec, SZCompressor)
        assert isinstance(by_name["l0.bias"].codec, SZCompressor)
        others = [gp for gp in plan if not gp.name.startswith("l0.")]
        assert others and all(
            isinstance(gp.codec, SparseLosslessCodec) for gp in others
        )

    def test_empty_network_rejected(self):
        from repro.nn import ReLU, Sequential

        cfg = SessionConfig(distributed=DistributedSpec(world_size=2))
        with pytest.raises(ValueError, match="no parameters"):
            build_grad_plan(Sequential([ReLU(name="r0")]), cfg)

    def test_downlink_spec_is_lossless_and_fresh(self):
        a, b = downlink_codec_spec(), downlink_codec_spec()
        assert a.name == "sparse-lossless"
        assert a is not b
        a.options["x"] = 1
        assert "x" not in b.options  # no shared mutable state


class _Param:
    def __init__(self, shape):
        self.data = np.zeros(shape, dtype=np.float32)


def _plan_of(shapes, codec):
    from repro.distributed import GradParam

    return [GradParam(param=_Param(s), name=f"p{i}", codec=codec)
            for i, s in enumerate(shapes)]


class TestErrorFeedback:
    def roundtrip(self, codec, u):
        return np.asarray(codec.decompress(codec.compress(u)), dtype=np.float32)

    def test_residual_is_what_compression_dropped(self):
        codec = CodecSpec("szlike", {"error_bound": 1e-2, "mode": "abs"}).build()
        plan = _plan_of([(8, 8)], codec)
        fb = ErrorFeedback(plan, enabled=True)
        rng = np.random.default_rng(0)
        g = rng.standard_normal((8, 8)).astype(np.float32)

        fb.begin_step()
        u = fb.fold(0, g)
        np.testing.assert_array_equal(u, g)  # residual starts at zero
        decoded = self.roundtrip(codec, u)
        fb.settle(0, u, decoded)
        np.testing.assert_array_equal(fb._residuals[0], u - decoded)
        assert 0.0 < fb.last_norm() <= 1e-2  # abs bound caps every element

        # next step folds the standing residual in
        fb.begin_step()
        u2 = fb.fold(0, g)
        np.testing.assert_array_equal(u2, g + (u - decoded))

    def test_residual_shrinks_with_decaying_gradients(self):
        """The acceptance property: as training converges (gradients
        decay), the EF residual norm shrinks over iterations."""
        codec = CodecSpec("szlike", {"error_bound": 1e-2, "mode": "rel"}).build()
        plan = _plan_of([(16, 16)], codec)
        fb = ErrorFeedback(plan, enabled=True)
        rng = np.random.default_rng(1)
        g0 = rng.standard_normal((16, 16)).astype(np.float32)
        norms = []
        for t in range(8):
            fb.begin_step()
            u = fb.fold(0, g0 * (0.5 ** t))
            fb.settle(0, u, self.roundtrip(codec, u))
            norms.append(fb.last_norm())
        assert norms[-1] < norms[0]
        assert norms[-1] < 0.5 * max(norms)

    def test_accumulated_applied_tracks_accumulated_true(self):
        """EF's convergence argument: sum of applied gradients stays
        within one residual of the sum of true gradients."""
        codec = CodecSpec("szlike", {"error_bound": 5e-2, "mode": "abs"}).build()
        plan = _plan_of([(32,)], codec)
        fb = ErrorFeedback(plan, enabled=True)
        rng = np.random.default_rng(2)
        true_sum = np.zeros(32, dtype=np.float64)
        applied_sum = np.zeros(32, dtype=np.float64)
        for _ in range(20):
            g = rng.standard_normal(32).astype(np.float32)
            fb.begin_step()
            u = fb.fold(0, g)
            decoded = self.roundtrip(codec, u)
            fb.settle(0, u, decoded)
            true_sum += g
            applied_sum += decoded
        # telescoping: true_sum - applied_sum == final residual
        np.testing.assert_allclose(
            true_sum - applied_sum, fb._residuals[0], atol=1e-5
        )
        assert np.abs(true_sum - applied_sum).max() <= 5e-2 + 1e-5

    def test_disabled_feedback_is_inert(self):
        codec = CodecSpec("szlike", {"error_bound": 1e-2, "mode": "abs"}).build()
        plan = _plan_of([(4, 4)], codec)
        fb = ErrorFeedback(plan, enabled=False)
        g = np.ones((4, 4), dtype=np.float32)
        fb.begin_step()
        assert fb.fold(0, g) is g
        fb.settle(0, g, np.zeros_like(g))
        assert fb.last_norm() == 0.0
        assert not fb._residuals[0].any()


class TestDeriveRankConfig:
    def test_strips_distributed_and_applies_budget(self):
        cfg = SessionConfig(
            storage=StorageSpec(activations="arena", budget_bytes=8 << 20),
            distributed=DistributedSpec(world_size=4, rank_arena_budget=1 << 20),
        )
        local = derive_rank_config(cfg.validate())
        assert local.distributed.world_size == 1
        assert local.distributed.rank_arena_budget is None
        assert local.storage.budget_bytes == 1 << 20
        # the source config is untouched
        assert cfg.distributed.world_size == 4
        assert cfg.storage.budget_bytes == 8 << 20

    def test_strips_rule_grad_codecs_but_keeps_activation_side(self):
        cfg = SessionConfig(
            rules=[
                PolicyRule(
                    match="l0",
                    error_bound=1e-3,
                    grad_codec=CodecSpec("sparse-lossless"),
                )
            ],
            distributed=DistributedSpec(world_size=2),
        )
        local = derive_rank_config(cfg.validate())
        assert local.rules[0].grad_codec is None
        assert local.rules[0].error_bound == 1e-3
        assert local.rules[0].match == "l0"
        # derived config passes single-worker validation
        local.validate()
