"""End-to-end contracts of the data-parallel session.

The four load-bearing properties:

1. **Bit-reproducible**: two runs from the committed ``ddp_vgg.json``
   produce identical losses and identical final weights.
2. **Rank consistency**: every rank holds bit-identical weights after
   every step (same broadcast bytes, same optimizer).
3. **Single-worker equivalence**: with a lossless gradient codec the
   2-rank run matches the 1-worker run up to float summation order; with
   a bounded-lossy codec it matches within the configured bound.
4. **Error feedback**: the residual each rank reports is capped by the
   codec's abs bound, and the exchange ledger records it.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import (
    CodecSpec,
    ConfigError,
    ProfilerSpec,
    SessionConfig,
    build_session,
)
from repro.api.config import DistributedSpec
from repro.distributed import DistributedSession
from repro.models.specs import ConvS, FlattenS, LinearS, MaxPoolS, ReLUS, build_network
from repro.nn import SGD, SyntheticImageDataset, batches

DDP_CONFIG = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "configs", "ddp_vgg.json"
)


def make_net(seed=42, image_size=12):
    """A small dropout-free conv net: no per-shard RNG consumption, so
    the 2-rank run is comparable to the 1-worker run."""
    specs = [
        ConvS(8, 3, padding=1), ReLUS(), MaxPoolS(2),
        ConvS(16, 3, padding=1), ReLUS(),
        FlattenS(), LinearS(8),
    ]
    return build_network(specs, (8, 3, image_size, image_size), rng=seed)


def data(iters=4, batch=8, image_size=12, seed=7):
    dataset = SyntheticImageDataset(
        num_classes=8, image_size=image_size, signal=0.6, seed=seed
    )
    return batches(dataset, batch, iters, seed=1)


def ddp_config(world_size=2, grad_codec=None, **kw):
    return SessionConfig(
        compress_activations=False,
        distributed=DistributedSpec(
            world_size=world_size, grad_codec=grad_codec, **kw
        ),
    )


SZ_GRAD = CodecSpec("szlike", {"error_bound": 1e-3, "mode": "abs"})


def eval_batch(n=8, seed=9):
    dataset = SyntheticImageDataset(num_classes=8, image_size=12, signal=0.6, seed=seed)
    return next(iter(batches(dataset, n, 1, seed=3)))


def run_losses(net, cfg, iters=4):
    with build_session(net, cfg) as s:
        s.train(data(iters))
        losses = list(s.history.losses)
    # read weights only after close(): that is when a distributed
    # session pulls rank 0's trained weights back into the network
    return losses, [np.array(p.data) for p in net.parameters()]


class TestReproducibility:
    def test_committed_config_bit_identical_across_repeats(self):
        """Acceptance: a 2-rank run from the committed ddp_vgg.json is
        bit-reproducible — same losses, same final weights."""
        cfg = SessionConfig.from_json(DDP_CONFIG)
        assert cfg.distributed.world_size == 2
        runs = []
        for _ in range(2):
            net = make_net()
            with build_session(net, cfg) as s:
                assert isinstance(s, DistributedSession)
                s.train(data(3))
                losses = list(s.history.losses)
            weights = [np.array(p.data) for p in net.parameters()]
            runs.append((losses, weights))
        assert runs[0][0] == runs[1][0]
        for a, b in zip(runs[0][1], runs[1][1]):
            np.testing.assert_array_equal(a, b)

    def test_rank_weights_bit_identical_across_ranks(self):
        with build_session(make_net(), ddp_config(grad_codec=SZ_GRAD)) as s:
            s.train(data(3))
            w0 = s.rank_weights(0)
            w1 = s.rank_weights(1)
            assert len(w0) == len(w1) > 0
            for a, b in zip(w0, w1):
                np.testing.assert_array_equal(a, b)

    def test_close_pulls_rank0_weights_into_network(self):
        net = make_net()
        s = build_session(net, ddp_config())
        s.train(data(2))
        w0 = s.rank_weights(0)
        s.close()
        for param, expect in zip(net.parameters(), w0):
            np.testing.assert_array_equal(param.data, expect)
        s.close()  # idempotent

    def test_linear_reduce_order_also_reproducible(self):
        nets = [make_net(), make_net()]
        a = run_losses(nets[0], ddp_config(reduce_order="linear"), iters=3)
        b = run_losses(nets[1], ddp_config(reduce_order="linear"), iters=3)
        assert a[0] == b[0]


class TestSingleWorkerEquivalence:
    def single_worker(self, iters=4):
        net = make_net()
        losses, weights = run_losses(net, SessionConfig(compress_activations=False), iters)
        return losses, weights

    def test_lossless_grad_codec_matches_single_worker(self):
        """Sparse-lossless exchange: the only difference from the
        1-worker run is float summation order (shard means folded in
        float64), so losses agree to tight tolerance."""
        ref_losses, ref_weights = self.single_worker()
        ddp_losses, ddp_weights = run_losses(make_net(), ddp_config())
        np.testing.assert_allclose(ddp_losses, ref_losses, rtol=0, atol=1e-5)
        for a, b in zip(ddp_weights, ref_weights):
            np.testing.assert_allclose(a, b, rtol=0, atol=1e-5)

    def test_szlike_grad_codec_matches_within_bound(self):
        """Acceptance: final loss under a bounded-lossy gradient codec
        matches the single-worker run within the configured bound (the
        1e-3 abs bound perturbs each gradient element by <= 1e-3 per
        step; with error feedback the drift stays of that order)."""
        ref_losses, _ = self.single_worker()
        ddp_losses, _ = run_losses(make_net(), ddp_config(grad_codec=SZ_GRAD))
        assert abs(ddp_losses[-1] - ref_losses[-1]) < 0.05
        np.testing.assert_allclose(ddp_losses, ref_losses, rtol=0, atol=0.05)


class TestExchangeLedger:
    def test_stats_shape_and_residuals(self):
        with build_session(make_net(), ddp_config(grad_codec=SZ_GRAD)) as s:
            s.train(data(3))
            stats = s.grad_exchange_stats
        assert stats["world_size"] == 2
        assert stats["steps"] == 3
        assert len(stats["per_rank"]) == 2
        for rank_stats in stats["per_rank"]:
            assert rank_stats["raw_bytes"] > 0
            assert rank_stats["compressed_bytes"] > 0
            assert rank_stats["ratio"] > 0
            assert len(rank_stats["residual_norms"]) == 3
            # abs bound 1e-3 caps every element, hence the RMS
            assert all(0.0 <= r <= 1e-3 for r in rank_stats["residual_norms"])
        assert stats["downlink"]["ratio"] > 0

    def test_lossless_codec_has_zero_residual(self):
        with build_session(make_net(), ddp_config()) as s:
            s.train(data(2))
            stats = s.grad_exchange_stats
        for rank_stats in stats["per_rank"]:
            assert rank_stats["residual_norms"] == [0.0, 0.0]

    def test_error_feedback_off_reports_zero_norms(self):
        cfg = ddp_config(grad_codec=SZ_GRAD, error_feedback=False)
        with build_session(make_net(), cfg) as s:
            s.train(data(2))
            stats = s.grad_exchange_stats
        for rank_stats in stats["per_rank"]:
            assert rank_stats["residual_norms"] == [0.0, 0.0]


class TestProfilerFlow:
    def test_grad_stages_and_overlap_accounting(self):
        cfg = ddp_config(grad_codec=SZ_GRAD)
        cfg.profiler = ProfilerSpec(enabled=True)
        s = build_session(make_net(), cfg)
        try:
            s.train(data(2))
        finally:
            s.close()
        snap = s.profiler.snapshot()
        for name in ("step", "grad-reduce"):
            assert name in snap, f"coordinator should record {name}"
        for name in ("grad-pack", "grad-exchange", "grad-unpack"):
            assert name in snap, f"merged rank snapshot should carry {name}"
            assert snap[name]["calls"] >= 2 * 2  # 2 ranks x 2 steps
        overlap = s.profiler.overlap_summary()
        # the ranks' exchange wait is always exposed; the coordinator's
        # reduce work is hidden behind it
        assert overlap["grad-exchange"]["hidden_fraction"] == 0.0
        assert overlap["grad-reduce"]["hidden_fraction"] == 1.0

    def test_profiler_disabled_records_nothing(self):
        with build_session(make_net(), ddp_config()) as s:
            s.train(data(2))
            assert s.profiler is None


class TestSurfaceAndGuards:
    def test_evaluate_and_repr(self):
        with build_session(make_net(), ddp_config()) as s:
            s.train(data(2))
            images, labels = eval_batch(16)
            acc = s.evaluate(images, labels, batch_size=8)
            assert 0.0 <= acc <= 1.0
            assert "world_size=2" in repr(s)
            assert s.world_size == 2

    def test_batch_smaller_than_world_size_raises(self):
        cfg = ddp_config(world_size=4)
        with build_session(make_net(), cfg) as s:
            images, labels = eval_batch(2)
            with pytest.raises(ValueError, match="batch of 2"):
                s.train_step(images, labels)

    def test_prebuilt_optimizer_rejected(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01)
        with pytest.raises(ConfigError, match="pre-built optimizer"):
            build_session(net, ddp_config(), optimizer=opt)

    def test_worker_error_surfaces_with_traceback(self):
        with build_session(make_net(), ddp_config()) as s:
            s._conns[0].send(("bogus-tag",))
            # wait for the rank to die so the next send hits a closed
            # pipe — the error must still surface as "rank 0 ...", not a
            # bare BrokenPipeError
            s._processes[0].join(timeout=10)
            with pytest.raises(RuntimeError, match="rank 0"):
                s.rank_weights(0)

    def test_closed_session_refuses_work(self):
        s = build_session(make_net(), ddp_config())
        s.close()
        images, labels = eval_batch(8)
        with pytest.raises(RuntimeError, match="closed"):
            s.train_step(images, labels)

    def test_compressed_activations_compose_with_ddp(self):
        """The full stack: per-rank arenas + activation compression +
        gradient exchange, from the committed config shape."""
        cfg = SessionConfig.from_json(DDP_CONFIG)
        net = make_net()
        with build_session(net, cfg) as s:
            rec = s.train_step(*next(iter(data(1))))
            assert np.isfinite(rec.loss)
            w0, w1 = s.rank_weights(0), s.rank_weights(1)
            for a, b in zip(w0, w1):
                np.testing.assert_array_equal(a, b)
