"""Deterministic weighted reduction: the coordinator's float addition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import REDUCE_ORDERS, reduce_arrays


def arrays(n, shape=(5, 3), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


class TestReduceArrays:
    def test_weighted_mean_matches_numpy(self):
        arrs = arrays(4)
        weights = [4.0, 4.0, 3.0, 5.0]
        for order in REDUCE_ORDERS:
            out = reduce_arrays(arrs, weights, order)
            expect = np.average(
                np.stack([a.astype(np.float64) for a in arrs]),
                axis=0,
                weights=weights,
            )
            np.testing.assert_allclose(out, expect.astype(np.float32), rtol=1e-6)
            assert out.dtype == np.float32

    @pytest.mark.parametrize("order", REDUCE_ORDERS)
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7])
    def test_bit_identical_across_repeats(self, order, n):
        arrs = arrays(n, seed=n)
        weights = [float(i + 1) for i in range(n)]
        a = reduce_arrays(arrs, weights, order)
        b = reduce_arrays([np.array(x) for x in arrs], list(weights), order)
        np.testing.assert_array_equal(a, b)

    def test_single_array_is_identity(self):
        (a,) = arrays(1)
        np.testing.assert_array_equal(reduce_arrays([a], [2.0], "tree"), a)

    def test_tree_and_linear_agree_numerically(self):
        # different summation order: bitwise may differ, values must agree
        arrs = arrays(6, seed=3)
        weights = [1.0] * 6
        t = reduce_arrays(arrs, weights, "tree")
        ln = reduce_arrays(arrs, weights, "linear")
        np.testing.assert_allclose(t, ln, rtol=1e-6)

    def test_validation_errors(self):
        arrs = arrays(2)
        with pytest.raises(ValueError, match="order"):
            reduce_arrays(arrs, [1.0, 1.0], "ring")
        with pytest.raises(ValueError):
            reduce_arrays([], [], "tree")
        with pytest.raises(ValueError):
            reduce_arrays(arrs, [1.0], "tree")
        with pytest.raises(ValueError):
            reduce_arrays(arrs, [1.0, 0.0], "tree")
        with pytest.raises(ValueError):
            reduce_arrays([arrs[0], arrs[1][:2]], [1.0, 1.0], "tree")
