"""Legacy shims warn (with migration hints); build_session stays quiet."""

from __future__ import annotations

import warnings

import numpy as np

from repro.api import SessionConfig, build_session
from repro.core import AdaptiveConfig, CompressedTraining
from repro.core.arena import ByteArena
from repro.models import build_scaled_model
from repro.nn import SGD, Trainer


def make_net(seed=42):
    return build_scaled_model("alexnet", num_classes=8, image_size=16, rng=seed)


def deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestLegacyShimWarnings:
    def test_compressed_training_warns_and_points_at_build_session(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            CompressedTraining(net, opt)
        found = deprecations(record)
        assert len(found) == 1
        assert "build_session" in str(found[0].message)

    def test_knob_specific_migration_hints(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            CompressedTraining(
                net,
                opt,
                config=AdaptiveConfig(W=10, warmup_iterations=2),
                storage=ByteArena(budget_bytes=1 << 20),
            )
        msg = str(deprecations(record)[0].message)
        assert "config.adaptive = AdaptiveSpec" in msg
        assert "config.storage.activations = 'arena'" in msg
        assert "param_codec" not in msg  # hints only for knobs passed

    def test_trainer_session_knobs_warn(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            trainer = Trainer(net, opt, profiler=True)
        trainer.close()  # releases the process-wide active profiler
        msg = str(deprecations(record)[0].message)
        assert "config.profiler.enabled = True" in msg

    def test_plain_trainer_does_not_warn(self):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.01)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            Trainer(net, opt)
        assert deprecations(record) == []

    def test_build_session_emits_no_deprecation_warnings(self):
        """The front door constructs the same classes internally;
        its own compositions must stay silent."""
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with build_session(make_net(), SessionConfig()):
                pass
        assert deprecations(record) == []

    def test_deprecated_path_still_trains_identically(self):
        """The shim warns but keeps its equivalence contract."""
        from repro.nn import SyntheticImageDataset, batches

        def run(use_shim):
            net = make_net()
            dataset = SyntheticImageDataset(num_classes=8, image_size=16, seed=5)
            stream = batches(dataset, 4, 3, seed=1)
            if use_shim:
                opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
                trainer = Trainer(net, opt)
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    CompressedTraining(
                        net, opt, config=AdaptiveConfig(W=10, warmup_iterations=2)
                    ).attach(trainer)
                trainer.train(stream)
                losses = list(trainer.history.losses)
                trainer.close()
                return losses
            from repro.api import AdaptiveSpec

            cfg = SessionConfig(adaptive=AdaptiveSpec(W=10, warmup_iterations=2))
            with build_session(net, cfg) as s:
                s.train(stream)
                return list(s.history.losses)

        np.testing.assert_array_equal(run(True), run(False))
