"""Kernel backend registry: selection semantics, degradation discipline,
and bit-identity of the compiled-loop algorithms against the reference.

The numba loops are testable without numba: ``python_loops()`` returns
the same algorithms uncompiled, so every environment pins the
bit-identity contract; the CI numba leg re-runs the codec contract
suite over the *compiled* loops.
"""

from __future__ import annotations

import sys
from contextlib import ExitStack

import numpy as np
import pytest

from repro.kernels import (
    KERNEL_BACKENDS,
    available_backends,
    get_backend,
    kernel_stats,
)
from repro.kernels.backends import (
    KernelBackend,
    _reset_probe_for_tests,
    warmup_backend,
)
from repro.kernels import numba_backend, numpy_backend
from repro.utils.scratch import ScratchPool


@pytest.fixture
def fresh_probe():
    """Forget the process-wide probe result around a test (and after,
    so later tests re-probe cleanly)."""
    _reset_probe_for_tests()
    yield
    _reset_probe_for_tests()


def python_backend(fallbacks=None, loops=None):
    """The numba algorithms, uncompiled, as a KernelBackend."""
    sink = fallbacks.append if fallbacks is not None else (lambda name: None)
    fns = numba_backend.make_kernel_functions(
        loops or numba_backend.python_loops(), sink
    )
    return KernelBackend(name="python-loops", **fns)


def encode_with(backend, x, eb=1e-3, radius=512, ndim=2):
    pool = ScratchPool()
    with ExitStack() as stack:
        codes, outliers, flat = backend.quantize_encode(x, eb, radius, ndim, pool, stack)
        return codes.copy(), outliers.copy(), flat.copy()


class TestRegistry:
    def test_numpy_always_available(self):
        b = get_backend("numpy")
        assert b.name == "numpy"
        assert get_backend("numpy") is b  # singleton reference backend
        assert "numpy" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="must be one of"):
            get_backend("cuda")
        assert set(KERNEL_BACKENDS) == {"numpy", "numba", "auto"}

    def test_explicit_numba_resolves_or_raises(self):
        if "numba" in available_backends():
            assert get_backend("numba").name == "numba"
        else:
            with pytest.raises(ValueError, match="unavailable"):
                get_backend("numba")

    def test_auto_matches_availability(self):
        expected = "numba" if "numba" in available_backends() else "numpy"
        assert get_backend("auto").name == expected

    def test_auto_degrades_counted_when_numba_import_poisoned(
        self, fresh_probe, monkeypatch
    ):
        # None in sys.modules makes ``import numba`` raise ImportError —
        # the closest stand-in for a broken install.
        monkeypatch.setitem(sys.modules, "numba", None)
        b = get_backend("auto")
        assert b.name == "numpy"
        stats = kernel_stats()
        assert stats["numba_probed"] is True
        assert stats["numba_available"] is False
        assert "numba" in stats["probe_error"]
        assert stats["auto_fallbacks"] == 1
        assert stats["auto_selects"] == "numpy"
        # explicit numba surfaces the same probe error instead of degrading
        with pytest.raises(ValueError, match="unavailable"):
            get_backend("numba")

    def test_warmup_passes_for_python_loops(self, fresh_probe):
        warmup_backend(python_backend())  # raises on any bit mismatch
        assert kernel_stats()["warmups"] == 1

    def test_warmup_rejects_miscompiled_kernel(self, fresh_probe):
        loops = numba_backend.python_loops()
        good = loops["quantize_grid"]

        def off_by_one(x, denom, out):
            good(x, denom, out)
            out[0] += 1

        loops["quantize_grid"] = off_by_one
        fallbacks = []
        with pytest.raises(ValueError, match="warmup mismatch"):
            warmup_backend(python_backend(fallbacks, loops))


class TestBitIdentity:
    """The uncompiled numba algorithms against the reference backend."""

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_encode_decode(self, ndim, dtype):
        rng = np.random.default_rng(7 + ndim)
        x = (rng.standard_normal((3, 4, 6, 5)) * 5).astype(dtype)
        x.reshape(-1)[::5] = 0.0
        ref, alt = get_backend("numpy"), python_backend()
        # radius 8 forces genuine outliers through the escape channel
        for radius in (8, 512):
            c1, o1, f1 = encode_with(ref, x, radius=radius, ndim=ndim)
            c2, o2, f2 = encode_with(alt, x, radius=radius, ndim=ndim)
            np.testing.assert_array_equal(c1, c2)
            np.testing.assert_array_equal(o1, o2)
            np.testing.assert_array_equal(f1, f2)
            q1 = ref.quantize_decode(c1, o1, radius, x.shape, ndim)
            q2 = alt.quantize_decode(c2, o2, radius, x.shape, ndim)
            np.testing.assert_array_equal(q1, q2)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_lorenzo_predict(self, ndim):
        rng = np.random.default_rng(11)
        q = rng.integers(-1000, 1000, size=(2, 3, 7, 4), dtype=np.int64)
        ref, alt = get_backend("numpy"), python_backend()
        np.testing.assert_array_equal(
            ref.lorenzo_predict(q, ndim), alt.lorenzo_predict(q, ndim)
        )

    @pytest.mark.parametrize("chunk_size", [7, 16, 1000])
    def test_huffman_pack_unpack(self, chunk_size):
        # a mixed-length canonical-style book: symbol i gets 4 or 8 bits
        rng = np.random.default_rng(13)
        n_sym = 16
        lengths = np.where(np.arange(n_sym) < 8, 4, 8).astype(np.uint8)
        # canonical codeword assignment: shorter codes first
        codes = np.zeros(n_sym, dtype=np.uint32)
        next_code, prev_len = 0, 0
        for s in np.argsort(lengths, kind="stable"):
            next_code <<= int(lengths[s]) - prev_len
            prev_len = int(lengths[s])
            codes[s] = next_code
            next_code += 1
        symbols = rng.integers(0, n_sym, size=333).astype(np.uint16)
        ref, alt = get_backend("numpy"), python_backend()
        p1, t1, off1 = ref.huffman_pack_words(symbols, lengths, codes, chunk_size)
        p2, t2, off2 = alt.huffman_pack_words(symbols, lengths, codes, chunk_size)
        assert (p1, t1) == (p2, t2)
        np.testing.assert_array_equal(off1, off2)
        # dense decode tables for the max length
        L = int(lengths.max())
        tsym = np.zeros(1 << L, dtype=np.uint32)
        tlen = np.zeros(1 << L, dtype=np.int64)
        for s in range(n_sym):
            l = int(lengths[s])
            base = int(codes[s]) << (L - l)
            tsym[base : base + (1 << (L - l))] = s
            tlen[base : base + (1 << (L - l))] = l
        s1 = ref.huffman_unpack_window(p1, t1, symbols.size, tsym, tlen, L, off1, chunk_size)
        s2 = alt.huffman_unpack_window(p2, t2, symbols.size, tsym, tlen, L, off2, chunk_size)
        np.testing.assert_array_equal(s1, symbols.astype(np.uint32))
        np.testing.assert_array_equal(s2, symbols.astype(np.uint32))


class TestDegradation:
    def test_contract_errors_raise_identically_without_fallback(self):
        fallbacks = []
        alt = python_backend(fallbacks)
        ref = get_backend("numpy")
        # a marker with no stored outlier: bookkeeping mismatch on both
        codes = np.array([0, 5, 6], dtype=np.uint32)
        empty = np.empty(0, dtype=np.int64)
        for b in (ref, alt):
            with pytest.raises(ValueError, match="outlier bookkeeping mismatch"):
                b.quantize_decode(codes, empty, 4, (3,), 1)
        # a symbol without a codeword: same contract error on both
        lengths = np.zeros(8, dtype=np.uint8)
        lengths[1] = 2
        cw = np.zeros(8, dtype=np.uint32)
        sym = np.array([1, 3], dtype=np.uint16)
        for b in (ref, alt):
            with pytest.raises(ValueError, match="symbol 3 has no codeword"):
                b.huffman_pack_words(sym, lengths, cw, 16)
        assert fallbacks == []  # contract errors never count as fallbacks

    def test_runtime_error_falls_back_to_reference(self):
        loops = numba_backend.python_loops()

        def boom(x, denom, out):
            raise RuntimeError("simulated miscompile")

        loops["quantize_grid"] = boom
        fallbacks = []
        alt = python_backend(fallbacks, loops)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 4, 4)).astype(np.float32)
        c_alt, o_alt, _ = encode_with(alt, x)
        c_ref, o_ref, _ = encode_with(get_backend("numpy"), x)
        np.testing.assert_array_equal(c_alt, c_ref)
        np.testing.assert_array_equal(o_alt, o_ref)
        assert fallbacks == ["quantize_encode"]


class TestCompressorIntegration:
    @pytest.mark.parametrize("backend", available_backends())
    def test_szlike_roundtrip_per_backend(self, backend):
        from repro.compression.registry import get_codec

        codec = get_codec(
            "szlike", error_bound=1e-3, entropy="huffman", kernel_backend=backend
        )
        assert codec.kernel_backend_selected == backend
        rng = np.random.default_rng(5)
        x = np.maximum(rng.standard_normal((2, 4, 12, 12)), 0).astype(np.float32)
        y = codec.decompress(codec.compress(x))
        assert np.abs(x.astype(np.float64) - y).max() <= 1e-3 * (1 + 1e-6)

    def test_bad_backend_name_rejected_at_construction(self):
        from repro.compression.registry import get_codec

        with pytest.raises(ValueError, match="must be one of"):
            get_codec("szlike", kernel_backend="cuda")

    def test_pickled_codec_reresolves_backend(self):
        import pickle

        from repro.compression.registry import get_codec

        codec = get_codec("szlike", kernel_backend="auto")
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.kernel_backend == "auto"
        assert clone.kernel_backend_selected in ("numpy", "numba")
        rng = np.random.default_rng(9)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(
            codec.decompress(codec.compress(x)), clone.decompress(clone.compress(x))
        )
