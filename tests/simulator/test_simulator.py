"""Performance simulator: cost model, interconnects, throughput shapes."""

import pytest

from repro.simulator import (
    BASELINE,
    IB_EDR,
    NVLINK2,
    PCIE3_X16,
    TrainingSimulator,
    V100,
    V100_32GB,
    activation_bytes,
    gradient_bytes,
    iteration_time,
    layrub_like,
    migration_time,
    model_costs,
    our_policy,
    ring_allreduce_time,
)
from repro.models import full_model_specs


class TestInterconnect:
    def test_migration_time_linear_in_bytes(self):
        t1 = migration_time(1e9, PCIE3_X16)
        t2 = migration_time(2e9, PCIE3_X16)
        assert t2 > t1
        assert (t2 - PCIE3_X16.latency) == pytest.approx(2 * (t1 - PCIE3_X16.latency))

    def test_nvlink_faster_than_pcie(self):
        assert migration_time(1e9, NVLINK2) < migration_time(1e9, PCIE3_X16)

    def test_allreduce_single_worker_free(self):
        assert ring_allreduce_time(1e9, 1, IB_EDR) == 0.0

    def test_allreduce_bandwidth_term(self):
        """2(p-1)/p * bytes / bw dominates for large buffers."""
        t = ring_allreduce_time(1e9, 4, IB_EDR)
        expected = 2 * 3 / 4 * 1e9 / IB_EDR.bandwidth
        assert t == pytest.approx(expected, rel=0.01)

    def test_allreduce_grows_sublinearly_with_workers(self):
        t4 = ring_allreduce_time(1e9, 4, IB_EDR)
        t16 = ring_allreduce_time(1e9, 16, IB_EDR)
        assert t16 < 2 * t4  # (p-1)/p saturates

    def test_validation(self):
        with pytest.raises(ValueError):
            migration_time(-1, PCIE3_X16)
        with pytest.raises(ValueError):
            ring_allreduce_time(1e9, 0, IB_EDR)


class TestCostModel:
    def test_costs_positive_and_complete(self):
        specs = full_model_specs("alexnet")
        costs = model_costs(specs, 32, V100)
        assert all(c.forward_s > 0 and c.backward_s > 0 for c in costs)
        assert iteration_time(costs) > 0

    def test_backward_costs_more_than_forward(self):
        costs = model_costs(full_model_specs("resnet18"), 32, V100)
        assert sum(c.backward_s for c in costs) > sum(c.forward_s for c in costs)

    def test_activation_bytes_match_registry(self):
        from repro.models import total_saved_bytes

        costs = model_costs(full_model_specs("vgg16"), 64, V100)
        assert activation_bytes(costs) == total_saved_bytes("vgg16", 64)

    def test_gradient_bytes_match_weights(self):
        from repro.models import weight_bytes

        costs = model_costs(full_model_specs("resnet50"), 8, V100)
        assert gradient_bytes(costs) == weight_bytes("resnet50")


class TestThroughputShapes:
    """The qualitative Figure 11 behaviours."""

    def test_throughput_increases_with_batch(self):
        sim = TrainingSimulator("resnet50", V100)
        t8 = sim.simulate(8).images_per_s
        t64 = sim.simulate(64).images_per_s
        assert t64 > t8

    def test_throughput_saturates(self):
        sim = TrainingSimulator("resnet50", V100)
        t64 = sim.simulate(64).images_per_s
        t256 = sim.simulate(256).images_per_s
        gain_small = sim.simulate(16).images_per_s / sim.simulate(2).images_per_s
        gain_large = t256 / t64
        assert gain_small > gain_large  # diminishing returns

    def test_memory_limits_batch(self):
        sim = TrainingSimulator("resnet50", V100)
        assert not sim.simulate(512).fits
        assert sim.simulate(16).fits

    def test_compression_raises_max_batch(self):
        """The paper's speedup mechanism: saved memory -> larger batch.
        VGG-16 (no BatchNorm copies) gains the most; BN-heavy ResNet-50
        keeps uncompressible normalization tensors resident."""
        for model, factor in (("vgg16", 2.0), ("resnet50", 1.5)):
            base = TrainingSimulator(model, V100, policy=BASELINE)
            ours = TrainingSimulator(model, V100, policy=our_policy(11.0))
            assert ours.max_batch() > factor * base.max_batch()

    def test_larger_device_larger_batch(self):
        b16 = TrainingSimulator("resnet50", V100).max_batch()
        b32 = TrainingSimulator("resnet50", V100_32GB).max_batch()
        assert b32 > b16

    def test_compression_overhead_moderate_same_batch(self):
        """Section 5.4: ~17% overhead at the same batch size."""
        base = TrainingSimulator("resnet50", V100).simulate(32)
        ours = TrainingSimulator("resnet50", V100, policy=our_policy(11.0)).simulate(32)
        overhead = ours.iteration_s / base.iteration_s - 1
        assert 0.02 < overhead < 0.40

    def test_batch_growth_offsets_overhead(self):
        """Section 5.4: the extra batch headroom recovers throughput —
        ours at its (larger) max batch beats ours at the baseline's max
        batch, and relative overhead shrinks as N grows."""
        our_sim = TrainingSimulator("resnet50", V100, policy=our_policy(11.0))
        base_sim = TrainingSimulator("resnet50", V100)
        b_base = base_sim.max_batch()
        b_ours = our_sim.max_batch()
        assert our_sim.simulate(b_ours).images_per_s > our_sim.simulate(32).images_per_s
        # Paper's VGG example: compressed at 8x the batch (similar memory
        # footprint) is nearly as fast per image as baseline at the small
        # batch — the batch headroom recovers most of the codec cost.
        per_img_base_32 = base_sim.simulate(32).iteration_s / 32
        per_img_ours_256 = our_sim.simulate(256).iteration_s / 256
        assert per_img_ours_256 < per_img_base_32 * 1.15

    def test_migration_policy_slower_than_ours(self):
        """Layrub-class migration pays PCIe round trips (24.1% in paper)."""
        ours = TrainingSimulator("vgg16", V100, policy=our_policy(11.0)).simulate(32)
        lay = TrainingSimulator("vgg16", V100, policy=layrub_like()).simulate(32)
        assert lay.iteration_s > ours.iteration_s

    def test_multi_worker_adds_allreduce_cost(self):
        sim = TrainingSimulator("resnet50", V100)
        t1 = sim.simulate(32, workers=1)
        t4 = sim.simulate(32, workers=4)
        assert t4.iteration_s > t1.iteration_s
        assert t4.images_per_s > 2 * t1.images_per_s  # still scales

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            TrainingSimulator("resnet50", V100).simulate(0)

    def test_sweep_returns_all_points(self):
        sim = TrainingSimulator("alexnet", V100)
        out = sim.sweep([8, 16, 32])
        assert sorted(out) == [8, 16, 32]


class TestStarAllreduce:
    """The coordinator-star cost model repro.distributed implements."""

    def test_single_worker_free(self):
        from repro.simulator import LOCAL_PIPE, star_allreduce_time

        assert star_allreduce_time(1e6, 1e6, 1, LOCAL_PIPE) == 0.0

    def test_cost_decomposition(self):
        from repro.simulator import LOCAL_PIPE, star_allreduce_time

        p, up, down, red = 4, 2e6, 3e6, 0.01
        t = star_allreduce_time(up, down, p, LOCAL_PIPE, reduce_seconds=red)
        expected = (
            2 * p * LOCAL_PIPE.latency
            + p * (up + down) / LOCAL_PIPE.bandwidth
            + red
        )
        assert t == pytest.approx(expected)

    def test_compression_shrinks_the_uplink_leg_only(self):
        from repro.simulator import LOCAL_PIPE, star_allreduce_time

        full = star_allreduce_time(4e6, 4e6, 2, LOCAL_PIPE)
        compressed = star_allreduce_time(1e6, 4e6, 2, LOCAL_PIPE)
        saved = 2 * 3e6 / LOCAL_PIPE.bandwidth
        assert full - compressed == pytest.approx(saved)

    def test_linear_in_workers_unlike_ring(self):
        from repro.simulator import LOCAL_PIPE, star_allreduce_time

        t2 = star_allreduce_time(1e6, 1e6, 2, LOCAL_PIPE)
        t4 = star_allreduce_time(1e6, 1e6, 4, LOCAL_PIPE)
        assert t4 == pytest.approx(2 * t2)

    def test_validation(self):
        from repro.simulator import LOCAL_PIPE, star_allreduce_time

        with pytest.raises(ValueError):
            star_allreduce_time(1e6, 1e6, 0, LOCAL_PIPE)
        with pytest.raises(ValueError):
            star_allreduce_time(-1.0, 1e6, 2, LOCAL_PIPE)
        with pytest.raises(ValueError):
            star_allreduce_time(1e6, 1e6, 2, LOCAL_PIPE, reduce_seconds=-1.0)
