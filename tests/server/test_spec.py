"""ServerSpec / TenantSpec parsing contracts: strict keys, validation,
and lossless round-trips — the same rules every config section obeys."""

from __future__ import annotations

import json

import pytest

from repro.api.config import ConfigError, ServerSpec, SessionConfig
from repro.server import TenantSpec, load_server_config


class TestServerSpec:
    def test_defaults_validate_and_round_trip(self):
        spec = ServerSpec()
        spec.validate()
        assert spec.to_dict() == {}  # sparse: defaults are omitted
        assert ServerSpec.from_dict(spec.to_dict()) == spec

    def test_non_default_round_trip_is_identity(self):
        spec = ServerSpec(
            pool_budget_bytes=1 << 20,
            max_tenants=3,
            admission="queue",
            overcommit=2.5,
            queue_depth=7,
            workers=2,
            max_batch_requests=4,
            shared_codebook_cache=False,
            spill_dir="/tmp/pool",
            host="0.0.0.0",
            port=8123,
        )
        d = spec.to_dict()
        assert ServerSpec.from_dict(d) == spec
        assert ServerSpec.from_dict(json.loads(json.dumps(d))) == spec

    def test_from_json_accepts_text_and_path(self, tmp_path):
        text = json.dumps({"workers": 2})
        assert ServerSpec.from_json(text).workers == 2
        p = tmp_path / "server.json"
        p.write_text(text)
        assert ServerSpec.from_json(p).workers == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            ServerSpec.from_dict({"worker_count": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"pool_budget_bytes": -1},
            {"pool_budget_bytes": 1.5},
            {"max_tenants": 0},
            {"workers": 0},
            {"queue_depth": 0},
            {"max_batch_requests": 0},
            {"admission": "deny"},
            {"overcommit": 0.5},
            {"overcommit": "2"},
            {"shared_codebook_cache": 1},
            {"spill_dir": 7},
            {"host": ""},
            {"port": -1},
            {"port": 65536},
            {"port": True},
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            ServerSpec.from_dict(bad)


class TestTenantSpec:
    def test_round_trip_is_identity(self):
        spec = TenantSpec.from_dict(
            {
                "name": "t0",
                "kind": "infer",
                "model": "vgg16",
                "image_size": 16,
                "batch_size": 4,
                "seed": 3,
                "session": {"compress_activations": False},
            }
        )
        again = TenantSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again.session.to_dict() == spec.session.to_dict()

    def test_defaults_stay_sparse(self):
        spec = TenantSpec.from_dict({"name": "t"})
        assert spec.to_dict() == {"name": "t"}

    def test_declared_bytes_follows_storage(self):
        arena = TenantSpec.from_dict(
            {
                "name": "a",
                "session": {
                    "storage": {"activations": "arena", "budget_bytes": 123}
                },
            }
        )
        assert arena.declared_bytes == 123
        plain = TenantSpec.from_dict({"name": "p"})
        assert plain.session.storage.activations == "inmem"
        assert plain.declared_bytes == 0

    @pytest.mark.parametrize(
        "bad,match",
        [
            ({}, "name"),
            ({"name": "t", "kind": "batch"}, "kind"),
            ({"name": "t", "batch_size": 0}, "batch_size"),
            ({"name": "t", "image_size": True}, "image_size"),
            ({"name": "t", "seed": "x"}, "seed"),
            ({"name": "t", "unknown_knob": 1}, "unknown"),
            ({"name": "t", "session": 5}, "session"),
            (
                {"name": "t", "session": {"distributed": {"world_size": 2}}},
                "world_size",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, bad, match):
        with pytest.raises(ConfigError, match=match):
            TenantSpec.from_dict(bad)

    def test_session_defaults_to_full_config(self):
        spec = TenantSpec.from_dict({"name": "t"})
        assert isinstance(spec.session, SessionConfig)
        assert spec.session.compress_activations


class TestLoadServerConfig:
    def test_empty_object_is_default_fleet(self):
        spec, tenants = load_server_config("{}")
        assert spec == ServerSpec()
        assert tenants == []

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            load_server_config(
                json.dumps({"tenants": [{"name": "x"}, {"name": "x"}]})
            )

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            load_server_config(json.dumps({"serverr": {}}))

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            load_server_config(json.dumps([1, 2]))

    def test_committed_example_fleet_parses(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__),
            "..",
            "..",
            "examples",
            "configs",
            "server_tenants.json",
        )
        spec, tenants = load_server_config(path)
        # the committed fleet oversubscribes the pool: that is the point
        assert len(tenants) >= 4
        assert {t.kind for t in tenants} == {"train", "infer"}
        assert sum(t.declared_bytes for t in tenants) > spec.pool_budget_bytes
        assert (
            sum(t.declared_bytes for t in tenants)
            <= spec.pool_budget_bytes * spec.overcommit
        )
