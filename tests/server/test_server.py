"""SessionServer end-to-end contracts.

The load-bearing ones:

1. **Bit-identity**: a hosted tenant's training losses equal the same
   spec run standalone through ``build_session`` — sharing the pool,
   the codebook segment, and the scheduler changes *where bytes live*,
   never results.  Pinned against the committed example fleet.
2. **Admission control**: oversubscribing tenants are rejected
   (``admission='reject'``) or parked and later promoted on eviction
   (``admission='queue'``), with the ledger recording every decision.
3. **Shared infrastructure**: arena-backed tenants are pool members
   under one budget; szlike tenants adopt codebooks a peer published.
4. **Operability**: ``stats()`` exposes the per-tenant and merged
   metrics surface; ``close()`` is idempotent and releases everything.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.config import ServerSpec
from repro.server import (
    AdmissionError,
    ServerError,
    SessionServer,
    TenantSpec,
    load_server_config,
    run_standalone,
)

EXAMPLE_FLEET = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "configs", "server_tenants.json"
)


def tenant_dict(name, seed=1, budget=1 << 20, **kw):
    d = {
        "name": name,
        "model": "alexnet",
        "image_size": 12,
        "batch_size": 4,
        "seed": seed,
        "session": {"storage": {"activations": "arena", "budget_bytes": budget}},
    }
    d.update(kw)
    return d


def small_server(**kw):
    defaults = dict(pool_budget_bytes=4 << 20, overcommit=4.0)
    defaults.update(kw)
    return SessionServer(ServerSpec(**defaults))


class TestAdmission:
    def test_reject_over_budget(self):
        with small_server(pool_budget_bytes=1 << 20, overcommit=1.0) as server:
            server.admit(tenant_dict("a", budget=1 << 20))
            with pytest.raises(AdmissionError, match="admission limit"):
                server.admit(tenant_dict("b", budget=1 << 20))
            ledger = server.stats()["admission"]
            assert ledger["admitted"] == 1
            assert ledger["rejected"] == 1
            assert ledger["decisions"][-1]["decision"] == "rejected"

    def test_max_tenants_cap(self):
        with small_server(max_tenants=1) as server:
            server.admit(tenant_dict("a"))
            with pytest.raises(AdmissionError, match="max_tenants"):
                server.admit(tenant_dict("b"))

    def test_queue_then_promote_on_eviction(self):
        with small_server(
            pool_budget_bytes=1 << 20, overcommit=1.0, admission="queue"
        ) as server:
            a = server.admit(tenant_dict("a", budget=1 << 20))
            b = server.admit(tenant_dict("b", budget=1 << 20))
            assert (a.state, b.state) == ("running", "queued")
            with pytest.raises(ServerError, match="queued"):
                server.submit("b", 1)
            server.evict("a")
            assert b.state == "running"
            results = server.run(steps=1, names=["b"])
            assert len(results["b"]) == 1
            ledger = server.stats()["admission"]
            assert ledger["queued"] == 1
            assert ledger["promoted"] == 1

    def test_duplicate_name_rejected(self):
        with small_server() as server:
            server.admit(tenant_dict("a"))
            with pytest.raises(ServerError, match="already"):
                server.admit(tenant_dict("a"))

    def test_evicting_a_queued_tenant(self):
        with small_server(
            pool_budget_bytes=1 << 20, overcommit=1.0, admission="queue"
        ) as server:
            server.admit(tenant_dict("a", budget=1 << 20))
            server.admit(tenant_dict("b", budget=1 << 20))
            server.evict("b")
            assert server.stats()["admission"]["waiting"] == []
            with pytest.raises(KeyError):
                server.submit("b", 1)

    def test_evict_unknown_raises(self):
        with small_server() as server:
            with pytest.raises(KeyError):
                server.evict("ghost")

    def test_infer_tenant_declares_no_arena(self):
        with small_server(pool_budget_bytes=1 << 20, overcommit=1.0) as server:
            server.admit(tenant_dict("a", budget=1 << 20))
            # an inference tenant without an arena costs no pool budget
            t = server.admit(
                {
                    "name": "i",
                    "kind": "infer",
                    "model": "alexnet",
                    "image_size": 12,
                    "batch_size": 4,
                    "seed": 5,
                    "session": {"compress_activations": False},
                }
            )
            assert t.state == "running"
            result = server.run(steps=1, names=["i"])["i"][0]
            assert 0.0 <= result["accuracy"] <= 1.0


class TestSharedInfrastructure:
    def test_arena_tenants_are_pool_members(self):
        with small_server() as server:
            server.admit(tenant_dict("a"))
            server.admit(tenant_dict("b", seed=2))
            server.run(steps=1)
            pool = server.stats()["pool"]
            assert set(pool["tenants"]) == {"a", "b"}
            assert pool["declared_bytes"] == 2 << 20
            server.evict("a")
            assert set(server.stats()["pool"]["tenants"]) == {"b"}

    def test_codebook_adoption_across_tenants(self):
        cached = {
            "codec": {"options": {"codebook_cache": True}},
            "storage": {"activations": "arena", "budget_bytes": 1 << 20},
        }
        with small_server() as server:
            server.admit(tenant_dict("a", session=cached))
            server.admit(tenant_dict("b", seed=2, session=cached))
            server.run(steps=2, names=["a"])
            server.run(steps=2, names=["b"])
            rows = server.stats()["tenants"]
            assert rows["a"]["codebook_cache"]["owner"] == "a"
            adoptions = rows["b"]["codebook_cache"]["adoptions_from"]
            assert adoptions.get("a", 0) > 0

    def test_pool_pressure_spills_but_preserves_results(self):
        # Pool far smaller than the tenants' combined working set: the
        # fleet must still train to completion, bit-identical to
        # standalone, with the pool staying within budget.
        spec = ServerSpec(pool_budget_bytes=64 << 10, overcommit=64.0)
        tenants = [
            TenantSpec.from_dict(tenant_dict(f"t{i}", seed=10 + i, budget=1 << 20))
            for i in range(3)
        ]
        with SessionServer(spec) as server:
            for t in tenants:
                server.admit(t)
            hosted = server.run(steps=2)
            pool = server.stats()["pool"]
        for t in tenants:
            alone = run_standalone(t, 2)
            assert [r["loss"] for r in hosted[t.name]] == [r["loss"] for r in alone]
        assert pool["declared_bytes"] > pool["budget_bytes"]


class TestExampleFleet:
    def test_committed_fleet_runs_concurrently_and_matches_standalone(self):
        spec, tenants = load_server_config(EXAMPLE_FLEET)
        assert len(tenants) >= 4  # >= 3 concurrent + mixed train/infer
        steps = 2
        with SessionServer(spec) as server:
            for t in tenants:
                assert server.admit(t).state == "running"
            hosted = server.run(steps=steps)
            stats = server.stats()
        # every tenant ran to completion under the shared pool budget
        for t in tenants:
            assert len(hosted[t.name]) == steps
        assert stats["pool"]["declared_bytes"] > stats["pool"]["budget_bytes"]
        # bit-identity for every training tenant
        for t in tenants:
            if t.kind != "train":
                continue
            alone = run_standalone(t, steps)
            assert [r["loss"] for r in hosted[t.name]] == [
                r["loss"] for r in alone
            ], t.name


class TestOperability:
    def test_stats_surface(self):
        with small_server() as server:
            server.admit(tenant_dict("a", session={
                "profiler": {"enabled": True},
                "storage": {"activations": "arena", "budget_bytes": 1 << 20},
            }))
            server.run(steps=2)
            stats = server.stats()
            assert set(stats) == {
                "tenants", "pool", "profiler_merged", "admission", "server",
            }
            row = stats["tenants"]["a"]
            assert row["steps_done"] == 2
            assert row["state"] == "running"
            assert row["executed"] == 2
            assert "latency_p50_ms" in row and "latency_p99_ms" in row
            assert "memory" in row  # MemoryTracker.group_summary rows
            assert row["profiler"]["step"]["calls"] == 2
            assert stats["profiler_merged"]["step"]["calls"] == 2
            # stats() must be JSON-serializable: it backs the endpoint
            json.dumps(stats, default=str)

    def test_capture_round_trips_spec(self):
        spec = ServerSpec(pool_budget_bytes=1 << 20, workers=2, admission="queue")
        with SessionServer(spec) as server:
            captured = server.capture()
            assert captured == spec
            assert captured is not spec

    def test_double_close_is_a_noop(self):
        server = small_server()
        server.admit(tenant_dict("a"))
        server.run(steps=1)
        server.close()
        server.close()
        with pytest.raises(ServerError, match="closed"):
            server.admit(tenant_dict("b"))

    def test_submit_after_evict_raises(self):
        with small_server() as server:
            server.admit(tenant_dict("a"))
            server.evict("a")
            with pytest.raises(KeyError):
                server.submit("a", 1)

    def test_tenant_results_accumulate(self):
        with small_server() as server:
            t = server.admit(tenant_dict("a"))
            server.run(steps=3)
            assert t.steps_done == 3
            assert t.last_result is not None
            assert "loss" in t.last_result
