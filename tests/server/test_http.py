"""HTTP/JSON endpoint smoke tests on an ephemeral port: the operator
surface (health, stats, tenant admit/steps/evict) and its error codes."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api.config import ServerSpec
from repro.server import SessionServer, serve


@pytest.fixture()
def endpoint():
    spec = ServerSpec(pool_budget_bytes=4 << 20, overcommit=1.0, port=0)
    with SessionServer(spec) as server, serve(server) as ep:
        yield ep


def call(ep, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(ep.url + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def tenant_body(name, seed=1, budget=1 << 20):
    return {
        "name": name,
        "model": "alexnet",
        "image_size": 12,
        "batch_size": 4,
        "seed": seed,
        "session": {"storage": {"activations": "arena", "budget_bytes": budget}},
    }


class TestEndpoint:
    def test_healthz(self, endpoint):
        code, body = call(endpoint, "GET", "/healthz")
        assert code == 200
        assert body["status"] == "ok"

    def test_admit_step_stats_evict_cycle(self, endpoint):
        code, body = call(endpoint, "POST", "/tenants", tenant_body("a"))
        assert (code, body["state"]) == (201, "running")

        code, body = call(endpoint, "POST", "/tenants/a/steps", {"steps": 2})
        assert code == 200
        assert len(body["results"]) == 2
        assert all("loss" in r for r in body["results"])

        code, body = call(endpoint, "GET", "/stats")
        assert code == 200
        assert body["tenants"]["a"]["steps_done"] == 2
        assert "pool" in body and "admission" in body

        code, body = call(endpoint, "GET", "/tenants")
        assert code == 200 and set(body["tenants"]) == {"a"}

        code, body = call(endpoint, "DELETE", "/tenants/a")
        assert (code, body["state"]) == (200, "evicted")
        code, _ = call(endpoint, "GET", "/tenants")
        assert code == 200

    def test_admission_conflict_is_409(self, endpoint):
        call(endpoint, "POST", "/tenants", tenant_body("a", budget=4 << 20))
        code, body = call(endpoint, "POST", "/tenants", tenant_body("b", budget=4 << 20))
        assert code == 409
        assert body["kind"] == "admission"

    def test_bad_spec_is_400(self, endpoint):
        code, body = call(endpoint, "POST", "/tenants", {"name": "x", "kind": "nope"})
        assert code == 400
        code, _ = call(endpoint, "POST", "/tenants/a/steps", {"steps": 0})
        assert code == 400

    def test_unknown_tenant_is_404(self, endpoint):
        code, _ = call(endpoint, "POST", "/tenants/ghost/steps", {"steps": 1})
        assert code == 404
        code, _ = call(endpoint, "DELETE", "/tenants/ghost")
        assert code == 404
        code, _ = call(endpoint, "GET", "/no/such/route")
        assert code == 404

    def test_duplicate_admit_is_409(self, endpoint):
        call(endpoint, "POST", "/tenants", tenant_body("a"))
        code, _ = call(endpoint, "POST", "/tenants", tenant_body("a"))
        assert code == 409

    def test_endpoint_close_leaves_server_usable(self):
        spec = ServerSpec(pool_budget_bytes=1 << 20, port=0)
        with SessionServer(spec) as server:
            ep = serve(server)
            ep.close()
            # endpoint gone, server still admits
            server.admit(tenant_body("a", budget=1 << 20))
            assert server.run(steps=1)["a"]
