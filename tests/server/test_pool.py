"""ArenaPool contracts: fair cross-tenant spill under one budget,
deterministic victim selection, pool-level accounting, and data safety
(spilling moves bytes, never loses them)."""

from __future__ import annotations

import threading

import pytest

from repro.core.arena import ArenaPool, ByteArena


def blob(tag: int, size: int) -> bytes:
    return bytes([tag % 256]) * size


class TestMembership:
    def test_member_is_a_byte_arena(self):
        with ArenaPool(budget_bytes=1 << 20) as pool:
            a = pool.create_arena("a", budget_bytes=1 << 10)
            assert isinstance(a, ByteArena)
            key = a.put(blob(1, 100))
            assert a.get(key) == blob(1, 100)

    def test_duplicate_tenant_rejected(self):
        with ArenaPool(budget_bytes=1 << 20) as pool:
            pool.create_arena("a")
            with pytest.raises(ValueError, match="already"):
                pool.create_arena("a")

    def test_release_frees_the_name(self):
        with ArenaPool(budget_bytes=1 << 20) as pool:
            pool.create_arena("a")
            pool.release("a")
            pool.release("missing")  # no-op
            pool.create_arena("a")  # name reusable after release

    def test_member_close_deregisters(self):
        with ArenaPool(budget_bytes=1 << 20) as pool:
            a = pool.create_arena("a")
            a.close()
            assert "a" not in pool.stats()["tenants"]

    def test_closed_pool_refuses_new_members(self):
        pool = ArenaPool(budget_bytes=1 << 20)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.create_arena("a")


class TestFairSpill:
    def test_no_spill_under_budget(self):
        with ArenaPool(budget_bytes=10_000) as pool:
            a = pool.create_arena("a", budget_bytes=10_000)
            for i in range(5):
                a.put(blob(i, 1000))
            assert pool.stats()["forced_spill_count"] == 0
            assert a.spilled_nbytes == 0

    def test_aggregate_budget_enforced_across_tenants(self):
        # Each tenant fits its own budget; only the POOL is oversubscribed.
        with ArenaPool(budget_bytes=4_000) as pool:
            a = pool.create_arena("a", budget_bytes=4_000)
            b = pool.create_arena("b", budget_bytes=4_000)
            for i in range(3):
                a.put(blob(i, 1000))
                b.put(blob(16 + i, 1000))
            stats = pool.stats()
            assert stats["in_memory_nbytes"] <= 4_000
            assert stats["forced_spill_count"] > 0
            assert (
                stats["in_memory_nbytes"] + stats["spilled_nbytes"] == 6_000
            )

    def test_victim_is_furthest_over_fair_share(self):
        # Equal declared budgets -> equal fair shares; the hog must be
        # the one spilled, not the modest tenant.
        with ArenaPool(budget_bytes=4_000) as pool:
            hog = pool.create_arena("hog", budget_bytes=4_000)
            modest = pool.create_arena("modest", budget_bytes=4_000)
            modest.put(blob(1, 500))
            for i in range(8):
                hog.put(blob(i, 1000))
            assert modest.pool_spill_events == 0
            assert hog.pool_spill_events > 0
            assert modest.spilled_nbytes == 0

    def test_fair_share_follows_declared_budgets(self):
        with ArenaPool(budget_bytes=9_000) as pool:
            pool.create_arena("big", budget_bytes=6_000)
            pool.create_arena("small", budget_bytes=3_000)
            rows = pool.stats()["tenants"]
            assert rows["big"]["fair_share_bytes"] == 6_000
            assert rows["small"]["fair_share_bytes"] == 3_000

    def test_spilled_data_reads_back_identically(self):
        with ArenaPool(budget_bytes=2_000) as pool:
            a = pool.create_arena("a", budget_bytes=8_000)
            b = pool.create_arena("b", budget_bytes=8_000)
            keys_a = [a.put(blob(i, 700)) for i in range(4)]
            keys_b = [b.put(blob(32 + i, 700)) for i in range(4)]
            assert pool.stats()["forced_spill_count"] > 0
            for i, k in enumerate(keys_a):
                assert a.get(k) == blob(i, 700)
            for i, k in enumerate(keys_b):
                assert b.get(k) == blob(32 + i, 700)

    def test_spill_trace_is_deterministic(self):
        def trace():
            with ArenaPool(budget_bytes=3_000) as pool:
                a = pool.create_arena("a", budget_bytes=4_000)
                b = pool.create_arena("b", budget_bytes=4_000)
                for i in range(6):
                    (a if i % 2 == 0 else b).put(blob(i, 800))
                stats = pool.stats()
                return (
                    stats["forced_spill_count"],
                    stats["forced_spill_bytes"],
                    {
                        n: (t["pool_spill_events"], t["pool_spilled_bytes"])
                        for n, t in stats["tenants"].items()
                    },
                )

        assert trace() == trace()

    def test_pool_spill_counters_distinct_from_own_budget_spills(self):
        # A tenant over its OWN budget spills by itself: that is not a
        # pool-forced spill and must not count as one.
        with ArenaPool(budget_bytes=1 << 20) as pool:
            a = pool.create_arena("a", budget_bytes=1_000)
            for i in range(4):
                a.put(blob(i, 600))
            assert a.spill_count > 0
            assert a.pool_spill_events == 0
            assert pool.stats()["forced_spill_count"] == 0


class TestAccounting:
    def test_stats_shape(self):
        with ArenaPool(budget_bytes=5_000) as pool:
            a = pool.create_arena("a", budget_bytes=2_000)
            a.put(blob(1, 500))
            stats = pool.stats()
            assert stats["budget_bytes"] == 5_000
            assert stats["declared_bytes"] == 2_000
            assert stats["in_memory_nbytes"] == 500
            row = stats["tenants"]["a"]
            assert row["entries"] == 1
            assert row["declared_bytes"] == 2_000
            assert set(row) == {
                "declared_bytes",
                "fair_share_bytes",
                "in_memory_nbytes",
                "spilled_nbytes",
                "spill_count",
                "pool_spilled_bytes",
                "pool_spill_events",
                "entries",
            }

    def test_properties_aggregate_members(self):
        with ArenaPool(budget_bytes=1 << 20) as pool:
            a = pool.create_arena("a")
            b = pool.create_arena("b")
            a.put(blob(1, 300))
            b.put(blob(2, 200))
            assert pool.in_memory_nbytes == 500
            assert pool.declared_bytes == 2 * (1 << 20)

    def test_close_is_idempotent_and_closes_members(self):
        pool = ArenaPool(budget_bytes=1 << 20)
        a = pool.create_arena("a")
        a.put(blob(1, 100))
        pool.close()
        pool.close()
        with pytest.raises(KeyError):
            a.get(0)


class TestThreadSafety:
    def test_concurrent_tenant_puts_stay_consistent(self):
        with ArenaPool(budget_bytes=8_000) as pool:
            arenas = {n: pool.create_arena(n, budget_bytes=16_000) for n in "abcd"}
            errors = []

            def worker(name, arena):
                try:
                    keys = {}
                    for i in range(30):
                        tag = (ord(name) * 31 + i) % 256
                        keys[arena.put(bytes([tag]) * 200)] = tag
                    for key, tag in keys.items():
                        assert arena.get(key) == bytes([tag]) * 200
                except BaseException as exc:  # surfaced below
                    errors.append((name, exc))

            threads = [
                threading.Thread(target=worker, args=(n, a))
                for n, a in arenas.items()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = pool.stats()
            total = stats["in_memory_nbytes"] + stats["spilled_nbytes"]
            assert total == 4 * 30 * 200
