"""StepScheduler contracts: per-tenant FIFO serialism, round-robin
fairness with request batching, queue-depth backpressure, latency
accounting, and clean cancellation on unregister."""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import QueueFullError, StepScheduler
from repro.utils.profiler import StageProfiler
from repro.utils import profiler as profiler_mod


def drain(tickets):
    return [t.wait(timeout=30) for t in tickets]


class TestOrdering:
    def test_per_tenant_fifo(self):
        seen = []
        with StepScheduler(workers=1) as sched:
            sched.register("a")
            tickets = [sched.submit("a", lambda i=i: seen.append(i) or i) for i in range(8)]
            assert drain(tickets) == list(range(8))
        assert seen == list(range(8))

    def test_round_robin_across_tenants(self):
        order = []
        with StepScheduler(workers=1) as sched:
            # Park the worker so both tenants' queues fill before any run.
            gate = threading.Event()
            sched.register("z")
            sched.register("a")
            blocker = sched.submit("z", gate.wait)
            tickets = []
            for i in range(3):
                tickets.append(sched.submit("z", lambda: order.append("z")))
                tickets.append(sched.submit("a", lambda: order.append("a")))
            gate.set()
            drain([blocker] + tickets)
        # alternating drain, whichever tenant went first
        assert order in (
            ["z", "a", "z", "a", "z", "a"],
            ["a", "z", "a", "z", "a", "z"],
        )

    def test_request_batching_runs_consecutive_requests(self):
        order = []
        with StepScheduler(workers=1, max_batch_requests=3) as sched:
            gate = threading.Event()
            started = threading.Event()
            sched.register("a")
            sched.register("b")
            # Wait until the blocker is *running*: its batch is then fixed
            # at [blocker], so the later submits can't coalesce into it.
            blocker = sched.submit("a", lambda: (started.set(), gate.wait()))
            assert started.wait(timeout=30)
            tickets = []
            for i in range(3):
                tickets.append(sched.submit("a", lambda: order.append("a")))
                tickets.append(sched.submit("b", lambda: order.append("b")))
            gate.set()
            drain([blocker] + tickets)
        # batching coalesces each tenant's 3 requests into one checkout
        assert order in (
            ["a", "a", "a", "b", "b", "b"],
            ["b", "b", "b", "a", "a", "a"],
        )

    def test_tenant_never_runs_concurrently_with_itself(self):
        active = []
        overlap = []
        lock = threading.Lock()

        def step():
            with lock:
                active.append(1)
                if len(active) > 1:
                    overlap.append(1)
            time.sleep(0.002)
            with lock:
                active.pop()

        with StepScheduler(workers=4) as sched:
            sched.register("a")
            drain([sched.submit("a", step) for _ in range(20)])
        assert not overlap


class TestBackpressure:
    def test_queue_depth_rejects_excess(self):
        with StepScheduler(workers=1, queue_depth=2) as sched:
            gate = threading.Event()
            started = threading.Event()
            sched.register("a")
            # Once the blocker is running it no longer occupies the queue,
            # so exactly queue_depth submits fit behind it.
            blocker = sched.submit("a", lambda: (started.set(), gate.wait()))
            assert started.wait(timeout=30)
            ok = [sched.submit("a", lambda: None) for _ in range(2)]
            with pytest.raises(QueueFullError):
                sched.submit("a", lambda: None)
            assert sched.stats()["a"]["rejected"] == 1
            gate.set()
            drain([blocker] + ok)

    def test_unknown_tenant_rejected(self):
        with StepScheduler() as sched:
            with pytest.raises(KeyError):
                sched.submit("ghost", lambda: None)

    def test_duplicate_register_rejected(self):
        with StepScheduler() as sched:
            sched.register("a")
            with pytest.raises(ValueError):
                sched.register("a")


class TestResults:
    def test_errors_surface_on_wait(self):
        with StepScheduler() as sched:
            sched.register("a")

            def boom():
                raise RuntimeError("step exploded")

            before = sched.submit("a", lambda: 41)
            failing = sched.submit("a", boom)
            after = sched.submit("a", lambda: 42)
            assert before.wait(timeout=30) == 41
            with pytest.raises(RuntimeError, match="exploded"):
                failing.wait(timeout=30)
            # one bad request does not poison the tenant's queue
            assert after.wait(timeout=30) == 42

    def test_latencies_recorded(self):
        with StepScheduler() as sched:
            sched.register("a")
            tickets = [sched.submit("a", lambda: time.sleep(0.005)) for _ in range(4)]
            drain(tickets)
            stats = sched.stats()["a"]
            assert stats["executed"] == 4
            assert stats["latency_p50_ms"] >= 5.0
            assert stats["latency_p99_ms"] >= stats["latency_p50_ms"]
            for t in tickets:
                assert t.latency_seconds >= t.run_seconds > 0

    def test_profiler_bound_during_execution(self):
        prof_a = StageProfiler()
        prof_b = StageProfiler()
        with StepScheduler(workers=2) as sched:
            sched.register("a", profiler=prof_a)
            sched.register("b", profiler=prof_b)

            def work():
                with profiler_mod.stage("tenant-step"):
                    time.sleep(0.001)

            drain(
                [sched.submit("a", work) for _ in range(3)]
                + [sched.submit("b", work) for _ in range(2)]
            )
        assert prof_a.snapshot()["tenant-step"]["calls"] == 3
        assert prof_b.snapshot()["tenant-step"]["calls"] == 2


class TestLifecycle:
    def test_unregister_cancels_pending_and_unblocks_waiters(self):
        with StepScheduler(workers=1) as sched:
            gate = threading.Event()
            started = threading.Event()
            sched.register("a")
            sched.register("b")
            blocker = sched.submit("a", lambda: (started.set(), gate.wait()))
            assert started.wait(timeout=30)
            # The only worker is parked on "a", so "b"'s request is
            # guaranteed still pending when it gets unregistered.
            parked = sched.submit("b", lambda: "never")
            sched.unregister("b")  # cancels the parked request
            gate.set()
            blocker.wait(timeout=30)
            sched.unregister("a")  # in-flight done; plain removal
            with pytest.raises(RuntimeError, match="cancelled|evicted"):
                parked.wait(timeout=30)
            with pytest.raises(KeyError):
                sched.submit("b", lambda: None)

    def test_unregister_waits_for_in_flight(self):
        done = []
        started = threading.Event()
        with StepScheduler(workers=1) as sched:
            sched.register("a")
            t = sched.submit(
                "a", lambda: (started.set(), time.sleep(0.05), done.append(1))
            )
            assert started.wait(timeout=30)  # the worker checked "a" out
            sched.unregister("a")
            assert done == [1]
            t.wait(timeout=30)

    def test_close_is_idempotent_and_refuses_submits(self):
        sched = StepScheduler()
        sched.register("a")
        t = sched.submit("a", lambda: 7)
        sched.close()
        sched.close()
        assert t.wait(timeout=30) == 7  # queued work drains before stop
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit("a", lambda: None)
