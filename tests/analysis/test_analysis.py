"""Error-injection methodology and distribution diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    GradientErrorInjector,
    conv_gradient_error_sample,
    describe_sample,
    inject_uniform_error,
    sigma_within_fraction,
)
from repro.nn import Conv2D, Flatten, Linear, SGD, Sequential, SyntheticImageDataset, Trainer, batches


class TestInjectUniform:
    def test_error_bounded(self, rng):
        x = rng.standard_normal((100, 100)).astype(np.float32)
        y = inject_uniform_error(x, 1e-2, rng=rng)
        assert np.abs(y - x).max() <= 1e-2

    def test_preserve_zeros(self, rng):
        x = np.maximum(rng.standard_normal((100, 100)), 0).astype(np.float32)
        y = inject_uniform_error(x, 1e-2, preserve_zeros=True, rng=rng)
        assert np.all(y[x == 0] == 0)
        assert np.any(y[x != 0] != x[x != 0])

    def test_error_roughly_uniform(self, rng):
        x = np.zeros(200_000, dtype=np.float64)
        y = inject_uniform_error(x, 1.0, rng=rng)
        rep = describe_sample(y, uniform_bound=1.0)
        assert rep.uniform_ks_pvalue > 1e-3
        assert rep.std == pytest.approx(1 / np.sqrt(3), rel=0.02)

    def test_rejects_bad_bound(self, rng):
        with pytest.raises(ValueError):
            inject_uniform_error(np.ones(4), 0.0)


class TestConvGradientError:
    def test_error_is_zero_mean_normal(self, rng):
        """Figure 6a: injected uniform activation error -> normal gradient
        error with ~68.2% of mass within one sigma."""
        x = rng.standard_normal((8, 4, 16, 16)).astype(np.float32)
        conv = Conv2D(4, 6, 3, padding=1, rng=1)
        dout = rng.standard_normal((8, 6, 16, 16)).astype(np.float32) / 8
        errs = conv_gradient_error_sample(conv, x, dout, 1e-3, trials=4, rng=2)
        rep = describe_sample(errs)
        assert abs(rep.mean) < 0.1 * rep.std
        assert rep.within_one_sigma == pytest.approx(0.682, abs=0.03)

    def test_preserving_zeros_shrinks_sigma(self, rng):
        """Figure 6b: zero preservation reduces sigma by ~sqrt(R)."""
        x = np.maximum(rng.standard_normal((8, 4, 16, 16)), 0).astype(np.float32)
        r = np.count_nonzero(x) / x.size
        conv = Conv2D(4, 6, 3, padding=1, rng=1)
        dout = rng.standard_normal((8, 6, 16, 16)).astype(np.float32) / 8
        full = conv_gradient_error_sample(conv, x, dout, 1e-3, trials=4, rng=2)
        kept = conv_gradient_error_sample(
            conv, x, dout, 1e-3, trials=4, preserve_zeros=True, rng=2
        )
        assert kept.std() < full.std()
        assert kept.std() / full.std() == pytest.approx(np.sqrt(r), rel=0.1)

    def test_sample_size(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        conv = Conv2D(3, 4, 3, rng=1)
        dout = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        errs = conv_gradient_error_sample(conv, x, dout, 1e-3, trials=3, rng=2)
        assert errs.size == 3 * conv.weight.size


class TestGradientErrorInjector:
    def _trainer(self):
        net = Sequential([Flatten(), Linear(3 * 8 * 8, 4, rng=1)])
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        return Trainer(net, opt)

    def test_injects_relative_sigma(self):
        tr = self._trainer()
        inj = GradientErrorInjector(0.1, rng=np.random.default_rng(0))
        tr.grad_transforms.append(inj)
        ds = SyntheticImageDataset(num_classes=4, image_size=8, seed=1)
        tr.train(batches(ds, 8, 2, seed=0))
        assert inj.last_sigma > 0

    def test_zero_fraction_noop(self):
        tr = self._trainer()
        ds = SyntheticImageDataset(num_classes=4, image_size=8, seed=1)
        x, y = ds.sample(8, rng=0)
        inj = GradientErrorInjector(0.0)
        tr.grad_transforms.append(inj)
        tr.train_step(x, y)
        assert inj.last_sigma == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            GradientErrorInjector(-0.1)

    def test_injected_noise_statistics(self, rng):
        """Gradient after injection differs by ~N(0, fraction * mean|g|)."""
        tr = self._trainer()
        ds = SyntheticImageDataset(num_classes=4, image_size=8, seed=1)
        x, y = ds.sample(64, rng=0)
        logits = tr.network.forward(x)
        _, d = tr.loss.forward(logits, y)
        tr.network.backward(d)
        g_before = np.concatenate([p.grad.reshape(-1).copy() for p in tr.optimizer.params])
        inj = GradientErrorInjector(0.5, rng=np.random.default_rng(1))
        inj(tr)
        g_after = np.concatenate([p.grad.reshape(-1) for p in tr.optimizer.params])
        noise = g_after - g_before
        expected = 0.5 * np.abs(g_before).mean()
        assert noise.std() == pytest.approx(expected, rel=0.1)


class TestDistributionHelpers:
    def test_within_one_sigma_normal(self, rng):
        s = sigma_within_fraction(rng.normal(0, 2, 100_000))
        assert s == pytest.approx(0.6827, abs=0.01)

    def test_within_one_sigma_uniform(self, rng):
        s = sigma_within_fraction(rng.uniform(-1, 1, 100_000))
        assert s == pytest.approx(1 / np.sqrt(3), abs=0.01)

    def test_describe_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            describe_sample(np.ones(3))

    def test_describe_normal_sample(self, rng):
        rep = describe_sample(rng.normal(1.0, 3.0, 50_000))
        assert rep.mean == pytest.approx(1.0, abs=0.1)
        assert rep.std == pytest.approx(3.0, rel=0.05)
        assert rep.normal_ks_pvalue > 0.01
        assert rep.n == 50_000
