"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.ndimage import gaussian_filter


@pytest.fixture
def rng():
    return np.random.default_rng(20210227)  # PPoPP'21 week


@pytest.fixture
def activation_tensor(rng):
    """A realistic post-ReLU conv activation: smooth fields with sparsity."""
    x = rng.standard_normal((4, 8, 24, 24))
    x = gaussian_filter(x, sigma=(0, 0, 1.5, 1.5))
    return np.maximum(x, 0).astype(np.float32)


@pytest.fixture
def dense_tensor(rng):
    """A dense (no zeros) smooth float tensor."""
    x = rng.standard_normal((2, 4, 32, 32))
    x = gaussian_filter(x, sigma=(0, 0, 2.0, 2.0))
    return (x + 0.1).astype(np.float32)
