"""Cross-module integration: every scaled architecture trains under the
full adaptive compression framework, and the bound-accuracy ordering the
paper relies on holds end to end."""

import numpy as np
import pytest

from repro.compression import SZCompressor
from repro.core import AdaptiveConfig, CompressedTraining
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(num_classes=4, image_size=16, channels=3, seed=3)


@pytest.mark.parametrize("model", ["alexnet", "vgg16", "resnet18", "resnet50"])
def test_every_architecture_trains_compressed(model, dataset):
    net = build_scaled_model(model, num_classes=4, image_size=16, rng=11)
    opt = SGD(net.parameters(), lr=0.005, momentum=0.9)
    tr = Trainer(net, opt)
    sess = CompressedTraining(
        net, opt,
        compressor=SZCompressor(entropy="zlib"),
        config=AdaptiveConfig(W=5, warmup_iterations=2),
    ).attach(tr)
    tr.train(batches(dataset, 8, 10, seed=0))
    assert np.isfinite(tr.history.losses).all()
    assert sess.tracker.overall_ratio > 1.5
    assert len(sess.error_bounds) >= 3


def test_identical_trajectory_when_bound_negligible(dataset):
    """The whole stack is exact when compression error is negligible."""
    def run(eb=None):
        net = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=5)
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        tr = Trainer(net, opt)
        if eb is not None:
            from repro.core.policies import FixedBoundSZPolicy
            from repro.nn import set_saved_ctx

            set_saved_ctx(net, FixedBoundSZPolicy(eb, entropy="zlib"),
                          predicate=lambda l: l.compressible)
        tr.train(batches(dataset, 8, 8, seed=0))
        return tr.history.losses

    np.testing.assert_allclose(run(None), run(1e-8), atol=1e-5)


def test_absurd_bound_starves_conv_gradients(dataset):
    """An error bound far beyond the activation range quantizes every
    saved activation to zero, so conv weight gradients vanish — the
    failure mode Eq. 9's budget exists to avoid."""
    from repro.core.policies import FixedBoundSZPolicy
    from repro.nn import Conv2D, iter_layers, set_saved_ctx

    def conv_weight_movement(eb):
        net = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=5)
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        tr = Trainer(net, opt)
        set_saved_ctx(net, FixedBoundSZPolicy(eb, entropy="zlib"),
                      predicate=lambda l: l.compressible)
        convs = [l for l in iter_layers(net) if isinstance(l, Conv2D)]
        before = [c.weight.data.copy() for c in convs]
        tr.train(batches(dataset, 16, 10, seed=0))
        return sum(float(np.abs(c.weight.data - b).sum())
                   for c, b in zip(convs, before))

    moving = conv_weight_movement(1e-5)
    frozen = conv_weight_movement(50.0)  # bound >> activation range
    assert frozen < 0.01 * moving


def test_session_coexists_with_lr_schedule_and_hooks(dataset):
    from repro.nn import StepLR

    net = build_scaled_model("alexnet", num_classes=4, image_size=16, rng=7)
    opt = SGD(net.parameters(), lr=0.02, momentum=0.9)
    sched = StepLR(opt, step_size=5, gamma=0.5)
    tr = Trainer(net, opt, lr_schedule=sched)
    calls = []
    tr.post_backward_hooks.append(lambda t, r: calls.append(r.iteration))
    sess = CompressedTraining(net, opt, config=AdaptiveConfig(W=3, warmup_iterations=1)).attach(tr)
    tr.train(batches(dataset, 8, 11, seed=0))
    assert opt.lr == pytest.approx(0.02 * 0.25)
    assert calls == list(range(11))
    assert sess.tracker.overall_ratio > 1
