"""Multi-tenant session server (see :mod:`repro.server.server`).

Host many concurrent :func:`~repro.api.session.build_session` sessions
over shared infrastructure: one :class:`~repro.core.arena.ArenaPool`
memory budget, one shared codebook segment, one step scheduler — with
admission control, per-tenant backpressure, and a metrics surface
(:meth:`SessionServer.stats` / the :func:`serve` HTTP endpoint).
"""

from repro.server.http import Endpoint, serve
from repro.server.scheduler import QueueFullError, StepScheduler, Ticket
from repro.server.server import (
    AdmissionError,
    ServerError,
    SessionServer,
    Tenant,
    TenantSpec,
    load_server_config,
    run_standalone,
)

__all__ = [
    "AdmissionError",
    "Endpoint",
    "QueueFullError",
    "ServerError",
    "SessionServer",
    "StepScheduler",
    "Tenant",
    "TenantSpec",
    "Ticket",
    "load_server_config",
    "run_standalone",
    "serve",
]
