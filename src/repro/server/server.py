"""Multi-tenant session server: many Sessions over shared infrastructure.

One :class:`SessionServer` hosts N concurrent tenants, each a full
:func:`~repro.api.session.build_session` session built from its own
JSON :class:`~repro.api.config.SessionConfig` — but instead of every
session bringing its own arena, codebook cache, and thread pool, the
server shares three things across the fleet:

- **One memory budget**: every arena-backed tenant's activation arena is
  a member of one :class:`~repro.core.arena.ArenaPool`, so the *pool*
  budget (not the sum of tenant budgets) bounds resident bytes, and a
  tenant bursting past its fair share spills before it starves the
  others.
- **One codebook segment**: szlike-family tenant codecs share a
  :class:`~repro.compression.szlike.codebook_cache.SharedCodebookCache`
  segment file, so tenant B adopts the canonical Huffman books tenant A
  already built instead of rebuilding them.  Adoption is lossless —
  per-tenant results stay bit-identical to standalone runs.
- **One scheduler**: step requests from all tenants drain through a
  shared :class:`~repro.server.scheduler.StepScheduler` (per-tenant
  FIFO, round-robin across tenants, optional request batching), with
  per-tenant queue-depth backpressure.

Admission control keeps the fleet honest: a tenant whose declared arena
budget would push ``sum(declared) > pool_budget * overcommit`` is either
rejected (:class:`AdmissionError`) or queued until an eviction frees
budget, per :class:`~repro.api.config.ServerSpec.admission`.

Determinism contract: a tenant admitted to a server trains bit-identically
to the same ``(model, seed, session config)`` run standalone through
``build_session`` — the pool only moves bytes between RAM and disk, the
shared segment only changes *compressed* bytes (never reconstructions),
and the scheduler runs each tenant's steps serially in FIFO order.
:func:`run_standalone` is the reference implementation the equivalence
tests pin this against.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.api.config import ConfigError, ServerSpec, SessionConfig, _load_json_source
from repro.api.session import Session, build_session
from repro.core.arena import ArenaPool
from repro.models.registry import build_scaled_model
from repro.nn.data import SyntheticImageDataset, batches
from repro.server.scheduler import StepScheduler, Ticket
from repro.utils.profiler import merge_snapshots

__all__ = [
    "AdmissionError",
    "ServerError",
    "SessionServer",
    "Tenant",
    "TenantSpec",
    "load_server_config",
    "run_standalone",
]

#: effectively-infinite batch stream length: tenants are long-lived and
#: consume batches lazily, one per executed step
_STREAM_LEN = 1 << 40


class ServerError(RuntimeError):
    """Base class for server-side failures."""


class AdmissionError(ServerError):
    """Tenant rejected by admission control (budget or tenant cap)."""


@dataclass
class TenantSpec:
    """One tenant: a model + synthetic workload + session config.

    The workload fields pin the tenant's data stream and initial weights
    so a run is reproducible from the spec alone: the model is built
    with ``rng=default_rng(seed)`` and batches come from a
    :class:`~repro.nn.data.SyntheticImageDataset` sampled with the same
    seed — exactly what :func:`run_standalone` replays outside the
    server for the bit-identity contract.
    """

    name: str = ""
    kind: str = "train"  # "train" | "infer"
    model: str = "alexnet"
    num_classes: int = 8
    image_size: int = 16
    batch_size: int = 8
    signal: float = 1.5
    seed: int = 0
    session: SessionConfig = field(default_factory=SessionConfig)

    def validate(self, where: str = "tenant") -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(f"{where}: name must be a non-empty string")
        if self.kind not in ("train", "infer"):
            raise ConfigError(
                f"{where}: kind must be 'train' or 'infer', got {self.kind!r}"
            )
        for attr in ("num_classes", "image_size", "batch_size"):
            v = getattr(self, attr)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                raise ConfigError(f"{where}: {attr} must be an int >= 1, got {v!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"{where}: seed must be an int, got {self.seed!r}")
        if not isinstance(self.session, SessionConfig):
            raise ConfigError(
                f"{where}: session must be a SessionConfig section, "
                f"got {type(self.session).__name__}"
            )
        self.session.validate()
        if self.session.distributed.world_size > 1:
            raise ConfigError(
                f"{where}: distributed sessions cannot be hosted as server "
                f"tenants (world_size must be 1)"
            )

    @property
    def declared_bytes(self) -> int:
        """Arena budget this tenant asks the pool for (0 = no arena)."""
        if self.session.storage.activations == "arena":
            return int(self.session.storage.budget_bytes)
        return 0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name}
        defaults = TenantSpec()
        for f in fields(self):
            if f.name in ("name", "session"):
                continue
            v = getattr(self, f.name)
            if v != getattr(defaults, f.name):
                out[f.name] = v
        session = self.session.to_dict()
        if session:
            out["session"] = session
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "tenant") -> "TenantSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ConfigError(f"{where}: unknown keys {unknown} (known: {sorted(known)})")
        d = dict(d)
        session = d.pop("session", None)
        if session is not None:
            if not isinstance(session, dict):
                raise ConfigError(f"{where}: session must be an object")
            d["session"] = SessionConfig.from_dict(session)
        spec = cls(**d)
        spec.validate(where)
        return spec


def load_server_config(
    source: Union[str, "os.PathLike"],
) -> Tuple[ServerSpec, List[TenantSpec]]:
    """Parse a fleet file — ``{"server": {...}, "tenants": [...]}`` —
    from a JSON string or path.  Both keys are optional (an empty object
    is a default server with no tenants); tenant names must be unique."""
    d = _load_json_source(source)
    if not isinstance(d, dict):
        raise ConfigError("fleet config must be a JSON object")
    unknown = sorted(set(d) - {"server", "tenants"})
    if unknown:
        raise ConfigError(f"fleet config: unknown keys {unknown}")
    spec = ServerSpec.from_dict(d.get("server", {}) or {})
    tenants = [
        TenantSpec.from_dict(t, where=f"tenants[{i}]")
        for i, t in enumerate(d.get("tenants", []) or [])
    ]
    seen = set()
    for i, t in enumerate(tenants):
        if t.name in seen:
            raise ConfigError(f"tenants[{i}]: duplicate tenant name {t.name!r}")
        seen.add(t.name)
    return spec, tenants


def _build_workload(spec: TenantSpec):
    """(network, batch stream) for *spec* — the shared recipe the server
    and :func:`run_standalone` both use, so their runs are comparable."""
    network = build_scaled_model(
        spec.model,
        num_classes=spec.num_classes,
        image_size=spec.image_size,
        batch=spec.batch_size,
        rng=np.random.default_rng(spec.seed),
    )
    dataset = SyntheticImageDataset(
        num_classes=spec.num_classes,
        image_size=spec.image_size,
        signal=spec.signal,
        seed=1234 + spec.seed,
    )
    stream = batches(dataset, spec.batch_size, _STREAM_LEN, seed=spec.seed)
    return network, stream


def _fresh_config(spec: TenantSpec) -> SessionConfig:
    """An independent copy of the tenant's session config (through the
    JSON wire format, so hosted and standalone runs can never alias
    mutable spec state)."""
    return SessionConfig.from_json(spec.session.to_json())


def run_standalone(spec: TenantSpec, steps: int) -> List[dict]:
    """Run *spec*'s first *steps* steps outside any server — the
    reference trajectory for the bit-identity contract."""
    network, stream = _build_workload(spec)
    with build_session(network, _fresh_config(spec)) as session:
        return [_one_step(spec, session, stream) for _ in range(steps)]


def _one_step(spec: TenantSpec, session: Session, stream: Iterator) -> dict:
    """Execute one workload step: a training iteration for ``train``
    tenants, a batch-accuracy evaluation for ``infer`` tenants."""
    images, labels = next(stream)
    if spec.kind == "train":
        rec = session.train_step(images, labels)
        return {
            "iteration": rec.iteration,
            "loss": rec.loss,
            "accuracy": rec.accuracy,
        }
    acc = session.evaluate(images, labels, batch_size=images.shape[0])
    return {"accuracy": acc}


class Tenant:
    """A hosted tenant: the spec, its live session, and its counters.

    ``state`` is ``"queued"`` (admitted under ``admission='queue'`` but
    waiting for budget) or ``"running"``.  Queued tenants have no
    session yet; :meth:`SessionServer.submit` on one is an error."""

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.state = "queued"
        self.session: Optional[Session] = None
        self.arena = None
        self._stream: Optional[Iterator] = None
        self.steps_done = 0
        self.last_result: Optional[dict] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def declared_bytes(self) -> int:
        return self.spec.declared_bytes

    def _step(self) -> dict:
        """One workload step (runs on a scheduler worker; the scheduler
        guarantees per-tenant serialism so no lock is needed here)."""
        result = _one_step(self.spec, self.session, self._stream)
        self.steps_done += 1
        self.last_result = result
        return result

    def summary(self) -> dict:
        out = {
            "kind": self.spec.kind,
            "model": self.spec.model,
            "state": self.state,
            "declared_bytes": self.declared_bytes,
            "steps_done": self.steps_done,
        }
        if self.last_result is not None:
            out["last_result"] = dict(self.last_result)
        return out


class SessionServer:
    """Host for many concurrent Sessions over shared infrastructure.

        spec, tenants = load_server_config("fleet.json")
        with SessionServer(spec) as server:
            for t in tenants:
                server.admit(t)
            results = server.run(steps=20)
            print(server.stats()["pool"])

    Thread-safe: admit/evict/submit/stats may be called from any thread
    (the HTTP endpoint calls them from handler threads).  Lock order is
    strictly server -> (scheduler | pool); neither ever calls back into
    the server.
    """

    def __init__(self, spec: Optional[ServerSpec] = None):
        self.spec = spec if spec is not None else ServerSpec()
        self.spec.validate()
        self._lock = threading.RLock()
        self._tenants: Dict[str, Tenant] = {}
        #: admission="queue" tenants waiting for budget, FIFO
        self._waiting: deque = deque()
        self._closed = False
        self.pool = ArenaPool(
            budget_bytes=self.spec.pool_budget_bytes, spill_dir=self.spec.spill_dir
        )
        self.scheduler = StepScheduler(
            workers=self.spec.workers,
            max_batch_requests=self.spec.max_batch_requests,
            queue_depth=self.spec.queue_depth,
        )
        self._segment_dir = tempfile.mkdtemp(prefix="repro-server-")
        self._segment_path = os.path.join(self._segment_dir, "codebooks.seg")
        #: admission ledger: counters + a bounded decision log
        self.admitted_total = 0
        self.rejected_total = 0
        self.queued_total = 0
        self.promoted_total = 0
        self.evicted_total = 0
        self._decisions: deque = deque(maxlen=256)

    # -- admission -----------------------------------------------------------
    def admit(self, spec: Union[TenantSpec, Dict[str, Any]]) -> Tenant:
        """Admit one tenant.  Returns its handle, ``state`` telling you
        whether it is running or parked; raises :class:`AdmissionError`
        under ``admission='reject'`` when the fleet is full."""
        if isinstance(spec, dict):
            spec = TenantSpec.from_dict(spec)
        spec.validate()
        with self._lock:
            if self._closed:
                raise ServerError("server is closed")
            if spec.name in self._tenants:
                raise ServerError(f"tenant {spec.name!r} already admitted")
            tenant = Tenant(spec)
            reason = self._admission_blocker(tenant)
            if reason is None:
                self._start(tenant)
                self._decide(tenant, "admitted", None)
            elif self.spec.admission == "queue":
                self._tenants[spec.name] = tenant
                self._waiting.append(tenant)
                self.queued_total += 1
                self._decide(tenant, "queued", reason)
            else:
                self.rejected_total += 1
                self._decide(tenant, "rejected", reason)
                raise AdmissionError(f"tenant {spec.name!r} rejected: {reason}")
            return tenant

    def _admission_blocker(self, tenant: Tenant) -> Optional[str]:
        """Why *tenant* cannot start now (None = admissible).  Callers
        hold the lock."""
        running = [t for t in self._tenants.values() if t.state == "running"]
        if len(running) >= self.spec.max_tenants:
            return f"{len(running)} tenants running (max_tenants={self.spec.max_tenants})"
        declared = sum(t.declared_bytes for t in running) + tenant.declared_bytes
        limit = self.spec.pool_budget_bytes * self.spec.overcommit
        if declared > limit:
            return (
                f"declared budgets would reach {declared} bytes, over the "
                f"admission limit {int(limit)} "
                f"(pool_budget_bytes={self.spec.pool_budget_bytes} "
                f"x overcommit={self.spec.overcommit})"
            )
        return None

    def _start(self, tenant: Tenant) -> None:
        """Build the tenant's session over the shared infrastructure and
        register it with the scheduler.  Callers hold the lock."""
        spec = tenant.spec
        network, stream = _build_workload(spec)
        arena = None
        if spec.declared_bytes > 0:
            arena = self.pool.create_arena(spec.name, budget_bytes=spec.declared_bytes)
        try:
            session = build_session(network, _fresh_config(spec), storage=arena)
        except BaseException:
            if arena is not None:
                arena.close()
            raise
        tenant.session = session
        tenant.arena = arena
        tenant._stream = stream
        tenant.state = "running"
        if self.spec.shared_codebook_cache and session.compressed is not None:
            self._share_codebooks(spec.name, session)
        self._tenants[spec.name] = tenant
        self.scheduler.register(spec.name, profiler=session.profiler)
        self.admitted_total += 1

    def _share_codebooks(self, name: str, session: Session) -> None:
        """Re-point every codec in *session* at the server's shared
        codebook segment (no-op for codecs without codebook caches)."""
        from repro.compression.registry import ensure_shared_codebook_cache

        ctx = session.compressed.ctx
        ensure_shared_codebook_cache(ctx.compressor, self._segment_path, owner=name)
        table = getattr(ctx, "policy_table", None)
        if table is not None:
            for pol in table.rules:
                if pol.codec is not None:
                    ensure_shared_codebook_cache(
                        pol.codec, self._segment_path, owner=name
                    )

    def _decide(self, tenant: Tenant, decision: str, reason: Optional[str]) -> None:
        entry = {
            "tenant": tenant.name,
            "decision": decision,
            "declared_bytes": tenant.declared_bytes,
        }
        if reason:
            entry["reason"] = reason
        self._decisions.append(entry)

    # -- eviction / promotion ------------------------------------------------
    def evict(self, name: str) -> None:
        """Tear one tenant down: cancel queued requests, wait out its
        in-flight batch, close its session and arena (releasing pool
        budget), then promote waiting tenants that now fit."""
        with self._lock:
            tenant = self._tenants.pop(name, None)
            if tenant is None:
                raise KeyError(f"unknown tenant {name!r}")
            if tenant.state == "queued":
                try:
                    self._waiting.remove(tenant)
                except ValueError:
                    pass
                self.evicted_total += 1
                self._decide(tenant, "evicted", "was queued")
                return
            # unregister blocks until the tenant's in-flight requests
            # finish; scheduler workers never take the server lock, so
            # holding it here cannot deadlock.
            self.scheduler.unregister(name)
            tenant.session.close()
            if tenant.arena is not None:
                tenant.arena.close()
            tenant.state = "evicted"
            self.evicted_total += 1
            self._decide(tenant, "evicted", None)
            self._promote()

    def _promote(self) -> None:
        """Start waiting tenants that fit now.  Callers hold the lock."""
        while self._waiting and not self._closed:
            tenant = self._waiting[0]
            if self._admission_blocker(tenant) is not None:
                return
            self._waiting.popleft()
            # _start re-inserts under the same name with state running
            del self._tenants[tenant.name]
            self._start(tenant)
            self.promoted_total += 1
            self._decide(tenant, "promoted", None)

    # -- work ----------------------------------------------------------------
    def submit(self, name: str, steps: int = 1) -> List[Ticket]:
        """Enqueue *steps* workload steps for tenant *name*; returns one
        ticket per step (wait on them for results).  Raises
        :class:`~repro.server.scheduler.QueueFullError` on backpressure."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                raise KeyError(f"unknown tenant {name!r}")
            if tenant.state != "running":
                raise ServerError(f"tenant {name!r} is {tenant.state}, not running")
            return [self.scheduler.submit(name, tenant._step) for _ in range(steps)]

    def run(
        self, steps: int, names: Optional[List[str]] = None
    ) -> Dict[str, List[dict]]:
        """Submit *steps* steps to every (running) tenant, interleaved
        round-robin at step granularity, and wait for all results."""
        with self._lock:
            if names is None:
                names = [n for n, t in sorted(self._tenants.items()) if t.state == "running"]
        tickets: Dict[str, List[Ticket]] = {n: [] for n in names}
        for _ in range(steps):
            for n in names:
                tickets[n].extend(self.submit(n, 1))
        return {n: [t.wait() for t in ts] for n, ts in tickets.items()}

    # -- metrics -------------------------------------------------------------
    def stats(self) -> dict:
        """The server's full metrics surface: admission ledger, pool
        accounting, scheduler queues/latencies, and per-tenant memory,
        profiler, and codebook-sharing breakdowns (plus the cross-tenant
        merged profiler view)."""
        with self._lock:
            scheduler = self.scheduler.stats()
            per_tenant: Dict[str, dict] = {}
            snapshots = []
            for name in sorted(self._tenants):
                tenant = self._tenants[name]
                row = tenant.summary()
                row.update(scheduler.get(name, {}))
                session = tenant.session
                if session is not None:
                    if session.tracker is not None:
                        row["memory"] = session.tracker.group_summary()
                    if session.profiler is not None:
                        snap = session.profiler.snapshot()
                        row["profiler"] = snap
                        snapshots.append(snap)
                    cache_stats = self._cache_stats(session)
                    if cache_stats is not None:
                        row["codebook_cache"] = cache_stats
                per_tenant[name] = row
            return {
                "tenants": per_tenant,
                "pool": self.pool.stats(),
                "profiler_merged": merge_snapshots(snapshots),
                "admission": {
                    "admitted": self.admitted_total,
                    "rejected": self.rejected_total,
                    "queued": self.queued_total,
                    "promoted": self.promoted_total,
                    "evicted": self.evicted_total,
                    "waiting": [t.name for t in self._waiting],
                    "decisions": list(self._decisions),
                },
                "server": self.spec.to_dict(),
            }

    @staticmethod
    def _cache_stats(session: Session) -> Optional[dict]:
        codec = getattr(session.compressed.ctx, "compressor", None) if session.compressed else None
        codec = getattr(codec, "inner", codec)
        cache = getattr(codec, "codebook_cache", None)
        stats = getattr(cache, "stats", None)
        return stats() if callable(stats) else None

    def capture(self) -> ServerSpec:
        """Re-serialize the live server's spec (round-trip identity)."""
        return ServerSpec.from_dict(self.spec.to_dict())

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Evict every tenant, stop the scheduler, close the pool, and
        delete the shared codebook segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            names = list(self._tenants)
        for name in names:
            self.evict(name)
        self.scheduler.close()
        self.pool.close()
        shutil.rmtree(self._segment_dir, ignore_errors=True)

    def __enter__(self) -> "SessionServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        with self._lock:
            running = sum(1 for t in self._tenants.values() if t.state == "running")
            return (
                f"SessionServer(tenants={running} running/"
                f"{len(self._waiting)} queued, "
                f"pool_budget={self.spec.pool_budget_bytes})"
            )
