"""HTTP/JSON surface for a :class:`~repro.server.SessionServer`.

Deliberately tiny: stdlib ``http.server`` only, JSON in/out, no
authentication, bind-to-localhost default — an operability window into a
running server (and the `server-smoke` CI job's driver), not a public
API gateway.

    GET  /healthz                     -> {"status": "ok", ...}
    GET  /stats                       -> server.stats()
    GET  /tenants                     -> per-tenant summaries
    POST /tenants          {spec}     -> admit (409 on AdmissionError)
    POST /tenants/<name>/steps {"steps": n} -> run n steps, return results
    DELETE /tenants/<name>            -> evict

Start one with :func:`serve`; the returned endpoint knows its bound
(possibly ephemeral) port and closes cleanly:

    endpoint = serve(server)           # host/port from server.spec
    print(endpoint.url)                # http://127.0.0.1:<port>
    endpoint.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.api.config import ConfigError
from repro.server.scheduler import QueueFullError
from repro.server.server import AdmissionError, ServerError, SessionServer

__all__ = ["Endpoint", "serve"]

#: request bodies beyond this are refused (fleet specs are small)
_MAX_BODY = 4 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------
    @property
    def app(self) -> SessionServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        pass

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        data = json.loads(self.rfile.read(length))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        path = self.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET" and path == "/healthz":
                self._send(200, {"status": "ok", "server": repr(self.app)})
            elif method == "GET" and path == "/stats":
                self._send(200, self.app.stats())
            elif method == "GET" and path == "/tenants":
                stats = self.app.stats()
                self._send(200, {"tenants": stats["tenants"]})
            elif method == "POST" and path == "/tenants":
                tenant = self.app.admit(self._body())
                self._send(201, {"tenant": tenant.name, "state": tenant.state})
            elif method == "POST" and len(parts) == 3 and parts[0] == "tenants" and parts[2] == "steps":
                body = self._body()
                steps = body.get("steps", 1)
                if not isinstance(steps, int) or isinstance(steps, bool) or steps < 1:
                    raise ValueError(f"steps must be an int >= 1, got {steps!r}")
                tickets = self.app.submit(parts[1], steps)
                results = [t.wait() for t in tickets]
                self._send(200, {"tenant": parts[1], "results": results})
            elif method == "DELETE" and len(parts) == 2 and parts[0] == "tenants":
                self.app.evict(parts[1])
                self._send(200, {"tenant": parts[1], "state": "evicted"})
            else:
                self._send(404, {"error": f"no route for {method} {self.path}"})
        except AdmissionError as exc:
            self._send(409, {"error": str(exc), "kind": "admission"})
        except QueueFullError as exc:
            self._send(429, {"error": str(exc), "kind": "backpressure"})
        except KeyError as exc:
            self._send(404, {"error": str(exc)})
        except (ConfigError, ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
        except ServerError as exc:
            self._send(409, {"error": str(exc)})
        except Exception as exc:  # keep the endpoint alive on surprises
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_DELETE(self):
        self._dispatch("DELETE")


class Endpoint:
    """A running HTTP endpoint bound to one :class:`SessionServer`.

    Owns only the HTTP listener — closing the endpoint never closes the
    underlying session server."""

    def __init__(self, httpd: ThreadingHTTPServer):
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-server-http", daemon=True
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()

    def __enter__(self) -> "Endpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Endpoint({self.url})"


def serve(
    server: SessionServer,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Endpoint:
    """Expose *server* over HTTP/JSON.  *host*/*port* default to the
    server spec's (``port=0`` binds an ephemeral port — read it back
    from ``endpoint.port``)."""
    host = host if host is not None else server.spec.host
    port = port if port is not None else server.spec.port
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.app = server  # type: ignore[attr-defined]
    httpd.daemon_threads = True
    return Endpoint(httpd)
