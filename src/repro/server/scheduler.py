"""Step scheduler: per-tenant FIFO queues drained by a shared worker pool.

The multi-tenant server's concurrency story in one class.  Each tenant
owns a FIFO of submitted step requests; a fixed pool of worker threads
drains them with two invariants:

- **Per-tenant serialism**: at most one worker runs a given tenant at a
  time (the tenant is *checked out* while its requests execute), and its
  requests run in submission order.  A tenant's training trajectory is
  therefore identical to running the same steps on a plain session —
  workers add cross-tenant concurrency only.
- **Round-robin fairness**: tenants with pending work rotate through a
  ready queue; each checkout runs at most ``max_batch_requests``
  consecutive requests (request batching amortizes dispatch overhead
  under load) before the tenant goes to the back of the line.

Backpressure is per-tenant: submits beyond ``queue_depth`` pending
requests raise :class:`QueueFullError` instead of growing without bound.

With ``workers=1`` the interleaving is fully deterministic (one global
drain order), which is what the benchmark gates rely on; ``workers>1``
keeps per-tenant results bit-identical and only reorders cross-tenant.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.utils import profiler as profiler_mod

__all__ = ["QueueFullError", "StepScheduler", "Ticket"]


class QueueFullError(RuntimeError):
    """A tenant's pending-request queue is at ``queue_depth``."""


class Ticket:
    """One submitted request: wait on it, then read ``result``.

    ``wait()`` re-raises the exception the request's callable raised, so
    failures surface on the submitting side, not inside a worker.
    Latency fields (seconds): ``queue_seconds`` (enqueue to start) and
    ``run_seconds`` (start to done); ``latency_seconds`` is their sum —
    the end-to-end number the server's p50/p99 metrics are built from.
    """

    __slots__ = (
        "tenant",
        "fn",
        "result",
        "error",
        "queue_seconds",
        "run_seconds",
        "cancelled",
        "_enqueued",
        "_done",
    )

    def __init__(self, tenant: str, fn: Callable[[], object]):
        self.tenant = tenant
        self.fn = fn
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.queue_seconds = 0.0
        self.run_seconds = 0.0
        self.cancelled = False
        self._enqueued = time.perf_counter()
        self._done = threading.Event()

    @property
    def latency_seconds(self) -> float:
        return self.queue_seconds + self.run_seconds

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> object:
        if not self._done.wait(timeout):
            raise TimeoutError(f"ticket for tenant {self.tenant!r} still pending")
        if self.cancelled:
            raise RuntimeError(
                f"request cancelled (tenant {self.tenant!r} evicted with work queued)"
            )
        if self.error is not None:
            raise self.error
        return self.result


class _TenantQueue:
    """Per-tenant scheduler state.  Callers hold the scheduler lock."""

    __slots__ = ("name", "profiler", "pending", "checked_out", "executed", "rejected", "latencies")

    def __init__(self, name: str, profiler=None):
        self.name = name
        self.profiler = profiler
        self.pending: deque = deque()
        self.checked_out = False
        self.executed = 0
        self.rejected = 0
        #: end-to-end latency samples (seconds), newest last, bounded
        self.latencies: deque = deque(maxlen=4096)


class StepScheduler:
    """Shared worker pool draining per-tenant FIFO request queues."""

    def __init__(
        self,
        workers: int = 1,
        max_batch_requests: int = 1,
        queue_depth: int = 64,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.max_batch_requests = max_batch_requests
        self.queue_depth = queue_depth
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tenants: Dict[str, _TenantQueue] = {}
        #: names with pending work, not currently checked out (round-robin)
        self._ready: deque = deque()
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-sched-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()

    # -- tenant lifecycle ----------------------------------------------------
    def register(self, name: str, profiler=None) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            self._tenants[name] = _TenantQueue(name, profiler)

    def unregister(self, name: str) -> None:
        """Remove *name*, waiting out any in-flight request batch.

        Pending (not yet started) requests are cancelled — their tickets
        complete with ``cancelled=True`` so waiters unblock with an
        error instead of hanging forever.
        """
        with self._cond:
            tq = self._tenants.get(name)
            if tq is None:
                return
            while tq.checked_out:
                self._cond.wait()
            for ticket in tq.pending:
                ticket.cancelled = True
                ticket._done.set()
            tq.pending.clear()
            try:
                self._ready.remove(name)
            except ValueError:
                pass
            del self._tenants[name]

    # -- submission ----------------------------------------------------------
    def submit(self, name: str, fn: Callable[[], object]) -> Ticket:
        """Enqueue ``fn`` for *name*; returns immediately with a ticket."""
        ticket = Ticket(name, fn)
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            tq = self._tenants.get(name)
            if tq is None:
                raise KeyError(f"unknown tenant {name!r}")
            if len(tq.pending) >= self.queue_depth:
                tq.rejected += 1
                raise QueueFullError(
                    f"tenant {name!r} has {len(tq.pending)} pending requests "
                    f"(queue_depth={self.queue_depth})"
                )
            tq.pending.append(ticket)
            if not tq.checked_out and name not in self._ready:
                self._ready.append(name)
                self._cond.notify()
        return ticket

    def drain(self, tickets: List[Ticket], timeout: Optional[float] = None) -> List[object]:
        """Wait on every ticket, returning their results in order."""
        return [t.wait(timeout) for t in tickets]

    # -- worker loop ---------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._ready and not self._closed:
                    self._cond.wait()
                if self._closed and not self._ready:
                    return
                name = self._ready.popleft()
                tq = self._tenants.get(name)
                if tq is None:
                    continue
                tq.checked_out = True
                batch: List[Ticket] = []
                while tq.pending and len(batch) < self.max_batch_requests:
                    batch.append(tq.pending.popleft())
            t0 = time.perf_counter()
            try:
                with profiler_mod.bind_to_thread(tq.profiler):
                    for ticket in batch:
                        ticket.queue_seconds = t0 - ticket._enqueued
                        start = time.perf_counter()
                        try:
                            ticket.result = ticket.fn()
                        except BaseException as exc:  # surfaced via ticket.wait()
                            ticket.error = exc
                        ticket.run_seconds = time.perf_counter() - start
                        t0 = time.perf_counter()
            finally:
                # Even if the profiler bind itself blew up, the batch must
                # be accounted and its tickets completed — a stuck
                # checked_out flag would deadlock unregister()/close().
                with self._cond:
                    tq.checked_out = False
                    tq.executed += len(batch)
                    for ticket in batch:
                        tq.latencies.append(ticket.latency_seconds)
                    if tq.pending and name in self._tenants:
                        self._ready.append(name)
                    # Wake both idle workers and unregister() waiters.
                    self._cond.notify_all()
                for ticket in batch:
                    ticket._done.set()

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, dict]:
        """Per-tenant queue/latency counters at this instant."""
        with self._lock:
            out: Dict[str, dict] = {}
            for name in sorted(self._tenants):
                tq = self._tenants[name]
                samples = sorted(tq.latencies)
                row = {
                    "queue_depth": len(tq.pending),
                    "executed": tq.executed,
                    "rejected": tq.rejected,
                    "checked_out": tq.checked_out,
                }
                if samples:
                    row["latency_p50_ms"] = 1e3 * _percentile(samples, 50.0)
                    row["latency_p99_ms"] = 1e3 * _percentile(samples, 99.0)
                out[name] = row
            return out

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Drain remaining ready work, then stop the workers.  Idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for t in self._workers:
            t.join()

    def __enter__(self) -> "StepScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _percentile(sorted_samples: List[float], pct: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(round(pct / 100.0 * (len(sorted_samples) - 1)))))
    return sorted_samples[rank]
