"""Error-injection machinery (the paper's Section 3 methodology).

The paper validates its propagation model by *injecting* modeled
compression error — uniform on activations, normal on gradients — rather
than running the compressor, then measuring the induced distributions.
These helpers reproduce that methodology exactly:

* :func:`inject_uniform_error` — U(-eb, +eb) on activation tensors,
  optionally preserving zeros (Figure 6b vs 6a).
* :func:`conv_gradient_error_sample` — gradient error of a conv layer
  under activation error injection (the Figure 6 experiment).
* :class:`GradientErrorInjector` — N(0, sigma) perturbation of parameter
  gradients during training, sigma expressed as a fraction of the mean
  gradient magnitude (the Figure 9 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.layers.conv import Conv2D
from repro.utils.rng import ensure_rng

__all__ = [
    "inject_uniform_error",
    "conv_gradient_error_sample",
    "GradientErrorInjector",
]


def inject_uniform_error(
    x: np.ndarray,
    error_bound: float,
    preserve_zeros: bool = False,
    rng=None,
) -> np.ndarray:
    """Return a copy of *x* with U(-eb, +eb) noise (zeros kept if asked)."""
    if error_bound <= 0:
        raise ValueError(f"error bound must be positive, got {error_bound}")
    rng = ensure_rng(rng)
    noise = rng.uniform(-error_bound, error_bound, size=x.shape).astype(x.dtype)
    if preserve_zeros:
        noise = np.where(x == 0, 0, noise)
    return x + noise


def _conv_weight_grad(layer: Conv2D, x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """Weight gradient of *layer* for input *x* and upstream loss *dout*."""
    layer.train(True)
    layer.weight.zero_grad()
    if layer.bias is not None:
        layer.bias.zero_grad()
    layer.clear_saved()
    layer.forward(x)
    layer.backward(dout)
    return layer.weight.grad.copy()


def conv_gradient_error_sample(
    layer: Conv2D,
    x: np.ndarray,
    dout: np.ndarray,
    error_bound: float,
    trials: int = 1,
    preserve_zeros: bool = False,
    rng=None,
) -> np.ndarray:
    """Gradient-error sample from injecting activation error (Figure 6).

    Runs the exact conv backward with clean and perturbed inputs and
    returns the flattened per-element weight-gradient errors pooled over
    *trials* independent injections.
    """
    rng = ensure_rng(rng)
    clean = _conv_weight_grad(layer, x, dout)
    errors = []
    for _ in range(trials):
        xp = inject_uniform_error(x, error_bound, preserve_zeros=preserve_zeros, rng=rng)
        noisy = _conv_weight_grad(layer, xp, dout)
        errors.append((noisy - clean).reshape(-1))
    return np.concatenate(errors)


@dataclass
class GradientErrorInjector:
    """Trainer grad-transform adding N(0, sigma) error to all gradients.

    ``sigma = fraction * mean|g|`` is re-evaluated every iteration, which
    is exactly how Figure 9 parameterizes its sweep (sigma as a fraction
    of the average gradient).  Register via
    ``trainer.grad_transforms.append(injector)``.
    """

    fraction: float
    rng: Optional[np.random.Generator] = None

    def __post_init__(self):
        if self.fraction < 0:
            raise ValueError(f"fraction must be non-negative, got {self.fraction}")
        self.rng = ensure_rng(self.rng)
        self.last_sigma = 0.0

    def __call__(self, trainer) -> None:
        if self.fraction == 0.0:
            return
        g_avg = trainer.optimizer.average_gradient_magnitude()
        sigma = self.fraction * g_avg
        self.last_sigma = sigma
        if sigma == 0.0:
            return
        for p in trainer.optimizer.params:
            p.grad += self.rng.normal(0.0, sigma, size=p.grad.shape).astype(p.grad.dtype)
