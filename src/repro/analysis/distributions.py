"""Distribution diagnostics used by the Section 3 / Section 5 analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["sigma_within_fraction", "DistributionReport", "describe_sample"]


def sigma_within_fraction(sample: np.ndarray) -> float:
    """Fraction of the sample within +-1 std of its mean.

    The paper's normality check for Figure 6: "by calculating the
    percentage of the area within +-sigma of each curve, we can get a
    value close to 68.2%".
    """
    e = np.asarray(sample, dtype=np.float64).reshape(-1)
    if e.size == 0:
        raise ValueError("empty sample")
    mu, sd = e.mean(), e.std()
    if sd == 0:
        return 1.0
    return float(((e >= mu - sd) & (e <= mu + sd)).mean())


@dataclass
class DistributionReport:
    mean: float
    std: float
    within_one_sigma: float
    normal_ks_pvalue: float
    uniform_ks_pvalue: float
    n: int


def describe_sample(sample: np.ndarray, uniform_bound: float = None) -> DistributionReport:
    """One-stop summary: moments plus normal/uniform KS diagnostics."""
    e = np.asarray(sample, dtype=np.float64).reshape(-1)
    if e.size < 8:
        raise ValueError("sample too small to characterize")
    sd = e.std()
    if sd > 0:
        # Subsample for the KS test: at full size the test rejects any
        # infinitesimal deviation from the reference distribution.
        sub = e if e.size <= 5000 else e[:: e.size // 5000]
        normal_p = float(stats.kstest((sub - sub.mean()) / sd, "norm").pvalue)
    else:
        normal_p = 0.0
    if uniform_bound is not None and uniform_bound > 0:
        sub = e if e.size <= 5000 else e[:: e.size // 5000]
        uni_p = float(stats.kstest(sub, "uniform", args=(-uniform_bound, 2 * uniform_bound)).pvalue)
    else:
        uni_p = float("nan")
    return DistributionReport(
        mean=float(e.mean()),
        std=float(sd),
        within_one_sigma=sigma_within_fraction(e),
        normal_ks_pvalue=normal_p,
        uniform_ks_pvalue=uni_p,
        n=int(e.size),
    )
