"""Error-injection experiments and distribution diagnostics."""

from repro.analysis.error_injection import (
    GradientErrorInjector,
    conv_gradient_error_sample,
    inject_uniform_error,
)
from repro.analysis.distributions import (
    DistributionReport,
    describe_sample,
    sigma_within_fraction,
)

__all__ = [
    "GradientErrorInjector",
    "conv_gradient_error_sample",
    "inject_uniform_error",
    "DistributionReport",
    "describe_sample",
    "sigma_within_fraction",
]
