"""LCK001 — lock discipline for lock-owning classes.

**Rule.** In a class that creates a ``threading.Lock``/``RLock``/
``Condition`` in any of its methods (``self._lock = threading.RLock()``;
a ``Condition`` *is* a lock context manager — ``with self._cond:``
acquires its underlying lock), every attribute that is *mutated* inside
a ``with self._lock:`` block anywhere in the class is considered
**guarded**.  Touching a guarded attribute (read or
write) outside such a block, in any method, is a violation: the mix is
exactly the pattern that tears multi-field invariants under the async
engine's worker pool (e.g. reading ``in_memory_nbytes`` while a
concurrent ``put`` is mid-update).

**What counts as a mutation.** Assignment / augmented assignment /
deletion of ``self.attr``, subscript stores like ``self.attr[k] = v``,
and calls to known mutating container methods
(``self.attr.pop(...)``, ``.append``, ``.clear``, ``.update``, ...).
Only *direct* mutations (assignment / subscript store / deletion)
establish that an attribute is guarded: a mutating *method call* under
the lock (``self.storage.discard(k)``) may target a component object
with its own synchronization and is not evidence by itself — but once
an attribute is guarded, method-call mutations outside the lock are
flagged like any other touch.

**Exemptions.**

* ``__init__`` / ``__getstate__`` / ``__setstate__`` / ``__del__``:
  construction and (un)pickling run before/after any sharing.
* Methods whose docstring states the **caller holds the lock** (the
  codebase convention, e.g. ``"(callers hold the lock)"``): their
  bodies execute under the caller's ``with`` block, so their touches
  count as guarded — including as guarded-mutation evidence.
* Line/``def``-scoped ``# reprolint: disable=LCK001`` for the rest.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_EXEMPT_METHODS = {"__init__", "__getstate__", "__setstate__", "__del__"}
_LOCK_HELD_DOC = re.compile(r"callers?\s+(?:must\s+)?holds?\s+the\s+lock", re.I)
_MUTATING_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: (attr, lineno, col, is_mutation, under_lock, is_direct_mutation)
_Touch = Tuple[str, int, int, bool, bool, bool]


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    locks.add(attr)
        elif isinstance(node, ast.AnnAssign) and _is_lock_factory(node.value):
            attr = _self_attr(node.target)
            if attr:
                locks.add(attr)
    return locks


def _is_lock_held_method(fn: ast.AST) -> bool:
    doc = ast.get_docstring(fn, clean=False)
    return bool(doc and _LOCK_HELD_DOC.search(doc))


class _MethodScanner:
    """Collects every ``self.<attr>`` touch in one method, annotated
    with whether it happens under a ``with self.<lock>:`` block."""

    def __init__(self, locks: Set[str]):
        self.locks = locks
        self.touches: List[_Touch] = []

    def scan(self, fn: ast.AST, under: bool) -> List[_Touch]:
        for stmt in fn.body:
            self._stmt(stmt, under)
        return self.touches

    # -- statement dispatch -------------------------------------------------
    def _stmt(self, node: ast.AST, under: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = under or any(
                _self_attr(item.context_expr) in self.locks for item in node.items
            )
            for item in node.items:
                self._expr(item.context_expr, under)
            for stmt in node.body:
                self._stmt(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._target(target, under)
            self._expr(node.value, under)
            return
        if isinstance(node, ast.AugAssign):
            self._target(node.target, under)
            self._expr(node.value, under)
            return
        if isinstance(node, ast.AnnAssign):
            self._target(node.target, under)
            if node.value is not None:
                self._expr(node.value, under)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._target(target, under)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested helpers/closures inherit the lock state at their
            # definition site (the dominant pattern: inline callbacks
            # invoked while the enclosing block still holds the lock).
            for stmt in node.body:
                self._stmt(stmt, under)
            return
        # Generic statement: recurse into child statements with the same
        # lock state and collect expression touches.
        for field_name, value in ast.iter_fields(node):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._stmt(item, under)
                    elif isinstance(item, ast.expr):
                        self._expr(item, under)
            elif isinstance(value, ast.stmt):
                self._stmt(value, under)
            elif isinstance(value, ast.expr):
                self._expr(value, under)

    # -- mutation targets ---------------------------------------------------
    def _target(self, node: ast.AST, under: bool) -> None:
        attr = _self_attr(node)
        if attr is not None:
            self._record(node, attr, mutation=True, under=under, direct=True)
            return
        if isinstance(node, ast.Subscript):
            # self.attr[k] = v mutates the container behind self.attr
            attr = _self_attr(node.value)
            if attr is not None:
                self._record(node.value, attr, mutation=True, under=under, direct=True)
            else:
                self._expr(node.value, under)
            self._expr(node.slice, under)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._target(elt, under)
            return
        if isinstance(node, ast.Attribute):
            self._expr(node.value, under)
            return
        if isinstance(node, ast.expr):
            self._expr(node, under)

    # -- expression touches -------------------------------------------------
    def _expr(self, node: ast.AST, under: bool) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                attr = _self_attr(func.value)
                if attr is not None:
                    self._record(func.value, attr, mutation=True, under=under, direct=False)
                    for arg in node.args:
                        self._expr(arg, under)
                    for kw in node.keywords:
                        self._expr(kw.value, under)
                    return
            self._expr(func, under)
            for arg in node.args:
                self._expr(arg, under)
            for kw in node.keywords:
                self._expr(kw.value, under)
            return
        attr = _self_attr(node)
        if attr is not None:
            self._record(node, attr, mutation=False, under=under, direct=False)
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child, under)

    def _record(
        self, node: ast.AST, attr: str, mutation: bool, under: bool, direct: bool
    ) -> None:
        if attr in self.locks:
            return
        self.touches.append(
            (attr, node.lineno, node.col_offset, mutation, under, direct)
        )


class LockDisciplineRule(Rule):
    id = "LCK001"
    name = "lock-discipline"
    rationale = (
        "Attributes mutated under a class's own lock must never be touched "
        "outside it; a lock-free read of multi-field state races the async "
        "engine's workers."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
            locks = _lock_attrs(cls)
            if not locks:
                continue
            methods = [
                n
                for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            touches_by_method: Dict[str, List[_Touch]] = {}
            lock_held: Set[str] = set()
            for fn in methods:
                held = _is_lock_held_method(fn)
                if held:
                    lock_held.add(fn.name)
                touches_by_method[fn.name] = _MethodScanner(locks).scan(fn, under=held)
            guarded: Dict[str, int] = {}  # attr -> first guarded-mutation line
            for name, touches in touches_by_method.items():
                if name in _EXEMPT_METHODS:
                    continue
                for attr, lineno, _col, mutation, under, direct in touches:
                    if mutation and under and direct and attr not in guarded:
                        guarded[attr] = lineno
            if not guarded:
                continue
            for fn in methods:
                if fn.name in _EXEMPT_METHODS or fn.name in lock_held:
                    continue
                for attr, lineno, col, _mutation, under, _direct in touches_by_method[fn.name]:
                    if under or attr not in guarded:
                        continue
                    yield Violation(
                        rule_id=self.id,
                        path=module.display_path,
                        line=lineno,
                        col=col + 1,
                        message=(
                            f"{cls.name}.{attr} is guarded (mutated under the class "
                            f"lock at line {guarded[attr]}) but touched here outside "
                            f"'with self.<lock>:' in {fn.name}()"
                        ),
                    )
