"""reprolint — project-specific static analysis for the repro codebase.

Run it as ``python -m repro.lint src/`` (add ``--json`` for machine
output).  Violations can be suppressed per line or per ``def``/``class``
header with ``# reprolint: disable=RULE[,RULE...]`` (or ``disable=all``).

Rule catalog
============

========  ======================  ==============================================
ID        Name                    Checks
========  ======================  ==============================================
LCK001    lock-discipline         Attributes mutated under a class's own
                                  ``with self._lock:`` must never be touched
                                  outside it (see :mod:`.rules_locks`).
REL001    resource-lifecycle      Arena/param-store acquisitions bound to a
                                  local must be released exactly once on every
                                  path, never used after release
                                  (see :mod:`.rules_lifecycle`).
EBD001    error-bound-exactness   No float32 truncation of error-bound
                                  expressions inside ``compression/``
                                  (see :mod:`.rules_bounds`).
DET001    determinism             No wall-clock, global-RNG, or set-ordered
                                  iteration in code reachable from
                                  ``build_session`` (see :mod:`.rules_determinism`).
REG001    registry-hygiene        Codecs outside ``compression/`` are built
                                  only via ``get_codec``/``spec_of``
                                  (see :mod:`.rules_registry`).
BKD001    backend-discipline      ``compression/szlike/`` reaches the hot
                                  kernels via ``get_backend(...)``, never the
                                  private ``_numpy_*`` implementations
                                  (see :mod:`.rules_backend`).
LINT000   parse-error             The file failed to parse at all.
========  ======================  ==============================================
"""

from repro.lint.engine import (
    LintModule,
    LintRun,
    Rule,
    Violation,
    collect_files,
    default_rules,
    lint_paths,
    render_json,
    render_text,
)

__all__ = [
    "LintModule",
    "LintRun",
    "Rule",
    "Violation",
    "collect_files",
    "default_rules",
    "lint_paths",
    "render_json",
    "render_text",
]
