"""BKD001 — szlike hot loops go through the kernel-backend registry.

**Rule.** Code under ``compression/szlike/`` must reach the five hot
kernels (``quantize_encode``, ``quantize_decode``, ``lorenzo_predict``,
``huffman_pack_words``, ``huffman_unpack_window``) through
:func:`repro.kernels.get_backend` — importing or calling the private
``_numpy_*`` reference implementations directly is a violation.  The
private entry points bypass backend selection ("auto" probing, one-shot
warmup, counted fallback), so a direct call silently pins the NumPy
reference even when the session asked for a compiled backend.

Shared *building blocks* (``prequantize_grid_into``, ``diff_axes``,
``pack_words``, ...) are exempt: they are the reference pieces the
historical public szlike API is defined in terms of, and they carry no
backend dispatch of their own.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["BackendDisciplineRule"]

#: the five private kernel entry points of the reference backend
_PRIVATE_KERNELS = {
    "_numpy_quantize_encode",
    "_numpy_quantize_decode",
    "_numpy_lorenzo_predict",
    "_numpy_huffman_pack_words",
    "_numpy_huffman_unpack_window",
}


class BackendDisciplineRule(Rule):
    id = "BKD001"
    name = "backend-discipline"
    rationale = (
        "szlike code must call the hot kernels via get_backend(...); "
        "direct _numpy_* references bypass backend selection and "
        "fallback accounting."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        if "szlike" not in module.parts:
            return
        if module.filename.startswith("test_") or module.filename == "conftest.py":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _PRIVATE_KERNELS:
                        yield self.violation(
                            module,
                            node,
                            f"import of private kernel {alias.name!r}; go through "
                            f"get_backend(...).{alias.name[len('_numpy_'):]} so "
                            f"backend selection applies",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in _PRIVATE_KERNELS:
                    yield self.violation(
                        module,
                        node,
                        f"direct {name}(...) call bypasses the kernel-backend "
                        f"registry; use get_backend(...).{name[len('_numpy_'):]}",
                    )
