"""Command-line entry point: ``python -m repro.lint [paths...]``."""

from __future__ import annotations

import argparse
import sys

from repro.lint.engine import default_rules, lint_paths, render_json, render_text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis (reprolint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit violations as a JSON document"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.id in wanted]

    violations, files_checked = lint_paths(args.paths, rules=rules)
    if args.json:
        print(render_json(violations, files_checked))
    else:
        print(render_text(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
