"""DET001 — reproducibility of everything reachable from ``build_session``.

**Rule.** In modules transitively imported from ``repro.api.session``
(the ``build_session`` entry point), three nondeterminism sources are
banned:

* **Wall-clock in logic** — ``time.time()`` / ``time.time_ns()``.
  Durations belong to ``time.perf_counter()`` (allowed); wall-clock
  values leak host state into results.
* **Module-level RNG state** — calls through the global ``random``
  module (``random.random()``, ``random.seed()``, ...) or numpy's
  legacy global generator (``np.random.seed/rand/randn/...``).  All
  randomness must flow through an explicitly seeded
  ``np.random.Generator`` (``np.random.default_rng(seed)`` and
  ``Generator`` methods are fine — the rule tracks the *global* state).
* **Hash-ordered iteration** — ``for``/comprehension iteration directly
  over a ``set`` literal, ``set()``/``frozenset()`` call, or set
  comprehension.  Set order depends on ``PYTHONHASHSEED`` for str keys;
  sort first.  (Dicts are insertion-ordered and not flagged.)

When the linted file set does not include ``repro.api.session`` (e.g.
the fixture tree), the rule applies to every file — so known-bad
snippets stay checkable outside the package.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["DeterminismRule"]

_ENTRY = "repro.api.session"
_NUMPY_GLOBAL_RNG = {
    "seed",
    "rand",
    "randn",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "randint",
    "random_integers",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "poisson",
    "get_state",
    "set_state",
}
_STDLIB_GLOBAL_RNG = {
    "seed",
    "random",
    "randint",
    "randrange",
    "uniform",
    "gauss",
    "normalvariate",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "betavariate",
    "expovariate",
    "getrandbits",
}


def _numpy_aliases(module: LintModule) -> Set[str]:
    out = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    out.add(alias.asname or "numpy")
    return out


def _stdlib_random_imported(module: LintModule) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
    return False


def _time_aliases(module: LintModule) -> Set[str]:
    out = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    out.add(alias.asname or "time")
    return out


def _from_imported(module: LintModule, source: str, names: Set[str]) -> Set[str]:
    out = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == source and not node.level:
            for alias in node.names:
                if alias.name in names:
                    out.add(alias.asname or alias.name)
    return out


def _iter_target_is_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    id = "DET001"
    name = "determinism"
    rationale = (
        "Paths reachable from build_session must be replay-deterministic: no "
        "wall-clock reads, no module-level RNG state, no hash-ordered set "
        "iteration."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        reachable = run.reachable_from(_ENTRY)
        if reachable is not None:
            if module.module_name is None or module.module_name not in reachable:
                return
        np_aliases = _numpy_aliases(module)
        time_aliases = _time_aliases(module)
        stdlib_random = _stdlib_random_imported(module)
        from_time = _from_imported(module, "time", {"time", "time_ns"})
        from_random = _from_imported(module, "random", _STDLIB_GLOBAL_RNG)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                msg = self._check_call(
                    node, np_aliases, time_aliases, stdlib_random, from_time, from_random
                )
                if msg:
                    yield self.violation(module, node, msg)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _iter_target_is_set(node.iter):
                    yield self.violation(
                        module,
                        node.iter,
                        "iteration over a set has hash-dependent order; sort it first",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _iter_target_is_set(gen.iter):
                        yield self.violation(
                            module,
                            gen.iter,
                            "comprehension over a set has hash-dependent order; "
                            "sort it first",
                        )

    def _check_call(
        self,
        call: ast.Call,
        np_aliases: Set[str],
        time_aliases: Set[str],
        stdlib_random: bool,
        from_time: Set[str],
        from_random: Set[str],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in from_time:
                return "wall-clock time() in session-reachable code; use perf_counter for durations"
            if func.id in from_random:
                return f"global random.{func.id}() draws module-level RNG state; use a seeded Generator"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        # time.time() / time.time_ns()
        if (
            isinstance(value, ast.Name)
            and value.id in time_aliases
            and func.attr in ("time", "time_ns")
        ):
            return (
                f"time.{func.attr}() in session-reachable code; wall-clock values "
                f"are not reproducible (use perf_counter for durations)"
            )
        # random.<fn>()
        if (
            stdlib_random
            and isinstance(value, ast.Name)
            and value.id == "random"
            and func.attr in _STDLIB_GLOBAL_RNG
        ):
            return (
                f"random.{func.attr}() draws module-level RNG state; "
                f"use an explicitly seeded np.random.Generator"
            )
        # np.random.<fn>()
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in np_aliases
            and func.attr in _NUMPY_GLOBAL_RNG
        ):
            return (
                f"np.random.{func.attr}() mutates/draws numpy's global RNG; "
                f"use np.random.default_rng(seed) and pass the Generator"
            )
        return None
