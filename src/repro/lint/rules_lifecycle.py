"""REL001 — resource lifecycle for arena/param-store handles.

**Rule.** A local variable assigned from an *acquisition call* —
``key = <storage>.put(...)`` or ``entry = <store>.adopt(...)`` — owns a
storage entry that must flow to **exactly one** release
(``discard``/``pop``/``release``/``_release`` with the variable as the
argument) on every path through the function, unless ownership visibly
*escapes* the function first (returned/yielded, stored into an
attribute, subscript, or container, or handed to a non-release call).
After a release, further uses of the variable — another release, an
attribute access like ``handle.data``, or a re-read via ``get(var)`` —
are flagged: the entry's bytes are gone (and NaN-poisoned under
``REPRO_SANITIZE=1``).

The rule is deliberately local and conservative: cross-function
ownership transfer is modeled as escape, so the codebase's idiomatic
``handle.arena_key = storage.put(blob)`` (ownership lives on the handle,
released via the handle lifecycle) is out of scope, while the classic
leak — acquire into a local, early-return without release — is caught.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["ResourceLifecycleRule"]

_ACQUIRE_METHODS = {"put", "adopt"}
_RELEASE_METHODS = {"discard", "pop", "release", "_release"}
#: calls that may take the tracked variable without taking ownership
_BORROW_METHODS = {"get", "prefetch", "__contains__"}


def _call_method_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_release_call(node: ast.AST, var: str) -> bool:
    """``<recv>.discard(var)`` / ``release(var)`` / ``var.release()``."""
    if not isinstance(node, ast.Call):
        return False
    name = _call_method_name(node)
    if name in _RELEASE_METHODS:
        if node.args and isinstance(node.args[0], ast.Name) and node.args[0].id == var:
            return True
    # handle-style: var.release() / var.close()
    if (
        isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == var
        and node.func.attr in _RELEASE_METHODS
    ):
        return True
    return False


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _FunctionAnalysis:
    def __init__(self, fn: ast.AST):
        self.fn = fn
        #: var -> acquisition Call node
        self.acquired: Dict[str, ast.Call] = {}
        self.escaped: Set[str] = set()
        self._collect()

    def _collect(self) -> None:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = _call_method_name(node.value)
                if name in _ACQUIRE_METHODS and isinstance(node.value.func, ast.Attribute):
                    if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                        self.acquired[node.targets[0].id] = node.value
        if not self.acquired:
            return
        tracked = set(self.acquired)
        for node in ast.walk(self.fn):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    self.escaped |= tracked & _names_in(node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self.escaped |= tracked & _names_in(node.value)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                self.escaped |= tracked & _names_in(node)
            elif isinstance(node, ast.Call):
                name = _call_method_name(node)
                if name in _RELEASE_METHODS or name in _BORROW_METHODS:
                    continue
                if name in _ACQUIRE_METHODS:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    self.escaped |= tracked & _names_in(arg)

    # -- all-paths release analysis -----------------------------------------
    def _releases(self, stmts: List[ast.stmt], var: str) -> Tuple[bool, bool]:
        """``(always, ever)`` released across this statement list."""
        always = False
        ever = False
        for stmt in stmts:
            a, e = self._stmt_releases(stmt, var)
            always = always or a
            ever = ever or e
        return always, ever

    def _stmt_releases(self, stmt: ast.stmt, var: str) -> Tuple[bool, bool]:
        if isinstance(stmt, ast.Expr) and _is_release_call(stmt.value, var):
            return True, True
        if isinstance(stmt, ast.Assign) and _is_release_call(stmt.value, var):
            return True, True
        if isinstance(stmt, ast.If):
            a1, e1 = self._releases(stmt.body, var)
            a2, e2 = self._releases(stmt.orelse, var)
            return a1 and a2, e1 or e2
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            _a, e1 = self._releases(stmt.body, var)
            a2, e2 = self._releases(stmt.orelse, var)
            return a2, e1 or e2  # loop bodies may run zero times
        if isinstance(stmt, ast.Try):
            a_body, e_body = self._releases(stmt.body, var)
            a_final, e_final = self._releases(stmt.finalbody, var)
            e_handlers = any(self._releases(h.body, var)[1] for h in stmt.handlers)
            return a_body or a_final, e_body or e_final or e_handlers
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._releases(stmt.body, var)
        return False, False

    def check_released(self, var: str) -> Tuple[bool, bool]:
        return self._releases(self.fn.body, var)

    # -- straight-line use-after-release -------------------------------------
    def use_after_release(self, var: str) -> List[Tuple[ast.AST, str]]:
        """Violations within each straight-line suite: once *var* is
        released in a suite, later statements of the *same* suite must
        not release it again or read through it."""
        out: List[Tuple[ast.AST, str]] = []
        for suite in self._suites(self.fn):
            released_at: Optional[int] = None
            for stmt in suite:
                stmt_releases = any(
                    _is_release_call(n, var) for n in ast.walk(stmt)
                )
                if released_at is not None:
                    if stmt_releases:
                        out.append(
                            (stmt, f"{var!r} released again (first release at line "
                                   f"{released_at})")
                        )
                        continue
                    for node in ast.walk(stmt):
                        if (
                            isinstance(node, ast.Attribute)
                            and isinstance(node.value, ast.Name)
                            and node.value.id == var
                        ):
                            out.append(
                                (node, f"{var}.{node.attr} read after release at "
                                       f"line {released_at}")
                            )
                        elif (
                            isinstance(node, ast.Call)
                            and _call_method_name(node) in _BORROW_METHODS
                            and node.args
                            and isinstance(node.args[0], ast.Name)
                            and node.args[0].id == var
                        ):
                            out.append(
                                (node, f"{var!r} used after release at line "
                                       f"{released_at}")
                            )
                if stmt_releases and released_at is None:
                    released_at = stmt.lineno
        return out

    def _suites(self, node: ast.AST) -> Iterable[List[ast.stmt]]:
        for child in ast.walk(node):
            for field_name in ("body", "orelse", "finalbody"):
                suite = getattr(child, field_name, None)
                if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                    yield suite


class ResourceLifecycleRule(Rule):
    id = "REL001"
    name = "resource-lifecycle"
    rationale = (
        "Arena/param-store acquisitions assigned to a local must be released "
        "exactly once on every path (or visibly escape), and never be used "
        "after release — leaked entries hold real bytes, double releases "
        "corrupt accounting."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        for fn in [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]:
            analysis = _FunctionAnalysis(fn)
            for var, call in analysis.acquired.items():
                for node, message in analysis.use_after_release(var):
                    yield self.violation(module, node, message)
                if var in analysis.escaped:
                    continue
                always, ever = analysis.check_released(var)
                if always:
                    continue
                method = _call_method_name(call)
                if ever:
                    message = (
                        f"{var!r} (acquired via .{method}()) is released on some "
                        f"paths but not all; every path must release exactly once"
                    )
                else:
                    message = (
                        f"{var!r} (acquired via .{method}()) is never released and "
                        f"never escapes {fn.name}(); the entry leaks"
                    )
                yield self.violation(module, call, message)
