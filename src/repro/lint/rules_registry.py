"""REG001 — codecs are constructed through the registry, nowhere else.

**Rule.** Outside ``compression/`` modules (where the codec classes
live) and test files (``test_*.py`` / ``conftest.py``), direct
construction of a codec class — ``SZCompressor(...)``,
``ChunkedCodec(...)``, ``JpegCodec(...)``, ... — is a violation.
Sessions must obtain codecs via
:func:`repro.compression.registry.get_codec` (and describe them via
``spec_of``), because only registry-keyed construction round-trips
through :class:`~repro.api.config.SessionConfig`: a codec instantiated
by class is invisible to ``capture_session_config`` and breaks the
"committed JSON reproduces the run" contract.

The class-name list mirrors the registry's registrations; adding a
codec means registering it, at which point its name belongs here too.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["RegistryHygieneRule"]

#: every registered codec class plus the compressor base classes they wrap
_CODEC_CLASSES = {
    "SZCompressor",
    "ChunkedCodec",
    "JpegCodec",
    "DeflateCodec",
    "SparseLosslessCodec",
    "JpegLikeCompressor",
    "DeflateCompressor",
    "SparseLosslessCompressor",
}


class RegistryHygieneRule(Rule):
    id = "REG001"
    name = "registry-hygiene"
    rationale = (
        "Codec objects outside compression/ must come from get_codec()/"
        "spec_of(); class-constructed codecs cannot round-trip through "
        "SessionConfig."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        if "compression" in module.parts:
            return
        if module.filename.startswith("test_") or module.filename == "conftest.py":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _CODEC_CLASSES:
                yield self.violation(
                    module,
                    node,
                    f"direct {name}(...) construction outside compression/; use "
                    f"get_codec(...) so the codec round-trips through SessionConfig",
                )
