"""The reprolint rule engine: file walking, parsing, suppression, output.

A lint run is deliberately simple and dependency-free:

1. Collect ``*.py`` files under the requested paths (sorted walk,
   skipping hidden directories and ``__pycache__``).
2. Parse each into a :class:`LintModule` — the ``ast`` tree plus the
   source lines, the dotted module name (when the file lives under a
   ``repro`` package root), and the per-line suppression table.
3. Hand every module to every :class:`Rule`; collect
   :class:`Violation` records.
4. Filter suppressed violations and render the rest as human-readable
   lines or a JSON document (``--json``).

Suppressions
------------
``# reprolint: disable=RULE`` (comma-separate several IDs) on a line
suppresses those rules for that line.  When the comment sits on a
``def``/``class`` header line, the suppression covers the whole body —
that is the idiom for documented exceptions such as caller-holds-lock
helper methods.  ``disable=all`` suppresses every rule.

Cross-module context
--------------------
Rules receive the whole :class:`LintRun`, so analyses that need more
than one file (DET001's import-reachability from ``repro.api.session``)
can see every collected module.  Single-module rules just ignore it.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "LintModule",
    "LintRun",
    "collect_files",
    "lint_paths",
    "render_text",
    "render_json",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit, anchored to a source line."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id`` / ``name`` / ``rationale`` and implement
    :meth:`check`, yielding :class:`Violation` records.  ``rationale``
    doubles as the rule-catalog documentation (``--list-rules``).
    """

    id: str = "RULE000"
    name: str = "unnamed"
    rationale: str = ""

    def check(self, module: "LintModule", run: "LintRun") -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, module: "LintModule", node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class LintModule:
    """One parsed source file plus everything rules need to scope it."""

    path: str
    display_path: str
    source: str
    tree: ast.Module
    #: dotted module name when the file lives under a ``repro`` package
    #: root (``.../repro/core/arena.py`` -> ``repro.core.arena``); None
    #: for files outside any such root (e.g. test fixtures)
    module_name: Optional[str] = None
    #: per-line suppressed rule IDs (``{"all"}`` suppresses everything)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: (start, end, rules) for suppressions on def/class header lines
    block_suppressions: List[Tuple[int, int, Set[str]]] = field(default_factory=list)

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(os.path.normpath(self.path).split(os.sep))

    @property
    def filename(self) -> str:
        return os.path.basename(self.path)

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.line_suppressions.get(violation.line)
        if rules and (violation.rule_id in rules or "all" in rules):
            return True
        for start, end, blocked in self.block_suppressions:
            if start <= violation.line <= end and (
                violation.rule_id in blocked or "all" in blocked
            ):
                return True
        return False

    def imported_modules(self) -> Set[str]:
        """Every module name this file imports (top-level and nested),
        with ``from pkg import sub`` contributing both ``pkg`` and
        ``pkg.sub`` so package-attribute imports resolve either way."""
        out: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: resolve against our package
                    if self.module_name is None:
                        continue
                    base = self.module_name.split(".")
                    # level=1 strips the module's own name, deeper levels
                    # climb packages
                    base = base[: -node.level] if len(base) >= node.level else []
                    prefix = ".".join(base)
                else:
                    prefix = node.module or ""
                if prefix:
                    out.add(prefix)
                for alias in node.names:
                    if prefix and alias.name != "*":
                        out.add(f"{prefix}.{alias.name}")
        return out


def _derive_module_name(path: str) -> Optional[str]:
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")  # last 'repro' segment
    dotted = parts[idx:]
    dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _collect_suppressions(module: LintModule) -> None:
    for lineno, line in enumerate(module.source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            module.line_suppressions[lineno] = rules
    if not module.line_suppressions:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            rules = module.line_suppressions.get(node.lineno)
            if rules:
                module.block_suppressions.append(
                    (node.lineno, node.end_lineno or node.lineno, rules)
                )


class LintRun:
    """All modules of one invocation plus cross-module caches."""

    def __init__(self, modules: Sequence[LintModule]):
        self.modules = list(modules)
        self._by_name: Dict[str, LintModule] = {
            m.module_name: m for m in self.modules if m.module_name
        }
        self._reachable_cache: Dict[str, Optional[Set[str]]] = {}

    def reachable_from(self, entry: str) -> Optional[Set[str]]:
        """Module names transitively imported from *entry*, restricted to
        the modules in this run.  Returns ``None`` when *entry* is not
        part of the run (callers should then fall back to applying their
        rule everywhere — that keeps fixture trees checkable)."""
        if entry in self._reachable_cache:
            return self._reachable_cache[entry]
        if entry not in self._by_name:
            self._reachable_cache[entry] = None
            return None
        seen = {entry}
        frontier = [entry]
        while frontier:
            mod = self._by_name[frontier.pop()]
            for name in mod.imported_modules():
                # an import of pkg.sub also executes pkg/__init__.py
                segments = name.split(".")
                for i in range(1, len(segments) + 1):
                    candidate = ".".join(segments[:i])
                    if candidate in self._by_name and candidate not in seen:
                        seen.add(candidate)
                        frontier.append(candidate)
        self._reachable_cache[entry] = seen
        return seen


def collect_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def load_module(path: str) -> Tuple[Optional[LintModule], Optional[Violation]]:
    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Violation(
            rule_id="LINT000",
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"syntax error: {exc.msg}",
        )
    module = LintModule(
        path=path,
        display_path=os.path.relpath(path),
        source=source,
        tree=tree,
        module_name=_derive_module_name(path),
    )
    _collect_suppressions(module)
    return module, None


def default_rules() -> List[Rule]:
    from repro.lint.rules_backend import BackendDisciplineRule
    from repro.lint.rules_bounds import ErrorBoundExactnessRule
    from repro.lint.rules_determinism import DeterminismRule
    from repro.lint.rules_lifecycle import ResourceLifecycleRule
    from repro.lint.rules_locks import LockDisciplineRule
    from repro.lint.rules_registry import RegistryHygieneRule

    return [
        LockDisciplineRule(),
        ResourceLifecycleRule(),
        ErrorBoundExactnessRule(),
        DeterminismRule(),
        RegistryHygieneRule(),
        BackendDisciplineRule(),
    ]


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> Tuple[List[Violation], int]:
    """Run *rules* (default: the full catalog) over *paths*.

    Returns ``(violations, files_checked)`` with suppressed violations
    already filtered and the rest sorted by location.
    """
    rules = list(rules) if rules is not None else default_rules()
    modules: List[LintModule] = []
    violations: List[Violation] = []
    for path in collect_files(paths):
        module, parse_error = load_module(path)
        if parse_error is not None:
            violations.append(parse_error)
            continue
        modules.append(module)
    run = LintRun(modules)
    for module in modules:
        for rule in rules:
            for violation in rule.check(module, run):
                if not module.is_suppressed(violation):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, len(modules)


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [v.format() for v in violations]
    summary = (
        f"reprolint: {len(violations)} violation(s) in {files_checked} file(s)"
        if violations
        else f"reprolint: clean ({files_checked} file(s) checked)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    doc = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "violations": [v.to_dict() for v in violations],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
