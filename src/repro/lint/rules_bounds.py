"""EBD001 — error-bound arithmetic must stay float64-exact.

**Rule.** Inside ``compression/`` modules, expressions that involve an
error-bound identifier (``error_bound``, ``eb``, ``eb_min``, ``rel_eb``,
``bound`` — any identifier with an ``eb``/``bound`` word part) must not
pass through float32-truncating operations:

* ``np.float32(<bound expr>)`` (or ``numpy.float32`` / a bare
  ``float32`` imported from numpy),
* ``<bound expr>.astype(np.float32)`` / ``.astype("float32")``,
* ``dtype=np.float32`` / ``dtype="float32"`` keywords in calls whose
  arguments mention a bound identifier.

**Why.** The paper's guarantee is a *strict* per-element bound; PR 1
established the convention that all bound math runs in float64 and only
reconstructed *values* may be cast down.  A float32 round-trip of the
bound itself (or of the quantization grid scaled by it) can round the
bound up past the promise the controller made — off by one ULP is still
a broken guarantee.  Casting value arrays whose names do not mention the
bound is fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import LintModule, LintRun, Rule, Violation

__all__ = ["ErrorBoundExactnessRule"]

_BOUND_WORDS = {"eb", "bound", "bounds"}


def _identifier_words(name: str) -> set:
    return set(name.lower().split("_"))


def _mentions_bound(node: ast.AST) -> Optional[str]:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.arg):
            name = sub.arg
        if name and _identifier_words(name) & _BOUND_WORDS:
            return name
    return None


def _is_float32_ref(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return node.value == "float32"
    if isinstance(node, ast.Name):
        return node.id == "float32"
    if isinstance(node, ast.Attribute):
        return node.attr == "float32"
    return False


class ErrorBoundExactnessRule(Rule):
    id = "EBD001"
    name = "error-bound-exactness"
    rationale = (
        "Bound arithmetic in compression/ must stay float64-exact; a float32 "
        "truncation of a bound expression can round the guarantee away."
    )

    def check(self, module: LintModule, run: LintRun) -> Iterable[Violation]:
        if "compression" not in module.parts:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            hit = self._check_call(node)
            if hit is not None:
                yield self.violation(module, node, hit)

    def _check_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        # np.float32(<bound expr>)
        if _is_float32_ref(func) and call.args:
            name = _mentions_bound(call.args[0])
            if name:
                return (
                    f"float32() truncates the bound expression (mentions {name!r}); "
                    f"bound math must stay float64-exact"
                )
        # <bound expr>.astype(float32)
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            dtype_args = list(call.args) + [
                kw.value for kw in call.keywords if kw.arg == "dtype"
            ]
            if any(_is_float32_ref(a) for a in dtype_args):
                name = _mentions_bound(func.value)
                if name:
                    return (
                        f"astype(float32) truncates an expression involving "
                        f"{name!r}; bound math must stay float64-exact"
                    )
        # f(..., dtype=np.float32) over bound-carrying arguments
        for kw in call.keywords:
            if kw.arg == "dtype" and _is_float32_ref(kw.value):
                for arg in call.args:
                    name = _mentions_bound(arg)
                    if name:
                        return (
                            f"dtype=float32 truncates an argument involving "
                            f"{name!r}; bound math must stay float64-exact"
                        )
        return None
