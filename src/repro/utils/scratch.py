"""Reusable scratch-buffer pool for hot-path array temporaries.

The SZ compress pipeline historically allocated three-plus full-size
temporaries per tensor per call (the float64 quantization grid, the
Lorenzo residuals, the shifted code array) — tens of megabytes of
allocator/page-fault traffic for every activation on every iteration.
:class:`ScratchPool` keeps those buffers alive between calls:

* ``take(shape, dtype)`` hands out a writable array view backed by a
  pooled flat buffer.  Buffers are keyed by dtype and matched by
  capacity (best fit), so one pooled buffer serves *every* layer shape
  of that dtype — the pool's footprint is bounded by the largest tensor,
  not the number of distinct shapes.  When a dtype bucket has nothing
  big enough, an oversized buffer of *another* dtype is served as a
  byte-capacity view instead of allocating fresh (the compiled kernel
  backends request different shapes/dtypes than the NumPy reference,
  which used to defeat the pool on every backend switch).
* The context-manager form returns the buffer on exit; concurrent takes
  (the :class:`~repro.compression.registry.ChunkedCodec` thread workers
  share one inner compressor) are safe — each take pops a distinct
  buffer under the pool lock, or allocates fresh when the pool is empty.

Pools are deliberately *not* pickled (a process-pool worker rebuilds an
empty one): the buffers are pure caches.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List

import numpy as np

__all__ = ["ScratchPool"]


class ScratchPool:
    """Thread-safe pool of reusable flat scratch buffers.

    Parameters
    ----------
    max_per_dtype:
        Free buffers retained per dtype; returns beyond the cap drop the
        smallest free buffer so the largest (most reusable) survive.
    max_total_bytes:
        Ceiling on pooled (free) bytes across all dtypes; returning a
        buffer that would exceed it evicts smallest-first.
    """

    def __init__(self, max_per_dtype: int = 8, max_total_bytes: int = 256 << 20):
        if max_per_dtype < 1:
            raise ValueError(f"max_per_dtype must be >= 1, got {max_per_dtype}")
        self.max_per_dtype = int(max_per_dtype)
        self.max_total_bytes = int(max_total_bytes)
        self._free: Dict[np.dtype, List[np.ndarray]] = {}
        self._lock = threading.Lock()
        # -- statistics ----------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.cross_dtype_hits = 0
        self.free_bytes = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "scratch")

    def _borrow(self, size: int, dtype: np.dtype) -> np.ndarray:
        """Pop a free buffer with capacity for ``size`` ``dtype`` elements.

        The returned buffer keeps its *own* dtype — it may come from
        another dtype's bucket when that bucket holds the only adequate
        byte capacity; :meth:`take` reinterprets the bytes and
        :meth:`_give` files it back under its original dtype.
        """
        nbytes = size * dtype.itemsize
        with self._lock:
            bucket = self._free.get(dtype)
            if bucket:
                # Best fit: smallest free buffer with enough capacity.
                best = None
                for i, buf in enumerate(bucket):
                    if buf.size >= size and (best is None or buf.size < bucket[best].size):
                        best = i
                if best is not None:
                    buf = bucket.pop(best)
                    self.free_bytes -= buf.nbytes
                    self.hits += 1
                    return buf
            # Cross-dtype rescue: smallest free buffer of any other dtype
            # with enough *byte* capacity, rather than allocating fresh.
            best_pick = None
            for key, other in self._free.items():
                if key == dtype:
                    continue
                for i, buf in enumerate(other):
                    if buf.nbytes >= nbytes and (
                        best_pick is None or buf.nbytes < best_pick[2].nbytes
                    ):
                        best_pick = (key, i, buf)
            if best_pick is not None:
                key, i, raw = best_pick
                self._free[key].pop(i)
                self.free_bytes -= raw.nbytes
                self.hits += 1
                self.cross_dtype_hits += 1
                return raw
            self.misses += 1
        return np.empty(size, dtype=dtype)

    def _give(self, buf: np.ndarray) -> None:
        dtype = buf.dtype
        with self._lock:
            bucket = self._free.setdefault(dtype, [])
            bucket.append(buf)
            self.free_bytes += buf.nbytes
            bucket.sort(key=lambda b: b.size)
            while len(bucket) > self.max_per_dtype or (
                self.free_bytes > self.max_total_bytes and bucket
            ):
                dropped = bucket.pop(0)  # smallest first
                self.free_bytes -= dropped.nbytes

    @contextmanager
    def take(self, shape, dtype) -> Iterator[np.ndarray]:
        """Yield a writable ``shape``/*dtype* array view (contents
        undefined); the backing buffer returns to the pool on exit."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape)) if shape else 1
        buf = self._borrow(size, dtype)
        try:
            if buf.dtype == dtype:
                yield buf[:size].reshape(shape)
            else:
                # Cross-dtype buffer: reinterpret the leading bytes.
                view = buf.view(np.uint8)[: size * dtype.itemsize].view(dtype)
                yield view.reshape(shape)
        finally:
            self._give(buf)

    def clear(self) -> None:
        """Drop every pooled buffer (frees the memory)."""
        with self._lock:
            self._free.clear()
            self.free_bytes = 0

    def __repr__(self) -> str:
        with self._lock:
            n = sum(len(b) for b in self._free.values())
            free_bytes = self.free_bytes
        return f"ScratchPool(free_buffers={n}, free_bytes={free_bytes})"
