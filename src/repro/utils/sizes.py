"""Byte accounting helpers used across compression and memory tracking."""

from __future__ import annotations

import numpy as np


def nbytes_of(obj) -> int:
    """Best-effort deep byte size of arrays / bytes / sequences thereof."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(nbytes_of(o) for o in obj)
    if isinstance(obj, dict):
        return sum(nbytes_of(v) for v in obj.values())
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    raise TypeError(f"cannot size object of type {type(obj)!r}")


def human_bytes(n: float) -> str:
    """Render a byte count as a short human-readable string (e.g. '9.30 GB')."""
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.2f} {unit}"
        n /= 1024.0
    return f"{n:.2f} TB"
