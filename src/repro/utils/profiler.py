"""Lightweight hot-path stage profiler.

The paper's overhead story lives or dies on where the compress path
spends its time; this module records it instead of guessing.  Components
on the hot path bracket their work with :func:`stage`:

    from repro.utils import profiler

    with profiler.stage("encode"):
        ...entropy coding...

When no profiler is active (the default) ``stage`` returns a shared
no-op context — one global read per call, nothing timed, so production
paths pay effectively nothing.  Activating a :class:`StageProfiler`
(directly or via ``Trainer(profiler=...)``) turns every bracketed
region into a per-stage (total seconds, call count) accumulator,
thread-safe so the async engine's workers and the chunked codec's pool
threads can report concurrently.

Stages used by the framework: ``quantize`` / ``predict`` / ``encode``
(compress side), ``decode`` (decompress side), ``arena-io`` (byte-arena
put/get/spill), ``engine-wait`` (training thread blocked on an async
pack or prefetch), ``unpack-ahead`` (speculative decompress on the
worker pool), ``bind-window`` (param-store window materialization and
next-window staging), ``step`` (whole training iteration, recorded by
the trainer), and the distributed exchange's ``grad-pack`` /
``grad-exchange`` / ``grad-unpack`` (rank side) and ``grad-reduce``
(coordinator side, hidden behind the ranks' exchange wait).  Custom
stages are just new names.

Overlap accounting: a stage bracketed with ``hidden=True`` runs off the
critical path (engine worker threads) — its seconds count toward the
stage total *and* toward a per-stage hidden accumulator, so
:meth:`StageProfiler.overlap_summary` can report how much of each
stage's time was hidden behind compute versus exposed on the training
thread.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = [
    "StageProfiler",
    "stage",
    "get_active",
    "set_active",
    "bind_to_thread",
    "merge_snapshots",
]


class _NullContext:
    """Shared do-nothing context for the profiler-off fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class _StageContext:
    """Times one bracketed region and reports it to its profiler."""

    __slots__ = ("_profiler", "_name", "_hidden", "_t0")

    def __init__(self, profiler: "StageProfiler", name: str, hidden: bool = False):
        self._profiler = profiler
        self._name = name
        self._hidden = hidden

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._profiler.record(
            self._name, time.perf_counter() - self._t0, hidden=self._hidden
        )
        return False


class StageProfiler:
    """Thread-safe per-stage wall-clock accumulator.

    ``enabled`` can be flipped at runtime; a disabled profiler hands out
    the shared no-op context, so leaving one active costs nothing while
    it is switched off.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._hidden: Dict[str, float] = {}

    # -- recording ---------------------------------------------------------
    def stage(self, name: str, hidden: bool = False):
        """Context manager timing one region under *name*.

        ``hidden=True`` marks the region as off-critical-path work
        (engine worker threads): it still accumulates into the stage
        total, and additionally into the hidden-time bucket reported by
        :meth:`overlap_summary`.
        """
        if not self.enabled:
            return _NULL
        return _StageContext(self, name, hidden)

    def record(self, name: str, seconds: float, hidden: bool = False) -> None:
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
            self._calls[name] = self._calls.get(name, 0) + 1
            if hidden:
                self._hidden[name] = self._hidden.get(name, 0.0) + float(seconds)

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Used to carry stage timings across a process boundary: pool
        workers (e.g. ``ChunkedCodec(executor="process")``) time their
        stages under a child-local profiler, return the snapshot with
        the result, and the parent merges it here.
        """
        with self._lock:
            for name, rec in snapshot.items():
                self._seconds[name] = self._seconds.get(name, 0.0) + float(rec["seconds"])
                self._calls[name] = self._calls.get(name, 0) + int(rec["calls"])
                hidden = float(rec.get("hidden_seconds", 0.0))
                if hidden:
                    self._hidden[name] = self._hidden.get(name, 0.0) + hidden

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {"seconds": total, "calls": n}}`` at this instant.

        Stages with hidden (worker-side) time carry an extra
        ``"hidden_seconds"`` key; stages without stay two-key, so
        snapshots from profilers that never used ``hidden=True`` are
        unchanged.
        """
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for name in sorted(self._seconds):
                rec = {"seconds": self._seconds[name], "calls": self._calls[name]}
                hidden = self._hidden.get(name, 0.0)
                if hidden:
                    rec["hidden_seconds"] = hidden
                out[name] = rec
            return out

    def overlap_summary(self) -> Dict[str, Dict[str, float]]:
        """Hidden-vs-exposed decomposition of the overlap stages.

        Returns ``{stage: {"seconds", "hidden_seconds",
        "exposed_seconds", "hidden_fraction"}}`` for every stage that
        recorded hidden time, plus the always-exposed wait stages when
        present — ``engine-wait`` (the training thread blocked on the
        engine) and ``grad-exchange`` (a rank blocked on the reduced
        gradient) — the two sides of the pipeline-overlap ledger.
        """
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for name in sorted(self._seconds):
                hidden = self._hidden.get(name, 0.0)
                if hidden <= 0.0 and name not in ("engine-wait", "grad-exchange"):
                    continue
                total = self._seconds[name]
                out[name] = {
                    "seconds": total,
                    "hidden_seconds": hidden,
                    "exposed_seconds": total - hidden,
                    "hidden_fraction": hidden / total if total > 0.0 else 0.0,
                }
            return out

    def total_seconds(self, name: str) -> float:
        with self._lock:
            return self._seconds.get(name, 0.0)

    def report_lines(self) -> list:
        """Human-readable per-stage breakdown, widest stages first."""
        snap = self.snapshot()
        if not snap:
            return ["(no stages recorded)"]
        width = max(len(n) for n in snap)
        lines = []
        for name, rec in sorted(snap.items(), key=lambda kv: -kv[1]["seconds"]):
            mean_ms = 1e3 * rec["seconds"] / rec["calls"] if rec["calls"] else 0.0
            lines.append(
                f"{name:{width}s} {rec['seconds']:9.3f}s "
                f"{rec['calls']:7d} calls {mean_ms:9.3f} ms/call"
            )
        return lines

    def reset(self) -> None:
        with self._lock:
            self._seconds.clear()
            self._calls.clear()
            self._hidden.clear()

    # -- activation --------------------------------------------------------
    def activate(self) -> "StageProfiler":
        """Install as the process-wide active profiler."""
        set_active(self)
        return self

    def deactivate(self) -> None:
        """Remove as the active profiler (if it is the active one)."""
        if get_active() is self:
            set_active(None)

    def __enter__(self) -> "StageProfiler":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.deactivate()


#: process-wide active profiler (None = off); module-level so hot paths
#: pay one global read when profiling is off
_ACTIVE: Optional[StageProfiler] = None

#: per-thread override of the active profiler: a multi-tenant server
#: runs many sessions' steps concurrently on scheduler threads, and each
#: step's stages must land in *that tenant's* profiler, not whichever
#: session activated last.  The process-wide slot stays the fallback for
#: unbound threads (the single-session case is unchanged).
_THREAD = threading.local()


def get_active() -> Optional[StageProfiler]:
    bound = getattr(_THREAD, "profiler", None)
    return bound if bound is not None else _ACTIVE


def set_active(profiler: Optional[StageProfiler]) -> None:
    global _ACTIVE
    _ACTIVE = profiler


class _ThreadBinding:
    """Context manager scoping a thread-local profiler binding."""

    __slots__ = ("_profiler", "_prev")

    def __init__(self, profiler: Optional[StageProfiler]):
        self._profiler = profiler

    def __enter__(self):
        self._prev = getattr(_THREAD, "profiler", None)
        _THREAD.profiler = self._profiler
        return self._profiler

    def __exit__(self, *exc):
        _THREAD.profiler = self._prev
        return False


def bind_to_thread(profiler: Optional[StageProfiler]) -> _ThreadBinding:
    """Bind *profiler* as this thread's active profiler for a scope:

        with profiler.bind_to_thread(tenant_profiler):
            session.train_step(...)

    Inside the scope, :func:`stage` on this thread records into
    *profiler* regardless of the process-wide active one; other threads
    are unaffected.  ``None`` is an unbind (the thread falls back to the
    process-wide profiler)."""
    return _ThreadBinding(profiler)


def stage(name: str, hidden: bool = False):
    """Time a region under the active profiler (no-op when none)."""
    p = getattr(_THREAD, "profiler", None)
    if p is None:
        p = _ACTIVE
    if p is None:
        return _NULL
    return p.stage(name, hidden)


def merge_snapshots(snapshots) -> Dict[str, Dict[str, float]]:
    """Fold many :meth:`StageProfiler.snapshot` dicts into one merged
    view — the cross-tenant aggregate a server's metrics surface reports
    next to the per-tenant breakdowns.  Seconds, calls, and hidden
    seconds sum per stage; input snapshots are untouched."""
    merged = StageProfiler()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()
