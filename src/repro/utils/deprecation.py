"""Legacy-shim deprecation plumbing.

The pre-``build_session`` constructors (``CompressedTraining``, the
session-level knobs of ``Trainer``) survive as equivalence-tested shims
but point new code at the declarative front door.  They warn through
:func:`warn_legacy`, which stays silent while ``build_session`` itself
is composing the stack — the front door legitimately constructs the
same classes, and a deprecation warning from inside the replacement
would be noise.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

__all__ = ["building_session", "warn_legacy"]

_suppress = 0


@contextmanager
def building_session():
    """Mark a ``build_session`` composition in progress (re-entrant);
    :func:`warn_legacy` calls under it are suppressed."""
    global _suppress
    _suppress += 1
    try:
        yield
    finally:
        _suppress -= 1


def warn_legacy(message: str) -> None:
    """Emit a :class:`DeprecationWarning` for a legacy construction
    path, unless the construction is on ``build_session``'s behalf."""
    if _suppress:
        return
    warnings.warn(message, DeprecationWarning, stacklevel=3)
