"""Deterministic RNG plumbing.

Every stochastic component in the library accepts either an integer seed,
a :class:`numpy.random.Generator`, or ``None``; this helper normalizes all
three so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    ``None`` yields a fresh non-deterministic generator, an ``int`` seeds a
    new generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
