"""Shared small utilities (RNG handling, byte accounting, scratch
buffers, and the hot-path stage profiler)."""

from repro.utils.rng import ensure_rng
from repro.utils.sizes import nbytes_of, human_bytes
from repro.utils.scratch import ScratchPool
from repro.utils.profiler import StageProfiler

__all__ = ["ensure_rng", "nbytes_of", "human_bytes", "ScratchPool", "StageProfiler"]
