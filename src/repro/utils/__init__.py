"""Shared small utilities (RNG handling, byte accounting)."""

from repro.utils.rng import ensure_rng
from repro.utils.sizes import nbytes_of, human_bytes

__all__ = ["ensure_rng", "nbytes_of", "human_bytes"]
