"""Declarative session configuration: the serializable half of the front door.

A :class:`SessionConfig` describes *everything* a compressed-training
session is made of — default codec, per-layer policy rules, storage
budgets, execution engine, adaptive controller, profiler, optimizer —
as a tree of plain dataclasses that round-trips losslessly through
``dict`` and JSON:

    cfg = SessionConfig(
        codec=CodecSpec("szlike", {"entropy": "huffman"}),
        rules=[PolicyRule(match="l0", codec=CodecSpec("lossless")),
               PolicyRule(match="l[24]", error_bound=1e-4)],
        engine=EngineSpec(kind="async"),
    )
    cfg.to_json("run.json")
    ...
    session = build_session(network, SessionConfig.from_json("run.json"))

Design rules:

* **Registry-keyed construction** — codecs are named by their
  :mod:`repro.compression.registry` key plus a kwargs dict, never by
  live objects, so a committed JSON file reproduces a run exactly.
* **Strict parsing** — :meth:`SessionConfig.from_dict` rejects unknown
  keys and wrong types with errors that name the offending section and
  list what *is* accepted; a typo'd knob fails loudly at load time, not
  silently at iteration 400.
* **Canonical serialization** — ``to_dict`` emits only non-default
  fields, so ``from_dict(to_dict(cfg))`` is identity and two configs
  compare equal iff their dicts do.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.core.error_model import THEORY_COEFFICIENT_A

__all__ = [
    "CodecSpec",
    "PolicyRule",
    "StorageSpec",
    "EngineSpec",
    "AdaptiveSpec",
    "ProfilerSpec",
    "SanitizerSpec",
    "OptimizerSpec",
    "DistributedSpec",
    "ServerSpec",
    "SessionConfig",
    "capture_session_config",
    "optimizer_spec_of",
]


# ---------------------------------------------------------------------------
# Strict-parsing helpers
# ---------------------------------------------------------------------------


class ConfigError(ValueError):
    """A config that cannot be built, with an actionable message."""


def _check_keys(d: Dict[str, Any], cls, where: str) -> None:
    if not isinstance(d, dict):
        raise ConfigError(
            f"{where}: expected a mapping, got {type(d).__name__}"
        )
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(d) - allowed)
    if unknown:
        raise ConfigError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"accepted keys: {', '.join(sorted(allowed))}"
        )


def _defaults(cls) -> Dict[str, Any]:
    out = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING:
            out[f.name] = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            out[f.name] = f.default_factory()  # type: ignore[misc]
    return out


def _sparse_dict(spec, nested: Dict[str, Any]) -> Dict[str, Any]:
    """Dataclass -> dict with default-valued fields omitted; *nested*
    maps field name -> already-serialized value (or None to omit)."""
    out: Dict[str, Any] = {}
    defaults = _defaults(type(spec))
    for f in dataclasses.fields(spec):
        if f.name in nested:
            if nested[f.name] is not None:
                out[f.name] = nested[f.name]
            continue
        value = getattr(spec, f.name)
        if f.name in defaults and value == defaults[f.name]:
            continue
        out[f.name] = value
    return out


# ---------------------------------------------------------------------------
# Leaf specs
# ---------------------------------------------------------------------------


@dataclass
class CodecSpec:
    """A codec named by registry key + constructor options.

    ``CodecSpec("szlike", {"error_bound": 1e-4, "entropy": "zlib"})`` is
    ``get_codec("szlike", error_bound=1e-4, entropy="zlib")``, but
    serializable.
    """

    name: str = "szlike"
    options: Dict[str, Any] = field(default_factory=dict)

    def validate(self, where: str = "codec") -> None:
        from repro.compression.registry import available_codecs

        if self.name.lower() not in available_codecs():
            raise ConfigError(
                f"{where}: unknown codec {self.name!r}; "
                f"available: {', '.join(available_codecs())}"
            )
        if not isinstance(self.options, dict) or not all(
            isinstance(k, str) for k in self.options
        ):
            raise ConfigError(f"{where}: options must be a mapping with string keys")
        try:
            json.dumps(self.options)
        except TypeError as exc:
            raise ConfigError(
                f"{where}: options must be JSON-serializable ({exc}); "
                f"pass declarative values, not live objects"
            ) from None

    def build(self):
        from repro.compression.registry import get_codec

        self.validate()
        try:
            return get_codec(self.name, **self.options)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"codec {self.name!r}: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "codec") -> "CodecSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec


def _validate_grad_codec(spec: "CodecSpec", where: str) -> None:
    """A gradient codec must keep the exchange's accuracy contract:
    either a per-element error bound (lossy-bounded, szlike-style) or a
    bit-exact round-trip (lossless).  Unbounded lossy codecs (jpeg) have
    no story for how far the averaged gradient can drift."""
    spec.validate(where)
    from repro.compression.registry import get_codec

    probe = get_codec(spec.name, **spec.options)
    try:
        if not (
            getattr(probe, "error_bounded", False) or getattr(probe, "lossless", False)
        ):
            raise ConfigError(
                f"{where}: {spec.name!r} is lossy without an error bound; "
                f"gradient exchange needs an error-bounded ('szlike', "
                f"'chunked') or lossless ('lossless', 'sparse-lossless') codec"
            )
    finally:
        close = getattr(probe, "close", None)
        if callable(close):
            close()


@dataclass
class PolicyRule:
    """One per-layer policy: glob-matched layers get their own regime.

    First match wins across ``SessionConfig.rules``; unmatched layers
    fall back to the session defaults.

    Parameters
    ----------
    match:
        Pattern over layer names.  With the default
        ``match_kind="glob"`` it is an :mod:`fnmatch` glob (``"l0"``,
        ``"l1?"``, ``"conv*"``); with ``match_kind="regex"`` it is a
        full-match :mod:`re` pattern (``"l[0-9]+"``), validated at
        config-parse time.
    match_kind:
        ``"glob"`` (default) or ``"regex"``.
    label:
        Accounting-group name (auto ``"rule<i>"`` when empty) — per-rule
        raw/stored bytes appear under it in
        ``MemoryTracker.group_summary()``.
    codec:
        Codec for matched layers; ``None`` inherits the session codec.
    error_bound:
        Fixed absolute bound for matched layers.  A fixed bound pins
        the layers — the controller skips them — and therefore
        contradicts ``adaptive=True`` (validation rejects the
        combination; use ``initial_rel_eb`` for an adaptive warm start).
    adaptive:
        ``None`` (default) resolves to ``error_bound is None``.
    storage:
        ``"arena"`` / ``"inmem"`` / ``None`` (inherit session storage).
    initial_rel_eb, eb_min, eb_max:
        Per-rule warm-up bound and controller clamp overrides.
    arena_budget:
        In-memory sub-budget (bytes) for this rule's packed activations,
        carved out of the session arena — matched layers spill to disk
        once their group exceeds it, independently of the global
        ``storage.budget_bytes``.  Requires arena-backed activations.
    grad_codec:
        Codec for the matched layers' **gradients** in a data-parallel
        exchange (``distributed.world_size > 1``); ``None`` inherits
        ``distributed.grad_codec``.  Must be error-bounded or lossless —
        the same contract the session-wide gradient codec obeys.
    kernel_backend:
        Kernel backend (``"numpy"``/``"numba"``/``"auto"``) for the
        matched layers' codec; ``None`` inherits
        ``engine.kernel_backend``.  Applies to szlike-family codecs
        (directly or inside ``chunked``); other codecs ignore it.
    """

    match: str = "*"
    match_kind: str = "glob"
    label: str = ""
    codec: Optional[CodecSpec] = None
    error_bound: Optional[float] = None
    adaptive: Optional[bool] = None
    storage: Optional[str] = None
    initial_rel_eb: Optional[float] = None
    eb_min: Optional[float] = None
    eb_max: Optional[float] = None
    arena_budget: Optional[int] = None
    grad_codec: Optional[CodecSpec] = None
    kernel_backend: Optional[str] = None

    def resolved_adaptive(self) -> bool:
        return self.adaptive if self.adaptive is not None else self.error_bound is None

    def validate(self, where: str = "rule") -> None:
        if not isinstance(self.match, str) or not self.match:
            raise ConfigError(f"{where}: match must be a non-empty pattern string")
        if self.match_kind not in ("glob", "regex"):
            raise ConfigError(
                f"{where}: match_kind must be 'glob' or 'regex', "
                f"got {self.match_kind!r}"
            )
        if self.match_kind == "regex":
            try:
                re.compile(self.match)
            except re.error as exc:
                raise ConfigError(
                    f"{where}: invalid regex {self.match!r}: {exc}"
                ) from None
        if self.codec is not None:
            self.codec.validate(f"{where}.codec")
        if self.error_bound is not None and self.error_bound <= 0:
            raise ConfigError(
                f"{where}: error_bound must be positive, got {self.error_bound}"
            )
        if self.storage not in (None, "arena", "inmem"):
            raise ConfigError(
                f"{where}: storage must be 'arena', 'inmem', or omitted, "
                f"got {self.storage!r}"
            )
        if self.resolved_adaptive() and self.error_bound is not None:
            raise ConfigError(
                f"{where}: adaptive=True contradicts a fixed error_bound; "
                f"drop one (a fixed bound implies adaptive=False)"
            )
        for attr in ("initial_rel_eb", "eb_min", "eb_max"):
            v = getattr(self, attr)
            if v is not None and v <= 0:
                raise ConfigError(f"{where}: {attr} must be positive, got {v}")
        if self.eb_min is not None and self.eb_max is not None and self.eb_max <= self.eb_min:
            raise ConfigError(
                f"{where}: need eb_min < eb_max, got {self.eb_min} >= {self.eb_max}"
            )
        if self.arena_budget is not None:
            if (
                not isinstance(self.arena_budget, int)
                or isinstance(self.arena_budget, bool)
                or self.arena_budget <= 0
            ):
                raise ConfigError(
                    f"{where}: arena_budget must be a positive int or omitted, "
                    f"got {self.arena_budget!r}"
                )
            if self.storage == "inmem":
                raise ConfigError(
                    f"{where}: arena_budget requires arena storage, but the "
                    f"rule pins storage='inmem'"
                )
        if self.grad_codec is not None:
            _validate_grad_codec(self.grad_codec, f"{where}.grad_codec")
        if self.kernel_backend is not None:
            from repro.kernels import KERNEL_BACKENDS

            if self.kernel_backend not in KERNEL_BACKENDS:
                raise ConfigError(
                    f"{where}: kernel_backend must be one of {KERNEL_BACKENDS} "
                    f"or omitted, got {self.kernel_backend!r}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(
            self,
            {
                "codec": self.codec.to_dict() if self.codec else None,
                "grad_codec": self.grad_codec.to_dict() if self.grad_codec else None,
            },
        )

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "rule") -> "PolicyRule":
        _check_keys(d, cls, where)
        d = dict(d)
        if "codec" in d:
            d["codec"] = CodecSpec.from_dict(d["codec"], f"{where}.codec")
        if "grad_codec" in d:
            d["grad_codec"] = CodecSpec.from_dict(d["grad_codec"], f"{where}.grad_codec")
        rule = cls(**d)
        rule.validate(where)
        return rule


@dataclass
class StorageSpec:
    """Where packed activations and parameters physically live.

    ``activations="arena"`` serializes packed activations into a
    budgeted :class:`~repro.core.arena.ByteArena` (spill-to-disk
    overflow, byte-exact tracker numbers); ``params="arena"`` moves
    weights and optimizer slots into a :class:`~repro.core.param_store.ParamStore`.
    """

    activations: str = "inmem"  # "inmem" | "arena"
    budget_bytes: int = 64 << 20
    spill_dir: Optional[str] = None
    params: str = "resident"  # "resident" | "arena"
    param_budget_bytes: int = 64 << 20
    param_codec: Optional[CodecSpec] = None
    param_dirty_tracking: bool = True

    def validate(self, where: str = "storage") -> None:
        if self.activations not in ("inmem", "arena"):
            raise ConfigError(
                f"{where}: activations must be 'inmem' or 'arena', "
                f"got {self.activations!r}"
            )
        if self.params not in ("resident", "arena"):
            raise ConfigError(
                f"{where}: params must be 'resident' or 'arena', got {self.params!r}"
            )
        for attr in ("budget_bytes", "param_budget_bytes"):
            v = getattr(self, attr)
            if not isinstance(v, int) or v < 0:
                raise ConfigError(f"{where}: {attr} must be an int >= 0, got {v!r}")
        if self.param_codec is not None:
            self.param_codec.validate(f"{where}.param_codec")
            from repro.compression.registry import get_codec

            probe = get_codec(self.param_codec.name, **self.param_codec.options)
            try:
                if not getattr(probe, "lossless", False):
                    raise ConfigError(
                        f"{where}.param_codec: {self.param_codec.name!r} is lossy; "
                        f"parameters must round-trip bit-exactly "
                        f"(use 'lossless' or 'sparse-lossless')"
                    )
            finally:
                # a probe ChunkedCodec may have eagerly forked a pool
                close = getattr(probe, "close", None)
                if callable(close):
                    close()

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(
            self,
            {"param_codec": self.param_codec.to_dict() if self.param_codec else None},
        )

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "storage") -> "StorageSpec":
        _check_keys(d, cls, where)
        d = dict(d)
        if "param_codec" in d:
            d["param_codec"] = CodecSpec.from_dict(d["param_codec"], f"{where}.param_codec")
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class EngineSpec:
    """Execution strategy for the saved-tensor path.

    ``unpack_depth`` controls the async engine's speculative-decompress
    window (``None`` follows ``prefetch_depth``, ``0`` disables,
    ``"auto"`` adapts); ``shared_codebook_cache`` upgrades process-pool
    chunked codecs to a cross-process codebook segment;
    ``bind_window_bytes`` groups adjacent small layers into one
    param-store bind window (``0`` disables); ``kernel_backend`` picks
    the compiled-kernel implementation for szlike-family codecs
    (``"auto"`` probes Numba and falls back to NumPy — see
    :mod:`repro.kernels`).
    """

    kind: str = "sync"  # "sync" | "async"
    workers: int = 2
    prefetch_depth: Union[int, str] = 2  # int or "auto"
    max_pending: Optional[int] = None
    max_auto_depth: int = 8
    unpack_depth: Union[int, str, None] = None  # int, "auto", or follow prefetch
    shared_codebook_cache: bool = False
    bind_window_bytes: int = 0
    kernel_backend: str = "auto"

    def validate(self, where: str = "engine") -> None:
        if self.kind not in ("sync", "async"):
            raise ConfigError(
                f"{where}: kind must be 'sync' or 'async', got {self.kind!r}"
            )
        if self.workers < 1:
            raise ConfigError(f"{where}: workers must be >= 1, got {self.workers}")
        if isinstance(self.prefetch_depth, str):
            if self.prefetch_depth != "auto":
                raise ConfigError(
                    f"{where}: prefetch_depth must be an int >= 0 or 'auto', "
                    f"got {self.prefetch_depth!r}"
                )
        elif not isinstance(self.prefetch_depth, int) or self.prefetch_depth < 0:
            raise ConfigError(
                f"{where}: prefetch_depth must be an int >= 0 or 'auto', "
                f"got {self.prefetch_depth!r}"
            )
        if isinstance(self.unpack_depth, str):
            if self.unpack_depth != "auto":
                raise ConfigError(
                    f"{where}: unpack_depth must be an int >= 0, 'auto', or "
                    f"omitted, got {self.unpack_depth!r}"
                )
        elif self.unpack_depth is not None and (
            not isinstance(self.unpack_depth, int) or self.unpack_depth < 0
        ):
            raise ConfigError(
                f"{where}: unpack_depth must be an int >= 0, 'auto', or "
                f"omitted, got {self.unpack_depth!r}"
            )
        if self.max_pending is not None and (
            not isinstance(self.max_pending, int) or self.max_pending < 1
        ):
            raise ConfigError(
                f"{where}: max_pending must be an int >= 1 or omitted, "
                f"got {self.max_pending!r}"
            )
        if not isinstance(self.max_auto_depth, int) or self.max_auto_depth < 1:
            raise ConfigError(
                f"{where}: max_auto_depth must be an int >= 1, "
                f"got {self.max_auto_depth!r}"
            )
        if not isinstance(self.shared_codebook_cache, bool):
            raise ConfigError(
                f"{where}: shared_codebook_cache must be a bool, "
                f"got {self.shared_codebook_cache!r}"
            )
        if not isinstance(self.bind_window_bytes, int) or isinstance(
            self.bind_window_bytes, bool
        ) or self.bind_window_bytes < 0:
            raise ConfigError(
                f"{where}: bind_window_bytes must be an int >= 0, "
                f"got {self.bind_window_bytes!r}"
            )
        from repro.kernels import KERNEL_BACKENDS

        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigError(
                f"{where}: kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )

    def build(self):
        from repro.core.engine import AsyncEngine, SyncEngine

        self.validate()
        if self.kind == "sync":
            return SyncEngine()
        return AsyncEngine(
            workers=self.workers,
            prefetch_depth=self.prefetch_depth,
            max_pending=self.max_pending,
            max_auto_depth=self.max_auto_depth,
            unpack_depth=self.unpack_depth,
        )

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "engine") -> "EngineSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class AdaptiveSpec:
    """The Eq. 8/9 controller's knobs (defaults match
    ``CompressedTraining``'s: the paper's values with W scaled to
    CPU-sized runs)."""

    enabled: bool = True
    W: int = 50
    sigma_fraction: float = 0.01
    #: Eq. 9 coefficient (the exact rms convention's 1/sqrt(3)); exposed
    #: so ablation configs round-trip too
    coefficient: float = float(THEORY_COEFFICIENT_A)
    initial_rel_eb: float = 1e-3
    warmup_iterations: int = 5
    eb_min: float = 1e-10
    eb_max: float = 10.0
    min_nonzero_ratio: float = 1e-3

    def validate(self, where: str = "adaptive") -> None:
        try:
            self.to_adaptive_config()
        except ValueError as exc:
            raise ConfigError(f"{where}: {exc}") from None

    def to_adaptive_config(self):
        from repro.core.adaptive import AdaptiveConfig

        return AdaptiveConfig(
            W=self.W,
            sigma_fraction=self.sigma_fraction,
            coefficient=self.coefficient,
            initial_rel_eb=self.initial_rel_eb,
            warmup_iterations=self.warmup_iterations,
            eb_min=self.eb_min,
            eb_max=self.eb_max,
            min_nonzero_ratio=self.min_nonzero_ratio,
        )

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "adaptive") -> "AdaptiveSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class ProfilerSpec:
    """Hot-path stage profiling for the run (``Trainer(profiler=True)``)."""

    enabled: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "profiler") -> "ProfilerSpec":
        _check_keys(d, cls, where)
        return cls(**d)


@dataclass
class SanitizerSpec:
    """Runtime sanitizer for the session (:mod:`repro.core.sanitizer`).

    When ``enabled``, ``build_session`` turns the sanitizer on *before*
    constructing the stack, so every arena/scratch/codebook/param-store
    lock is order-tracked (deadlock cycles raise
    :class:`~repro.core.sanitizer.LockOrderError`), released buffers are
    NaN-poisoned, and arena double-releases trap with acquisition-site
    tracebacks.  The sanitizer is process-wide and sticky — objects
    instrumented for this session stay instrumented (the same switch the
    ``REPRO_SANITIZE=1`` environment variable flips at import time).
    Meant for CI/stress runs, not production: poisoning copies buffers
    on ``put`` and every lock acquire takes a graph check.
    """

    enabled: bool = False
    poison: bool = True
    lock_order: bool = True
    trap_double_release: bool = True

    def validate(self, where: str = "sanitizer") -> None:
        for attr in ("enabled", "poison", "lock_order", "trap_double_release"):
            v = getattr(self, attr)
            if not isinstance(v, bool):
                raise ConfigError(f"{where}: {attr} must be a bool, got {v!r}")

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "sanitizer") -> "SanitizerSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class OptimizerSpec:
    """Optimizer construction, so a config fully determines a run."""

    kind: str = "sgd"  # "sgd" | "adam"
    lr: float = 0.01
    momentum: float = 0.9  # sgd only
    weight_decay: float = 0.0
    options: Dict[str, Any] = field(default_factory=dict)  # extras (adam betas/eps)

    def validate(self, where: str = "optimizer") -> None:
        if self.kind not in ("sgd", "adam"):
            raise ConfigError(
                f"{where}: kind must be 'sgd' or 'adam', got {self.kind!r}"
            )
        if self.lr <= 0:
            raise ConfigError(f"{where}: lr must be positive, got {self.lr}")
        try:
            json.dumps(self.options)
        except TypeError as exc:
            raise ConfigError(f"{where}: options must be JSON-serializable ({exc})") from None

    def build(self, params):
        from repro.nn.optim import SGD, Adam

        self.validate()
        try:
            if self.kind == "sgd":
                return SGD(
                    params,
                    lr=self.lr,
                    momentum=self.momentum,
                    weight_decay=self.weight_decay,
                    **self.options,
                )
            opts = dict(self.options)
            if "betas" in opts:
                opts["betas"] = tuple(opts["betas"])
            return Adam(params, lr=self.lr, weight_decay=self.weight_decay, **opts)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"optimizer {self.kind!r}: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "optimizer") -> "OptimizerSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class DistributedSpec:
    """Data-parallel training across process-based worker ranks.

    ``world_size > 1`` makes :func:`~repro.api.session.build_session`
    spawn that many rank processes, each with its own
    ``ParamStore``/``ByteArena``/engine, and exchange gradients through
    the codec registry every step — the paper's bounded-lossy thesis
    applied to the dominant cost of data parallelism.

    Parameters
    ----------
    world_size:
        Number of worker ranks (``1`` = single-process, the spec is
        inert).
    grad_codec:
        Codec for the gradient exchange; ``None`` resolves to
        ``sparse-lossless`` (bit-exact).  Must be error-bounded
        (``szlike``, ``chunked``) or lossless — unbounded lossy codecs
        (``jpeg``) are rejected.  Per-layer overrides live on
        ``PolicyRule.grad_codec``.
    error_feedback:
        Keep a per-layer residual of what compression dropped and add
        it back into the next step's gradient before compressing, so
        the *accumulated* applied gradient tracks the true one and
        convergence matches the single-worker run within the bound.
    reduce_order:
        ``"tree"`` (fixed binary rank-tree) or ``"linear"`` (left fold
        over ranks).  Both are deterministic — the choice only changes
        the float-summation order, and therefore which bit-exact result
        a committed config reproduces.
    rank_arena_budget:
        Per-rank override (bytes) for ``storage.budget_bytes`` so N
        rank arenas don't multiply the single-process budget; ``None``
        inherits the session storage budget unchanged.
    """

    world_size: int = 1
    grad_codec: Optional[CodecSpec] = None
    error_feedback: bool = True
    reduce_order: str = "tree"  # "tree" | "linear"
    rank_arena_budget: Optional[int] = None

    def resolved_grad_codec(self) -> CodecSpec:
        """The codec the exchange actually uses (default: bit-exact)."""
        if self.grad_codec is not None:
            return self.grad_codec
        return CodecSpec("sparse-lossless")

    def validate(self, where: str = "distributed") -> None:
        if (
            not isinstance(self.world_size, int)
            or isinstance(self.world_size, bool)
            or self.world_size < 1
        ):
            raise ConfigError(
                f"{where}: world_size must be an int >= 1, got {self.world_size!r}"
            )
        if self.grad_codec is not None:
            _validate_grad_codec(self.grad_codec, f"{where}.grad_codec")
        if not isinstance(self.error_feedback, bool):
            raise ConfigError(
                f"{where}: error_feedback must be a bool, "
                f"got {self.error_feedback!r}"
            )
        if self.reduce_order not in ("tree", "linear"):
            raise ConfigError(
                f"{where}: reduce_order must be 'tree' or 'linear', "
                f"got {self.reduce_order!r}"
            )
        if self.rank_arena_budget is not None:
            if (
                not isinstance(self.rank_arena_budget, int)
                or isinstance(self.rank_arena_budget, bool)
                or self.rank_arena_budget <= 0
            ):
                raise ConfigError(
                    f"{where}: rank_arena_budget must be a positive int or "
                    f"omitted, got {self.rank_arena_budget!r}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(
            self,
            {"grad_codec": self.grad_codec.to_dict() if self.grad_codec else None},
        )

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "distributed") -> "DistributedSpec":
        _check_keys(d, cls, where)
        d = dict(d)
        if "grad_codec" in d:
            d["grad_codec"] = CodecSpec.from_dict(d["grad_codec"], f"{where}.grad_codec")
        spec = cls(**d)
        spec.validate(where)
        return spec


@dataclass
class ServerSpec:
    """One multi-tenant :class:`~repro.server.SessionServer`'s knobs.

    Not a :class:`SessionConfig` section — a server *hosts* many session
    configs — but the same strict-parsing/sparse-serialization contract:
    ``ServerSpec.from_dict(spec.to_dict())`` is identity, unknown keys
    fail loudly, and a live server re-serializes its spec via
    ``server.capture()``.

    Parameters
    ----------
    pool_budget_bytes:
        The one shared in-memory byte budget every tenant's arena is
        carved out of (:class:`~repro.core.arena.ArenaPool`).
    max_tenants:
        Hard cap on simultaneously admitted tenants.
    admission:
        What happens to a tenant whose declared budget would oversubscribe
        the pool beyond *overcommit*: ``"reject"`` raises
        :class:`~repro.server.AdmissionError`; ``"queue"`` parks the
        tenant until an eviction frees budget.
    overcommit:
        Admission tolerance for oversubscription: tenants are admitted
        while ``sum(declared budgets) <= pool_budget_bytes * overcommit``.
        ``1.0`` never oversubscribes; a production host relies on the
        pool's fair spill and runs at 2-8x.
    queue_depth:
        Per-tenant cap on pending step requests; submits beyond it are
        rejected (backpressure instead of unbounded memory growth).
    workers:
        Scheduler worker threads.  Each tenant's requests always run
        serially in FIFO order regardless of worker count (per-tenant
        determinism); workers add cross-tenant concurrency only.
    max_batch_requests:
        Request batching: up to this many consecutive queued requests of
        one tenant run per dispatch before the scheduler round-robins to
        the next tenant — amortizes per-dispatch overhead under load
        without starving anyone.
    shared_codebook_cache:
        Give every szlike-family tenant codec one shared codebook
        segment, so tenant B adopts the canonical Huffman books tenant A
        already built (reconstruction stays bit-identical; only the
        entropy-stage build cost is shared).
    spill_dir:
        Pool spill directory (defaults to an owned temp dir).
    host, port:
        Bind address for :func:`repro.server.serve`'s HTTP/JSON metrics
        endpoint (``port=0`` = ephemeral).
    """

    pool_budget_bytes: int = 64 << 20
    max_tenants: int = 8
    admission: str = "reject"  # "reject" | "queue"
    overcommit: float = 1.0
    queue_depth: int = 64
    workers: int = 1
    max_batch_requests: int = 1
    shared_codebook_cache: bool = True
    spill_dir: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0

    def validate(self, where: str = "server") -> None:
        for attr in ("pool_budget_bytes",):
            v = getattr(self, attr)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                raise ConfigError(f"{where}: {attr} must be an int >= 0, got {v!r}")
        for attr in ("max_tenants", "queue_depth", "workers", "max_batch_requests"):
            v = getattr(self, attr)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                raise ConfigError(f"{where}: {attr} must be an int >= 1, got {v!r}")
        if self.admission not in ("reject", "queue"):
            raise ConfigError(
                f"{where}: admission must be 'reject' or 'queue', "
                f"got {self.admission!r}"
            )
        if not isinstance(self.overcommit, (int, float)) or isinstance(
            self.overcommit, bool
        ) or self.overcommit < 1.0:
            raise ConfigError(
                f"{where}: overcommit must be a number >= 1.0, "
                f"got {self.overcommit!r}"
            )
        if not isinstance(self.shared_codebook_cache, bool):
            raise ConfigError(
                f"{where}: shared_codebook_cache must be a bool, "
                f"got {self.shared_codebook_cache!r}"
            )
        if self.spill_dir is not None and not isinstance(self.spill_dir, str):
            raise ConfigError(
                f"{where}: spill_dir must be a string path or omitted, "
                f"got {self.spill_dir!r}"
            )
        if not isinstance(self.host, str) or not self.host:
            raise ConfigError(f"{where}: host must be a non-empty string")
        if not isinstance(self.port, int) or isinstance(self.port, bool) or not (
            0 <= self.port <= 65535
        ):
            raise ConfigError(
                f"{where}: port must be an int in [0, 65535], got {self.port!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(self, {})

    @classmethod
    def from_dict(cls, d: Dict[str, Any], where: str = "server") -> "ServerSpec":
        _check_keys(d, cls, where)
        spec = cls(**d)
        spec.validate(where)
        return spec

    @classmethod
    def from_json(cls, source: Union[str, "os.PathLike"]) -> "ServerSpec":
        """Parse from a JSON string or file path (same dual-form rule as
        :meth:`SessionConfig.from_json`)."""
        return cls.from_dict(_load_json_source(source))


def _load_json_source(source: Union[str, "os.PathLike"]) -> Dict[str, Any]:
    """JSON text-or-path loader shared by the config entry points."""
    if isinstance(source, os.PathLike) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        path = os.fspath(source)
        if not os.path.exists(path):
            raise ConfigError(
                f"config file {path!r} does not exist "
                f"(pass a JSON object string or a valid path)"
            )
        with open(path) as f:
            text = f.read()
    else:
        text = source
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON: {exc}") from None


# ---------------------------------------------------------------------------
# The root
# ---------------------------------------------------------------------------


@dataclass
class SessionConfig:
    """Declarative description of one compressed-training session.

    ``build_session(network, config)`` turns it into a live
    :class:`~repro.api.session.Session`; :meth:`to_json` /
    :meth:`from_json` make runs reproducible from a committed file.
    """

    codec: CodecSpec = field(default_factory=CodecSpec)
    rules: List[PolicyRule] = field(default_factory=list)
    storage: StorageSpec = field(default_factory=StorageSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    adaptive: AdaptiveSpec = field(default_factory=AdaptiveSpec)
    profiler: ProfilerSpec = field(default_factory=ProfilerSpec)
    sanitizer: SanitizerSpec = field(default_factory=SanitizerSpec)
    optimizer: OptimizerSpec = field(default_factory=OptimizerSpec)
    distributed: DistributedSpec = field(default_factory=DistributedSpec)
    #: False skips activation compression entirely (the session is then
    #: a plain trainer, optionally with out-of-core parameters /
    #: profiler — what a bare ``Trainer(param_store=..., profiler=...)``
    #: gives you today)
    compress_activations: bool = True

    def validate(self) -> "SessionConfig":
        self.codec.validate("codec")
        labels = set()
        for i, rule in enumerate(self.rules):
            if not isinstance(rule, PolicyRule):
                raise ConfigError(
                    f"rules[{i}]: expected a PolicyRule, got {type(rule).__name__}"
                )
            rule.validate(f"rules[{i}] (match={rule.match!r})")
            label = rule.label or f"rule{i}"
            if label in labels:
                raise ConfigError(f"rules[{i}]: duplicate rule label {label!r}")
            labels.add(label)
            if rule.storage == "arena" and self.storage.activations != "arena":
                raise ConfigError(
                    f"rules[{i}] (match={rule.match!r}): storage='arena' needs "
                    f"storage.activations='arena' on the session (no arena is "
                    f"configured to put the bytes in)"
                )
            if rule.arena_budget is not None and self.storage.activations != "arena":
                raise ConfigError(
                    f"rules[{i}] (match={rule.match!r}): arena_budget needs "
                    f"storage.activations='arena' on the session (there is no "
                    f"arena to carve the sub-budget out of)"
                )
            # A partial clamp override combines with the session's global
            # clamp at runtime — cross-check here so the pair fails at
            # load time, not at the controller's first update.
            lo = rule.eb_min if rule.eb_min is not None else self.adaptive.eb_min
            hi = rule.eb_max if rule.eb_max is not None else self.adaptive.eb_max
            if hi <= lo:
                raise ConfigError(
                    f"rules[{i}] (match={rule.match!r}): effective eb clamps are "
                    f"inverted (eb_min={lo} >= eb_max={hi}, combining the rule's "
                    f"overrides with adaptive.eb_min/eb_max)"
                )
        self.storage.validate("storage")
        self.engine.validate("engine")
        self.adaptive.validate("adaptive")
        self.sanitizer.validate("sanitizer")
        self.optimizer.validate("optimizer")
        self.distributed.validate("distributed")
        if self.distributed.world_size > 1:
            if (
                self.distributed.rank_arena_budget is not None
                and self.storage.activations != "arena"
            ):
                raise ConfigError(
                    "distributed: rank_arena_budget needs "
                    "storage.activations='arena' on the session (there is no "
                    "per-rank arena to apply the budget to)"
                )
        else:
            for i, rule in enumerate(self.rules):
                if rule.grad_codec is not None:
                    raise ConfigError(
                        f"rules[{i}] (match={rule.match!r}): grad_codec only "
                        f"applies to a data-parallel exchange; set "
                        f"distributed.world_size > 1"
                    )
        return self

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return _sparse_dict(
            self,
            {
                "codec": self.codec.to_dict() or None,
                "rules": [r.to_dict() for r in self.rules] or None,
                "storage": self.storage.to_dict() or None,
                "engine": self.engine.to_dict() or None,
                "adaptive": self.adaptive.to_dict() or None,
                "profiler": self.profiler.to_dict() or None,
                "sanitizer": self.sanitizer.to_dict() or None,
                "optimizer": self.optimizer.to_dict() or None,
                "distributed": self.distributed.to_dict() or None,
            },
        )

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SessionConfig":
        _check_keys(d, cls, "session")
        d = dict(d)
        parsers = {
            "codec": CodecSpec.from_dict,
            "storage": StorageSpec.from_dict,
            "engine": EngineSpec.from_dict,
            "adaptive": AdaptiveSpec.from_dict,
            "profiler": ProfilerSpec.from_dict,
            "sanitizer": SanitizerSpec.from_dict,
            "optimizer": OptimizerSpec.from_dict,
            "distributed": DistributedSpec.from_dict,
        }
        for key, parse in parsers.items():
            if key in d:
                d[key] = parse(d[key], key)
        if "rules" in d:
            if not isinstance(d["rules"], list):
                raise ConfigError(
                    f"rules: expected a list of rule mappings, "
                    f"got {type(d['rules']).__name__}"
                )
            d["rules"] = [
                PolicyRule.from_dict(r, f"rules[{i}]") for i, r in enumerate(d["rules"])
            ]
        return cls(**d).validate()

    def to_json(self, path: Optional[str] = None, *, indent: int = 2) -> str:
        """JSON form; also written to *path* when given."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    @classmethod
    def from_json(cls, source: Union[str, "os.PathLike"]) -> "SessionConfig":
        """Parse from a JSON string, or from a file path if *source*
        names an existing file."""
        return cls.from_dict(_load_json_source(source))


# ---------------------------------------------------------------------------
# Capture: the legacy-shim bridge
# ---------------------------------------------------------------------------


def optimizer_spec_of(optimizer) -> Optional[OptimizerSpec]:
    """:class:`OptimizerSpec` for a live :mod:`repro.nn.optim` optimizer.

    Only non-default Adam extras go into ``options`` so the spec stays
    sparse — ``from_dict(to_dict(spec))`` identity holds for captured
    configs too.  Returns ``None`` for optimizer types the declarative
    schema cannot describe.
    """
    from repro.nn.optim import SGD, Adam

    if isinstance(optimizer, SGD):
        return OptimizerSpec(
            kind="sgd",
            lr=optimizer.lr,
            momentum=optimizer.momentum,
            weight_decay=optimizer.weight_decay,
        )
    if isinstance(optimizer, Adam):
        options: Dict[str, Any] = {}
        if tuple(optimizer.betas) != (0.9, 0.999):
            options["betas"] = list(optimizer.betas)
        if optimizer.eps != 1e-8:
            options["eps"] = optimizer.eps
        return OptimizerSpec(
            kind="adam",
            lr=optimizer.lr,
            weight_decay=optimizer.weight_decay,
            options=options,
        )
    return None


def capture_session_config(
    *,
    compressor=None,
    adaptive_config=None,
    adaptive_enabled: bool = True,
    storage=None,
    param_storage=None,
    engine=None,
    policy_table=None,
    optimizer=None,
) -> Optional[SessionConfig]:
    """Best-effort :class:`SessionConfig` for a legacy
    ``CompressedTraining(...)`` call's arguments.

    Returns ``None`` when any argument is a live object the declarative
    schema cannot describe (a non-registry codec, a hand-built engine
    instance, a policy table without declarative source rules) — the
    session still works, it just has no config twin.
    """
    from repro.compression.registry import spec_of
    from repro.core.arena import ByteArena
    from repro.core.engine import AsyncEngine, SyncEngine
    from repro.core.param_store import ParamStore

    cfg = SessionConfig()

    if compressor is not None:
        if isinstance(compressor, str):
            cfg.codec = CodecSpec(name=compressor)
        else:
            try:
                spec = spec_of(compressor)
            except (TypeError, ValueError):
                return None
            cfg.codec = CodecSpec(name=spec["name"], options=spec["options"])

    if adaptive_config is not None:
        cfg.adaptive = AdaptiveSpec(
            enabled=adaptive_enabled,
            W=adaptive_config.W,
            sigma_fraction=adaptive_config.sigma_fraction,
            coefficient=float(adaptive_config.coefficient),
            initial_rel_eb=adaptive_config.initial_rel_eb,
            warmup_iterations=adaptive_config.warmup_iterations,
            eb_min=adaptive_config.eb_min,
            eb_max=adaptive_config.eb_max,
            min_nonzero_ratio=adaptive_config.min_nonzero_ratio,
        )
    else:
        cfg.adaptive.enabled = adaptive_enabled

    if storage is not None:
        if not isinstance(storage, ByteArena):
            return None
        cfg.storage.activations = "arena"
        if storage.budget_bytes is not None:
            cfg.storage.budget_bytes = int(storage.budget_bytes)

    if param_storage is not None:
        if isinstance(param_storage, ParamStore):
            arena = param_storage.storage
            codec = param_storage.codec
            if codec is not None:
                try:
                    spec = spec_of(codec)
                except (TypeError, ValueError):
                    return None
                cfg.storage.param_codec = CodecSpec(spec["name"], spec["options"])
            cfg.storage.param_dirty_tracking = param_storage.dirty_tracking
        elif isinstance(param_storage, ByteArena):
            arena = param_storage
        else:
            return None
        cfg.storage.params = "arena"
        if arena.budget_bytes is not None:
            cfg.storage.param_budget_bytes = int(arena.budget_bytes)

    if engine is not None:
        if isinstance(engine, str):
            cfg.engine = EngineSpec(kind=engine.lower())
        elif isinstance(engine, SyncEngine):
            cfg.engine = EngineSpec(kind="sync")
        elif isinstance(engine, AsyncEngine):
            cfg.engine = EngineSpec(
                kind="async",
                workers=engine.workers,
                prefetch_depth="auto" if engine.adaptive_prefetch else engine.prefetch_depth,
                max_pending=engine.max_pending,
                max_auto_depth=engine.max_auto_depth,
                unpack_depth=engine.unpack_depth,
            )
        else:
            return None

    # The engine block above rebuilds EngineSpec wholesale, so knobs the
    # spec hosts on behalf of other components apply afterwards.
    if isinstance(param_storage, ParamStore) and param_storage.bind_window_bytes:
        cfg.engine.bind_window_bytes = int(param_storage.bind_window_bytes)
    if compressor is not None and not isinstance(compressor, str):
        from repro.compression.szlike import SharedCodebookCache

        probe = compressor
        while True:
            cache = getattr(probe, "codebook_cache", None)
            if cache is not None:
                if isinstance(cache, SharedCodebookCache):
                    cfg.engine.shared_codebook_cache = True
                break
            inner = getattr(probe, "inner", None)
            if inner is None:
                break
            probe = inner

    if policy_table is not None:
        rules = getattr(policy_table, "source_rules", None)
        if rules is None:
            return None  # hand-built table: matchers aren't serializable
        cfg.rules = [dataclasses.replace(r) for r in rules]

    if optimizer is not None:
        spec = optimizer_spec_of(optimizer)
        if spec is None:
            return None
        cfg.optimizer = spec

    try:
        return cfg.validate()
    except ConfigError:
        return None
