"""The front door: ``build_session(network, config) -> Session``.

One call composes the whole stack the previous PRs grew — codec
registry, per-layer :class:`~repro.core.policy_table.PolicyTable`,
:class:`~repro.core.arena.ByteArena` activation storage,
:class:`~repro.core.param_store.ParamStore` out-of-core parameters,
sync/async :mod:`~repro.core.engine`, the Eq. 8/9 adaptive controller,
and the stage profiler — from one declarative
:class:`~repro.api.config.SessionConfig`, and hands back a
:class:`Session` that owns every resource behind a single
:meth:`~Session.close`.

    cfg = SessionConfig.from_json("run.json")
    with build_session(network, cfg) as session:
        session.train(batches(dataset, 32, 100, seed=1))
        print(session.tracker.overall_ratio)

Determinism contract: for the same network (same initial weights) and
the same batch stream, a session built from a config is bit-identical
to the equivalent hand-wired ``Trainer`` + ``CompressedTraining`` pair
— the shim-equivalence tests in ``tests/api`` pin this.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.api.config import ConfigError, PolicyRule, SessionConfig
from repro.core.policy_table import PolicyTable, ResolvedPolicy, compile_matcher

__all__ = ["Session", "build_session", "build_policy_table"]


def _apply_kernel_backend(codec, backend: str, where: str) -> None:
    """Route *backend* to the szlike kernels inside *codec*.

    :class:`~repro.compression.registry.ChunkedCodec` wrappers are
    unwrapped to their inner codec; codecs without a kernel backend
    (lossless, jpeg) silently ignore the setting.  An unavailable
    explicit backend (``"numba"`` without numba installed) surfaces as
    a :class:`ConfigError` naming the offending config location.
    """
    inner = getattr(codec, "inner", None)
    if inner is not None:
        codec = inner
    setter = getattr(codec, "set_kernel_backend", None)
    if setter is None:
        return
    try:
        setter(backend)
    except ValueError as exc:
        raise ConfigError(f"{where}: {exc}") from exc


def build_policy_table(rules: List[PolicyRule]) -> Optional[PolicyTable]:
    """Compile declarative :class:`PolicyRule` specs into a live
    :class:`PolicyTable` (codec instances built once per rule and shared
    by every layer the rule matches).  Returns ``None`` for no rules.

    The source rules are kept on the table (``table.source_rules``) so a
    session built from it can reproduce its declarative config.
    """
    if not rules:
        return None
    compiled: List[Tuple[object, ResolvedPolicy]] = []
    for i, rule in enumerate(rules):
        rule.validate(f"rules[{i}] (match={rule.match!r})")
        compiled.append(
            (
                compile_matcher(rule.match, rule.match_kind),
                ResolvedPolicy(
                    label=rule.label or f"rule{i}",
                    codec=rule.codec.build() if rule.codec is not None else None,
                    error_bound=rule.error_bound,
                    adaptive=rule.resolved_adaptive(),
                    storage=rule.storage,
                    initial_rel_eb=rule.initial_rel_eb,
                    eb_min=rule.eb_min,
                    eb_max=rule.eb_max,
                    arena_budget=rule.arena_budget,
                ),
            )
        )
    table = PolicyTable(compiled)
    table.source_rules = [r for r in rules]
    return table


class Session:
    """A fully-wired training session: one object, one ``close()``.

    Owns the trainer, the compression machinery (when
    ``compress_activations`` is on), the optional param store, engine,
    and profiler.  Also a context manager.
    """

    def __init__(self, network, optimizer, trainer, config, compressed=None):
        self.network = network
        self.optimizer = optimizer
        self.trainer = trainer
        #: the declarative config this session was built from
        self.config = config
        #: the underlying :class:`~repro.core.framework.CompressedTraining`
        #: (None when ``compress_activations=False``)
        self.compressed = compressed
        self._closed = False

    # -- config round-trip -------------------------------------------------
    @classmethod
    def from_json(cls, path, network, *, optimizer=None) -> "Session":
        """Build a session for *network* straight from a config file:
        ``Session.from_json("run.json", net)`` is
        ``build_session(net, SessionConfig.from_json("run.json"))``."""
        return build_session(
            network, SessionConfig.from_json(path), optimizer=optimizer
        )

    def capture(self) -> SessionConfig:
        """Re-serialize this live session to the :class:`SessionConfig`
        that builds it: ``build_session(net, session.capture())`` is the
        same run (including distributed knobs).  The returned config is
        an independent copy taken through the JSON wire format, so
        ``capture().to_dict() == config.to_dict()`` is an identity."""
        return SessionConfig.from_json(self.config.to_json())

    # -- delegation --------------------------------------------------------
    def train(self, batch_iter, max_iterations: Optional[int] = None):
        return self.trainer.train(batch_iter, max_iterations)

    def train_step(self, images, labels):
        return self.trainer.train_step(images, labels)

    def evaluate(self, images, labels, batch_size: int = 64) -> float:
        return self.trainer.evaluate(images, labels, batch_size)

    @property
    def history(self):
        return self.trainer.history

    @property
    def profiler(self):
        return self.trainer.profiler

    @property
    def tracker(self):
        return self.compressed.tracker if self.compressed is not None else None

    @property
    def param_store(self):
        if self.compressed is not None and self.compressed.param_store is not None:
            return self.compressed.param_store
        return self.trainer.param_store

    @property
    def engine(self):
        return self.compressed.engine if self.compressed is not None else None

    @property
    def policy_table(self):
        return self.compressed.ctx.policy_table if self.compressed is not None else None

    @property
    def error_bounds(self):
        return self.compressed.error_bounds if self.compressed is not None else {}

    @property
    def compression_ratios(self):
        return self.compressed.compression_ratios if self.compressed is not None else {}

    @property
    def sanitizer_report(self) -> dict:
        """Process-wide sanitizer counters (see :mod:`repro.core.sanitizer`)."""
        from repro.core import sanitizer

        return sanitizer.report()

    @property
    def kernel_stats(self) -> dict:
        """Process-wide kernel-backend counters (probe outcome, auto
        fallbacks, runtime fallbacks — see :mod:`repro.kernels`) plus
        ``selected_backend``: the backend serving this session's codec
        (``None`` for codecs without kernel backends)."""
        from repro.kernels import kernel_stats

        stats = dict(kernel_stats())
        codec = (
            getattr(self.compressed.ctx, "compressor", None)
            if self.compressed is not None
            else None
        )
        codec = getattr(codec, "inner", codec)
        stats["selected_backend"] = getattr(codec, "kernel_backend_selected", None)
        return stats

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Tear everything down exactly once: flush in-flight packs,
        stop engine workers, restore out-of-core parameters, deactivate
        the profiler.  Idempotent — the second and later calls are
        no-ops (guarded here, and the trainer's close-hook chain is
        swap-on-close as a second line of defense)."""
        if self._closed:
            return
        self._closed = True
        self.trainer.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "compressed" if self.compressed is not None else "plain"
        return f"Session({mode}, engine={self.config.engine.kind!r}, iter={self.trainer.iteration})"


def build_session(
    network, config: SessionConfig, *, optimizer=None, storage=None
) -> Session:
    """Build a live :class:`Session` for *network* from *config*.

    Parameters
    ----------
    network:
        Any :class:`~repro.nn.layers.base.Layer` tree (its compressible
        conv layers get the saved-tensor treatment).
    config:
        A validated :class:`SessionConfig` (``validate()`` is called
        again here; errors name the offending section).
    optimizer:
        Optional pre-built optimizer; by default one is constructed from
        ``config.optimizer`` over ``network.parameters()``.
    storage:
        Optional pre-built activation :class:`~repro.core.arena.ByteArena`
        used instead of constructing one from ``config.storage`` — the
        injection point the multi-tenant server uses to hand every
        tenant a member arena of one shared
        :class:`~repro.core.arena.ArenaPool`.  Only honored when
        ``config.storage.activations == "arena"``; the caller keeps
        ownership (the session does not close it).
    """
    from repro.core.arena import ByteArena
    from repro.core.framework import CompressedTraining
    from repro.core.param_store import ParamStore
    from repro.nn.trainer import Trainer
    from repro.utils.deprecation import building_session

    if not isinstance(config, SessionConfig):
        raise ConfigError(
            f"build_session expects a SessionConfig "
            f"(got {type(config).__name__}); parse files with "
            f"SessionConfig.from_json(path)"
        )
    config.validate()

    if config.distributed.world_size > 1:
        # N rank processes behind the same Session surface; the import
        # is deferred so single-process sessions never pay for it.
        from repro.distributed.session import build_distributed_session

        return build_distributed_session(network, config, optimizer=optimizer)

    if config.sanitizer.enabled:
        # Turn the sanitizer on BEFORE constructing anything: arenas,
        # scratch pools, codebook caches, and engines instrument
        # themselves at construction time.  Process-wide and sticky
        # (see SanitizerSpec) — the same switch REPRO_SANITIZE=1 flips.
        from repro.core import sanitizer

        sanitizer.enable(
            poison=config.sanitizer.poison,
            lock_order=config.sanitizer.lock_order,
            trap_double_release=config.sanitizer.trap_double_release,
        )

    if optimizer is None:
        optimizer = config.optimizer.build(network.parameters())

    if config.storage.activations != "arena":
        storage = None
    elif storage is None:
        storage = ByteArena(
            budget_bytes=config.storage.budget_bytes,
            spill_dir=config.storage.spill_dir,
        )

    param_storage = None
    if config.storage.params == "arena":
        param_storage = ParamStore(
            budget_bytes=config.storage.param_budget_bytes,
            codec=(
                config.storage.param_codec.build()
                if config.storage.param_codec is not None
                else None
            ),
            dirty_tracking=config.storage.param_dirty_tracking,
            spill_dir=config.storage.spill_dir,
            bind_window_bytes=config.engine.bind_window_bytes,
        )

    profiler = True if config.profiler.enabled else None

    if not config.compress_activations:
        with building_session():
            trainer = Trainer(
                network, optimizer, param_store=param_storage, profiler=profiler
            )
        return Session(network, optimizer, trainer, config)

    table = build_policy_table(config.rules)
    if storage is not None and table is not None:
        for pol in table.rules:
            if pol.arena_budget is not None:
                storage.set_group_budget(pol.label, pol.arena_budget)

    compressor = config.codec.build()
    engine_backend = config.engine.kernel_backend
    if "kernel_backend" not in config.codec.options:
        # The engine-level default applies unless the codec spec pins
        # its own backend explicitly.
        _apply_kernel_backend(compressor, engine_backend, "engine.kernel_backend")
    if table is not None:
        for rule, pol in zip(table.source_rules, table.rules):
            backend = rule.kernel_backend
            if backend is None and pol.codec is not None:
                opts = rule.codec.options if rule.codec is not None else {}
                if "kernel_backend" not in opts:
                    backend = engine_backend
            if backend is None:
                continue
            if pol.codec is None:
                # A per-layer backend override without a per-rule codec:
                # the rule gets its own clone of the session codec so the
                # override doesn't leak to unmatched layers.
                pol.codec = config.codec.build()
            _apply_kernel_backend(
                pol.codec, backend, f"rule (match={rule.match!r}).kernel_backend"
            )
    if config.engine.shared_codebook_cache:
        from repro.compression.registry import ensure_shared_codebook_cache

        ensure_shared_codebook_cache(compressor)
        if table is not None:
            for pol in table.rules:
                if pol.codec is not None:
                    ensure_shared_codebook_cache(pol.codec)

    with building_session():
        trainer = Trainer(network, optimizer, profiler=profiler)
        compressed = CompressedTraining(
            network,
            optimizer,
            compressor=compressor,
            config=config.adaptive.to_adaptive_config(),
            storage=storage,
            param_storage=param_storage,
            engine=config.engine.build(),
            policy_table=table,
            adaptive=config.adaptive.enabled,
        ).attach(trainer)
    return Session(network, optimizer, trainer, config, compressed=compressed)
