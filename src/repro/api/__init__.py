"""repro.api — the declarative front door to the framework.

Everything the stack can do — registry codecs, per-layer policy rules,
byte-arena activation storage, out-of-core parameters, sync/async
engines, the adaptive error-bound controller, stage profiling — is
driven from one serializable :class:`SessionConfig`:

    from repro.api import SessionConfig, PolicyRule, CodecSpec, build_session

    cfg = SessionConfig(
        rules=[PolicyRule(match="l0", codec=CodecSpec("lossless")),
               PolicyRule(match="l[24]", error_bound=1e-4)],
        engine=EngineSpec(kind="async"),
    )
    with build_session(network, cfg) as session:
        session.train(batches(dataset, 32, 100, seed=1))

``cfg.to_json(path)`` / ``SessionConfig.from_json(path)`` round-trip
the whole tree, so a committed JSON file reproduces a run bit-for-bit.
The legacy constructors (``CompressedTraining``, ``Trainer``) remain as
shims over the same machinery and expose their config twin via
``session_config``.
"""

from repro.api.config import (
    AdaptiveSpec,
    CodecSpec,
    ConfigError,
    DistributedSpec,
    EngineSpec,
    OptimizerSpec,
    PolicyRule,
    ProfilerSpec,
    SessionConfig,
    StorageSpec,
    capture_session_config,
    optimizer_spec_of,
)
from repro.api.session import Session, build_policy_table, build_session

__all__ = [
    "AdaptiveSpec",
    "CodecSpec",
    "ConfigError",
    "DistributedSpec",
    "EngineSpec",
    "OptimizerSpec",
    "PolicyRule",
    "ProfilerSpec",
    "SessionConfig",
    "StorageSpec",
    "capture_session_config",
    "optimizer_spec_of",
    "Session",
    "build_policy_table",
    "build_session",
]
