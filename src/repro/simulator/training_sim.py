"""Training-throughput simulation (Figure 11 and the Section 5.4 analysis).

Combines the roofline cost model, the memory-capacity constraint, the
compression overhead model, and the multi-node all-reduce model to
answer the paper's performance questions:

* images/s vs batch size, single GPU and multi-node (Figure 11);
* the largest batch that fits with / without activation compression —
  the mechanism by which saved memory becomes speedup;
* the overhead decomposition of each memory policy (compression,
  recomputation, migration; Section 5.4's ~17 % / ~7 % numbers and the
  Layrub comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.models.registry import full_model_specs
from repro.simulator.costmodel import (
    LayerCost,
    activation_bytes,
    conv_activation_bytes_of,
    gradient_bytes,
    iteration_time,
    model_costs,
)
from repro.simulator.gpu import DeviceSpec, V100
from repro.simulator.interconnect import IB_EDR, Link, PCIE3_X16, migration_time, ring_allreduce_time

__all__ = ["MemoryPolicyModel", "TrainingSimulator", "SimResult"]

#: cuSZ compression + decompression throughput on V100 (Tian et al. 2020
#: report tens of GB/s end to end; we use a conservative combined figure).
CUSZ_THROUGHPUT = 80e9  # bytes/s, one direction


@dataclass(frozen=True)
class MemoryPolicyModel:
    """How a policy transforms activation footprint and adds time.

    ``ratio`` divides the saved-activation bytes; per-iteration overhead
    is ``act_bytes/compress_bw + act_bytes/decompress_bw`` (codecs),
    ``recompute_fraction * forward_time`` (recomputation), or a
    migration round trip over ``link``.
    """

    name: str
    ratio: float = 1.0
    compress_bw: Optional[float] = None
    decompress_bw: Optional[float] = None
    recompute_fraction: float = 0.0
    link: Optional[Link] = None

    def overhead_s(self, act_bytes: float, fwd_time: float) -> float:
        t = 0.0
        if self.compress_bw:
            t += act_bytes / self.compress_bw
        if self.decompress_bw:
            t += act_bytes / self.decompress_bw
        if self.recompute_fraction:
            t += self.recompute_fraction * fwd_time
        if self.link is not None:
            t += migration_time(act_bytes, self.link) + migration_time(
                act_bytes / self.ratio if self.ratio > 1 else act_bytes, self.link
            )
        return t

    def stored_bytes(self, act_bytes: float) -> float:
        if self.link is not None:
            return act_bytes * 0.10  # migrated out; pinned staging remains
        return act_bytes / self.ratio


BASELINE = MemoryPolicyModel("baseline")


def our_policy(ratio: float = 11.0) -> MemoryPolicyModel:
    """The paper's framework: cuSZ-speed codec at the measured ratio."""
    return MemoryPolicyModel(
        "ours", ratio=ratio, compress_bw=CUSZ_THROUGHPUT, decompress_bw=CUSZ_THROUGHPUT
    )


def layrub_like() -> MemoryPolicyModel:
    """Layrub-class migration (the paper cites 2.4x memory, 24.1 % cost)."""
    return MemoryPolicyModel("layrub", ratio=2.4, link=PCIE3_X16)


@dataclass
class SimResult:
    batch: int
    fits: bool
    images_per_s: float
    iteration_s: float
    activation_gb: float
    stored_gb: float


class TrainingSimulator:
    """Throughput/memory simulator for one model on one device."""

    def __init__(
        self,
        model: str = "resnet50",
        device: DeviceSpec = V100,
        image_size: int = 224,
        policy: MemoryPolicyModel = BASELINE,
    ):
        self.model = model
        self.specs = full_model_specs(model)
        self.device = device
        self.image_size = image_size
        self.policy = policy

    def _costs(self, batch: int) -> Sequence[LayerCost]:
        return model_costs(self.specs, batch, self.device, self.image_size)

    def simulate(self, batch: int, workers: int = 1, link: Link = IB_EDR) -> SimResult:
        """Simulate one iteration at *batch* per worker."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        costs = self._costs(batch)
        act = float(activation_bytes(costs))
        conv_act = float(conv_activation_bytes_of(costs))
        other_act = act - conv_act
        weights = float(gradient_bytes(costs))
        fwd_time = sum(c.forward_s for c in costs)
        t = iteration_time(costs) + self.device.iteration_overhead
        # Policies act on the conv activations only (the paper's scope);
        # ReLU masks, BN statistics etc. stay resident uncompressed.
        t += self.policy.overhead_s(conv_act, fwd_time)
        if workers > 1:
            t += ring_allreduce_time(weights, workers, link)
        stored = self.policy.stored_bytes(conv_act) + other_act
        # Weights + gradients + momentum + workspace alongside activations.
        resident = stored + 3.0 * weights + 0.5e9
        fits = resident <= self.device.mem_capacity
        images = batch * workers / t
        return SimResult(
            batch=batch,
            fits=fits,
            images_per_s=images,
            iteration_s=t,
            activation_gb=act / 1024**3,
            stored_gb=stored / 1024**3,
        )

    def max_batch(self, upper: int = 4096) -> int:
        """Largest per-worker batch that fits in device memory."""
        best = 0
        lo, hi = 1, upper
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.simulate(mid).fits:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def sweep(self, batches: Sequence[int], workers: int = 1) -> Dict[int, SimResult]:
        return {b: self.simulate(b, workers=workers) for b in batches}
