"""Interconnect models: PCIe/NVLink migration and ring all-reduce.

Migration approaches (vDNN, GeePS — Section 2.1) are bounded by
host-device bandwidth; data-parallel multi-node training is bounded by
the all-reduce of the gradient each iteration.  Both are simple
bandwidth/latency models, which is all the paper's comparisons rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Link",
    "PCIE3_X16",
    "NVLINK2",
    "IB_EDR",
    "LOCAL_PIPE",
    "migration_time",
    "ring_allreduce_time",
    "star_allreduce_time",
]


@dataclass(frozen=True)
class Link:
    name: str
    bandwidth: float  # bytes/s, effective unidirectional
    latency: float  # s per transfer


PCIE3_X16 = Link("PCIe 3.0 x16", 12e9, 5e-6)
NVLINK2 = Link("NVLink 2.0", 75e9, 2e-6)
IB_EDR = Link("InfiniBand EDR", 11e9, 2e-6)
#: a same-host multiprocessing pipe — what repro.distributed's
#: coordinator-star exchange actually runs over.  Effective bandwidth is
#: dominated by pickling + two kernel copies (measured on the DDP
#: bench against the real exchange; bench_ddp records the
#: measured-vs-modeled ratio), latency by the syscall round-trip.
LOCAL_PIPE = Link("local pipe", 1.2e9, 30e-6)


def migration_time(nbytes: float, link: Link) -> float:
    """One-way transfer time for offloading *nbytes* to the host."""
    if nbytes < 0:
        raise ValueError("byte count must be non-negative")
    return link.latency + nbytes / link.bandwidth


def ring_allreduce_time(nbytes: float, workers: int, link: Link) -> float:
    """Ring all-reduce of an *nbytes* buffer across *workers* ranks.

    Classic cost: ``2 * (p-1)/p * nbytes / bandwidth`` plus per-step
    latency; exact for bandwidth-dominated large gradients.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if workers == 1:
        return 0.0
    p = workers
    steps = 2 * (p - 1)
    return steps * link.latency + 2 * (p - 1) / p * nbytes / link.bandwidth


def star_allreduce_time(
    uplink_nbytes: float,
    downlink_nbytes: float,
    workers: int,
    link: Link,
    reduce_seconds: float = 0.0,
) -> float:
    """Coordinator-star all-reduce: every rank ships *uplink_nbytes* to
    one coordinator, which reduces and broadcasts *downlink_nbytes* back
    — the topology :mod:`repro.distributed` implements.

    The coordinator serializes both legs over its one link, so the cost
    is ``p`` uplink transfers plus ``p`` downlink transfers plus the
    reduction itself.  Compression changes the byte counts per leg
    independently (lossy uplink, lossless broadcast), which is why the
    two are separate parameters.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    for nbytes in (uplink_nbytes, downlink_nbytes):
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
    if reduce_seconds < 0:
        raise ValueError("reduce time must be non-negative")
    if workers == 1:
        return 0.0
    p = workers
    per_leg = 2 * p * link.latency
    wire = p * (uplink_nbytes + downlink_nbytes) / link.bandwidth
    return per_leg + wire + reduce_seconds
