"""Device specifications for the performance model.

The paper's testbed is TACC Longhorn: 4x NVIDIA Tesla V100 per node.
These specs drive a roofline-style cost model; absolute numbers are
published vendor figures, and the derating factor captures achieved-vs-
peak efficiency typical for cuDNN convolution workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "V100", "V100_32GB"]


@dataclass(frozen=True)
class DeviceSpec:
    """A training accelerator for the cost model."""

    name: str
    peak_flops: float  # FP32 FLOP/s (or tensor-core effective)
    mem_bandwidth: float  # bytes/s
    mem_capacity: float  # bytes
    #: fraction of peak a real conv workload sustains
    derate: float = 0.55
    #: fixed per-kernel-launch overhead (s); the reason small batches
    #: underutilize the device
    launch_overhead: float = 8e-6
    #: fixed host-side cost per training iteration (input pipeline,
    #: optimizer bookkeeping, framework dispatch) — the other reason
    #: throughput keeps rising with batch size (Figure 11)
    iteration_overhead: float = 0.03

    def effective_flops(self) -> float:
        return self.peak_flops * self.derate


#: Tesla V100 SXM2 16 GB (Longhorn's configuration).
V100 = DeviceSpec(
    name="V100-16GB",
    peak_flops=15.7e12,
    mem_bandwidth=900e9,
    mem_capacity=16 * 1024**3,
)

#: The 32 GB variant the paper's introduction cites.
V100_32GB = DeviceSpec(
    name="V100-32GB",
    peak_flops=15.7e12,
    mem_bandwidth=900e9,
    mem_capacity=32 * 1024**3,
)
