"""Roofline-style per-layer cost model over architecture specs.

Each layer's forward time is ``max(flops / effective_flops,
bytes_moved / mem_bandwidth) + launch_overhead``; backward costs 2x the
forward FLOPs for conv/linear (two GEMMs: dW and dX).  This reproduces
the qualitative throughput behaviour the paper's Figure 11 relies on:
fixed per-layer overheads amortize with batch size until the device
saturates, so images/s rises with N and plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.models.specs import walk_shapes
from repro.simulator.gpu import DeviceSpec

__all__ = ["LayerCost", "model_costs", "iteration_time", "activation_bytes", "gradient_bytes"]


@dataclass
class LayerCost:
    kind: str
    forward_s: float
    backward_s: float
    saved_bytes: int
    weight_bytes: int
    is_conv: bool = False


def _layer_time(flops: float, bytes_moved: float, device: DeviceSpec) -> float:
    compute = flops / device.effective_flops()
    memory = bytes_moved / device.mem_bandwidth
    return max(compute, memory) + device.launch_overhead


def model_costs(specs: Sequence, batch: int, device: DeviceSpec, image_size: int = 224) -> List[LayerCost]:
    """Per-layer forward/backward costs for *specs* at *batch*."""
    reports = walk_shapes(specs, (batch, 3, image_size, image_size))
    costs: List[LayerCost] = []
    for r in reports:
        in_bytes = 4.0 * _numel(r.in_shape)
        out_bytes = 4.0 * _numel(r.out_shape)
        fwd = _layer_time(r.flops, in_bytes + out_bytes + r.weight_bytes, device)
        bwd_flops = 2.0 * r.flops if r.kind in ("conv", "linear") else r.flops
        bwd = _layer_time(bwd_flops, in_bytes + out_bytes + 2 * r.weight_bytes, device)
        costs.append(LayerCost(r.kind, fwd, bwd, r.saved_bytes, r.weight_bytes, r.is_conv))
    return costs


def iteration_time(costs: Sequence[LayerCost]) -> float:
    """One training iteration (forward + backward + weight update)."""
    fwd = sum(c.forward_s for c in costs)
    bwd = sum(c.backward_s for c in costs)
    update = sum(c.weight_bytes for c in costs) * 3.0 / 900e9  # read w,v write w
    return fwd + bwd + update


def activation_bytes(costs: Sequence[LayerCost]) -> int:
    """Peak saved-activation footprint (all layers live at end of fwd)."""
    return int(sum(c.saved_bytes for c in costs))


def conv_activation_bytes_of(costs: Sequence[LayerCost]) -> int:
    """Saved bytes of conv layers only — the compressible fraction."""
    return int(sum(c.saved_bytes for c in costs if c.is_conv))


def gradient_bytes(costs: Sequence[LayerCost]) -> int:
    return int(sum(c.weight_bytes for c in costs))


def _numel(shape) -> float:
    n = 1.0
    for d in shape:
        n *= d
    return n
