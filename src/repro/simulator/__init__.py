"""Performance/memory simulator substrate (Figure 11, Section 5.4)."""

from repro.simulator.gpu import DeviceSpec, V100, V100_32GB
from repro.simulator.interconnect import (
    IB_EDR,
    LOCAL_PIPE,
    Link,
    NVLINK2,
    PCIE3_X16,
    migration_time,
    ring_allreduce_time,
    star_allreduce_time,
)
from repro.simulator.costmodel import (
    LayerCost,
    activation_bytes,
    conv_activation_bytes_of,
    gradient_bytes,
    iteration_time,
    model_costs,
)
from repro.simulator.training_sim import (
    BASELINE,
    CUSZ_THROUGHPUT,
    MemoryPolicyModel,
    SimResult,
    TrainingSimulator,
    layrub_like,
    our_policy,
)

__all__ = [
    "DeviceSpec",
    "V100",
    "V100_32GB",
    "IB_EDR",
    "LOCAL_PIPE",
    "Link",
    "NVLINK2",
    "PCIE3_X16",
    "migration_time",
    "ring_allreduce_time",
    "star_allreduce_time",
    "LayerCost",
    "activation_bytes",
    "conv_activation_bytes_of",
    "gradient_bytes",
    "iteration_time",
    "model_costs",
    "BASELINE",
    "CUSZ_THROUGHPUT",
    "MemoryPolicyModel",
    "SimResult",
    "TrainingSimulator",
    "layrub_like",
    "our_policy",
]
