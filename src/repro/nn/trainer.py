"""Training loop with iteration callbacks and metric history.

The trainer is deliberately framework-shaped (Figure 1 of the paper):
each iteration runs forward (activations saved through each layer's
saved-tensor context), loss, backward (saved tensors consumed), then the
optimizer step.  Callbacks fire after backward and before the weight
update, which is where the paper's framework collects gradients, loss
statistics, and momentum for its W-interval parameter collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.loss import SoftmaxCrossEntropy
from repro.nn.optim import SGD

__all__ = ["IterationRecord", "TrainHistory", "Trainer"]


@dataclass
class IterationRecord:
    """Per-iteration measurements."""

    iteration: int
    loss: float
    accuracy: float
    lr: float
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainHistory:
    records: List[IterationRecord] = field(default_factory=list)

    def append(self, rec: IterationRecord) -> None:
        self.records.append(rec)

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records])

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([r.accuracy for r in self.records])

    def smoothed_accuracy(self, window: int = 20) -> np.ndarray:
        acc = self.accuracies
        if acc.size == 0:
            return acc
        w = min(window, acc.size)
        kernel = np.ones(w) / w
        return np.convolve(acc, kernel, mode="valid")


class Trainer:
    """Runs forward/backward/update iterations over a data source.

    Parameters
    ----------
    network, optimizer:
        The model (any :class:`~repro.nn.layers.base.Layer`) and its SGD
        optimizer.
    loss:
        Defaults to softmax cross-entropy.
    post_backward_hooks:
        Callables ``hook(trainer, record)`` invoked after backward with
        gradients still present — the paper framework's collection point.
    grad_transforms:
        Callables ``transform(trainer)`` applied to parameter gradients
        before the update (used for the Figure 9 error-injection study).
    close_hooks:
        Callables ``hook(trainer)`` run once by :meth:`close` — attached
        sessions register resource teardown here (e.g. the compression
        engine's worker pool).  The trainer is also a context manager:
        ``with Trainer(...) as tr: ...`` closes on exit.
    param_store:
        Optional :class:`~repro.core.param_store.ParamStore` — the
        trainer attaches it to (network, optimizer) so weights and
        optimizer slots live out-of-core, and registers its teardown
        (weights restored to residency) on :meth:`close`.  Sessions that
        manage their own store (``CompressedTraining(param_storage=...)``)
        don't pass one here.
    profiler:
        ``True`` or a :class:`~repro.utils.profiler.StageProfiler` turns
        on hot-path stage timing for the run: the codec's quantize /
        predict / encode / decode stages, byte-arena I/O, and async-engine
        waits accumulate into per-stage (seconds, calls) totals, plus a
        ``step`` stage for whole iterations.  The profiler is installed
        process-wide for the trainer's lifetime (deactivated by
        :meth:`close`) and exposed as ``trainer.profiler``; read it with
        ``trainer.profiler.snapshot()`` or ``.report_lines()``.

    .. note::
       The ``param_store`` / ``profiler`` knobs (and the compression
       session attached on top) are also expressible declaratively:
       :func:`repro.api.build_session` composes the same machinery from
       one serializable :class:`~repro.api.config.SessionConfig`, which
       is the preferred front door for new code.  A trainer built with
       these knobs exposes the equivalent config as
       :attr:`session_config`, and the two paths are equivalence-tested
       bit-for-bit.
    """

    def __init__(
        self,
        network: Layer,
        optimizer: SGD,
        loss: Optional[SoftmaxCrossEntropy] = None,
        lr_schedule=None,
        param_store=None,
        profiler=None,
    ):
        from repro.utils.profiler import StageProfiler

        if param_store is not None or profiler is not None:
            from repro.utils.deprecation import warn_legacy

            hints = []
            if param_store is not None:
                hints.append(
                    "\n  param_store=... -> config.storage.params = 'arena' "
                    "(+ param_budget_bytes / param_codec)"
                )
            if profiler is not None:
                hints.append("\n  profiler=True -> config.profiler.enabled = True")
            warn_legacy(
                "Trainer's session-level knobs are a legacy shim; build the "
                "equivalent session with repro.api.build_session(network, "
                "SessionConfig(compress_activations=False, ...))."
                + "".join(hints)
            )
        self.network = network
        self.optimizer = optimizer
        self.loss = loss or SoftmaxCrossEntropy()
        self.lr_schedule = lr_schedule
        self.param_store = param_store
        self.history = TrainHistory()
        self.post_backward_hooks: List[Callable] = []
        self.grad_transforms: List[Callable] = []
        self.close_hooks: List[Callable] = []
        self.iteration = 0
        #: mean |dlogits-propagated loss| of the latest iteration, exposed
        #: for parameter collection (the paper's L-bar is per conv layer;
        #: per-layer values come from the framework's layer taps).
        self.last_loss_value: float = float("nan")
        if profiler is True:
            profiler = StageProfiler()
        self.profiler: Optional[StageProfiler] = profiler or None
        if self.profiler is not None:
            self.profiler.activate()
            self.close_hooks.append(lambda tr: tr.profiler.deactivate())
        if param_store is not None:
            param_store.attach(network, optimizer)
            self.close_hooks.append(lambda tr: param_store.close())

    @property
    def session_config(self):
        """The :class:`~repro.api.config.SessionConfig` equivalent to
        this bare trainer (``compress_activations=False``, plus any
        param store / profiler knobs), or ``None`` when a knob cannot be
        described declaratively.  ``build_session(net,
        trainer.session_config)`` reproduces the trainer bit-for-bit."""
        from repro.api.config import capture_session_config

        cfg = capture_session_config(
            param_storage=self.param_store, optimizer=self.optimizer
        )
        if cfg is None:
            return None
        cfg.compress_activations = False
        cfg.profiler.enabled = self.profiler is not None
        return cfg

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> IterationRecord:
        """One forward/backward/update iteration; returns its record."""
        if self.profiler is not None:
            with self.profiler.stage("step"):
                return self._train_step(images, labels)
        return self._train_step(images, labels)

    def _train_step(self, images: np.ndarray, labels: np.ndarray) -> IterationRecord:
        self.network.train(True)
        self.optimizer.zero_grad()
        logits = self.network.forward(images)
        loss_value, dlogits = self.loss.forward(logits, labels)
        acc = self.loss.accuracy(logits, labels)
        self.network.backward(dlogits)
        self.last_loss_value = loss_value

        record = IterationRecord(
            iteration=self.iteration,
            loss=loss_value,
            accuracy=acc,
            lr=self.optimizer.lr,
        )
        for hook in self.post_backward_hooks:
            hook(self, record)
        for transform in self.grad_transforms:
            transform(self)
        self.optimizer.step()
        if self.lr_schedule is not None:
            self.lr_schedule.step()
        self.history.append(record)
        self.iteration += 1
        return record

    def train(self, batch_iter, max_iterations: Optional[int] = None) -> TrainHistory:
        """Consume batches from *batch_iter* (optionally capped)."""
        for i, (images, labels) in enumerate(batch_iter):
            if max_iterations is not None and i >= max_iterations:
                break
            self.train_step(images, labels)
        return self.history

    def close(self) -> None:
        """Run registered close hooks exactly once (idempotent).

        Attached sessions use this to stop worker pools and flush
        engines; training after ``close`` is undefined for them."""
        hooks, self.close_hooks = self.close_hooks, []
        for hook in hooks:
            hook(self)

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def evaluate(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
        """Top-1 accuracy on a held-out set (eval mode, no saved tensors)."""
        self.network.train(False)
        correct = 0
        for start in range(0, images.shape[0], batch_size):
            sl = slice(start, start + batch_size)
            logits = self.network.forward(images[sl])
            correct += int((logits.argmax(axis=1) == labels[sl]).sum())
        self.network.train(True)
        return correct / images.shape[0]
