"""Synthetic image-classification datasets (the ImageNet stand-in).

The paper trains on ImageNet-2012; on CPU we need a dataset whose scale
is controllable while still exercising a real optimization trajectory
(loss decreases, accuracy rises, gradients and activations have realistic
sparsity).  Samples are class-conditional smooth spatial templates mixed
with localized "parts" and Gaussian pixel noise — enough structure for a
small CNN to separate, hard enough that training takes many iterations.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["SyntheticImageDataset", "batches"]


def _smooth(rng: np.random.Generator, channels: int, size: int, cutoff: int) -> np.ndarray:
    """Band-limited random field via low-frequency Fourier synthesis."""
    freq = np.zeros((channels, size, size), dtype=np.complex128)
    k = min(cutoff, size // 2)
    block = rng.standard_normal((channels, k, k)) + 1j * rng.standard_normal((channels, k, k))
    freq[:, :k, :k] = block
    field = np.fft.ifft2(freq).real
    field /= np.abs(field).max() + 1e-12
    return field.astype(np.float32)


class SyntheticImageDataset:
    """Deterministic synthetic dataset: ``(N, C, H, W)`` images + labels.

    Parameters
    ----------
    num_classes, image_size, channels:
        Geometry of the task.
    signal:
        Template amplitude relative to unit pixel noise; lower is harder.
    parts:
        Number of localized class-specific blobs added per image.
    """

    def __init__(
        self,
        num_classes: int = 8,
        image_size: int = 32,
        channels: int = 3,
        signal: float = 1.5,
        parts: int = 3,
        seed: int = 1234,
    ):
        if num_classes < 2:
            raise ValueError("need at least 2 classes")
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.signal = signal
        self.parts = parts
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.templates = np.stack(
            [_smooth(rng, channels, image_size, max(3, image_size // 8)) for _ in range(num_classes)]
        )
        # Class-specific part locations (row, col) and sign.
        self.part_loc = rng.integers(2, max(3, image_size - 6), size=(num_classes, parts, 2))
        self.part_sign = rng.choice([-1.0, 1.0], size=(num_classes, parts)).astype(np.float32)

    def sample(self, batch_size: int, rng=None) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a batch ``(images, labels)``; images are float32."""
        rng = ensure_rng(rng)
        labels = rng.integers(0, self.num_classes, size=batch_size)
        noise = rng.standard_normal(
            (batch_size, self.channels, self.image_size, self.image_size)
        ).astype(np.float32)
        images = noise + self.signal * self.templates[labels]
        # Stamp localized parts (4x4 blobs) per class.
        for p in range(self.parts):
            locs = self.part_loc[labels, p]
            signs = self.part_sign[labels, p]
            for b in range(batch_size):
                r, c = locs[b]
                images[b, :, r : r + 4, c : c + 4] += 2.0 * self.signal * signs[b]
        return images, labels.astype(np.int64)

    def fixed_eval_set(self, size: int, seed: int = 999) -> Tuple[np.ndarray, np.ndarray]:
        """A deterministic held-out evaluation split."""
        return self.sample(size, rng=np.random.default_rng(self.seed * 31 + seed))


def batches(
    dataset: SyntheticImageDataset, batch_size: int, num_batches: int, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield *num_batches* freshly sampled batches (infinite-data regime)."""
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        yield dataset.sample(batch_size, rng=rng)
