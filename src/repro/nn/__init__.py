"""NumPy DNN training substrate (layers, containers, optimizer, trainer)."""

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2D,
    Parameter,
    ReLU,
    SavedTensorContext,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)
from repro.nn.network import Residual, Sequential, iter_layers, set_saved_ctx
from repro.nn.optim import SGD, ConstantLR, StepLR
from repro.nn.trainer import IterationRecord, Trainer, TrainHistory
from repro.nn.data import SyntheticImageDataset, batches
from repro.nn.snapshot import load_snapshot, save_snapshot

__all__ = [
    "AvgPool2D",
    "BatchNorm2D",
    "Conv2D",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "Layer",
    "Linear",
    "LocalResponseNorm",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "SavedTensorContext",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "Tanh",
    "Residual",
    "Sequential",
    "iter_layers",
    "set_saved_ctx",
    "SGD",
    "ConstantLR",
    "StepLR",
    "IterationRecord",
    "Trainer",
    "TrainHistory",
    "SyntheticImageDataset",
    "batches",
    "load_snapshot",
    "save_snapshot",
]
