"""Optimizers and learning-rate schedules.

SGD with momentum is first-class here because the paper's gradient
assessment (Eq. 8) budgets the acceptable gradient-error sigma against
the *average momentum magnitude* — the optimizer therefore exposes its
momentum buffers for the framework to inspect.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.layers.base import Parameter

__all__ = ["SGD", "StepLR", "ConstantLR"]


class SGD:
    """SGD with classical momentum and decoupled L2 weight decay.

    update: ``v = mu * v + g + wd * w``;  ``w -= lr * v``
    (Caffe/TensorFlow convention used by the paper's experiments).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.velocity: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.params
        }
        self.iteration = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v = self.velocity[id(p)]
            v *= self.momentum
            v += g
            p.data -= self.lr * v
        self.iteration += 1

    # -- introspection used by the paper's framework -----------------------
    def momentum_buffer(self, p: Parameter) -> np.ndarray:
        return self.velocity[id(p)]

    def average_momentum_magnitude(self) -> float:
        """Mean |v| across all momentum entries (Eq. 8's M_average)."""
        total = 0.0
        count = 0
        for p in self.params:
            v = self.velocity[id(p)]
            total += float(np.abs(v).sum())
            count += v.size
        return total / count if count else 0.0

    def average_gradient_magnitude(self) -> float:
        """Mean |g| across all parameters (Figure 9's G-bar)."""
        total = 0.0
        count = 0
        for p in self.params:
            total += float(np.abs(p.grad).sum())
            count += p.grad.size
        return total / count if count else 0.0


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer

    def step(self) -> float:
        return self.optimizer.lr


class StepLR:
    """Multiply the LR by *gamma* every *step_size* optimizer steps."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> float:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
