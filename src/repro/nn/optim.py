"""Optimizers, slot-based state, and learning-rate schedules.

Optimizer state (SGD momentum, Adam moments) lives in named per-parameter
**slots** behind a pluggable :class:`SlotState` backend rather than inside
the optimizer object.  The default :class:`ResidentSlots` keeps plain
arrays (the historical behaviour bit-for-bit); the out-of-core
:class:`~repro.core.param_store.ParamStore` supplies a backend that holds
every slot as arena-backed bytes and materializes it just-in-time around
each parameter's update.

SGD with momentum is first-class here because the paper's gradient
assessment (Eq. 8) budgets the acceptable gradient-error sigma against
the *average momentum magnitude* — the optimizer therefore exposes its
momentum-class slot for the framework to inspect
(:meth:`Optimizer.momentum_buffer`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Parameter

__all__ = [
    "Optimizer",
    "ResidentSlots",
    "SlotState",
    "SGD",
    "Adam",
    "StepLR",
    "ConstantLR",
]


class SlotState:
    """Where a parameter's optimizer slots physically live.

    The optimizer calls :meth:`update` once per parameter per step; the
    backend decides whether the yielded slot dict is the live storage
    (resident) or a just-in-time materialization that is written back on
    exit (store-backed).  :meth:`read` / :meth:`write` are the
    introspection path (gradient assessment, snapshots).
    """

    def init(self, param: Parameter, slots: Dict[str, np.ndarray]) -> None:
        """Adopt freshly initialized (or migrated) slot arrays for *param*."""
        raise NotImplementedError

    @contextmanager
    def update(self, param: Parameter) -> Iterator[Dict[str, np.ndarray]]:
        """Yield *param*'s slots (and its materialized weights) for one
        in-place update; persist any mutation on exit."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read(self, param: Parameter, slot: str) -> np.ndarray:
        """Current value of one slot (live array or a fresh copy)."""
        raise NotImplementedError

    def write(self, param: Parameter, slot: str, value: np.ndarray) -> None:
        """Overwrite one slot's value."""
        raise NotImplementedError

    def drop(self, param: Parameter) -> Dict[str, np.ndarray]:
        """Remove and return *param*'s slot arrays (state migration)."""
        raise NotImplementedError


class ResidentSlots(SlotState):
    """Default backend: slots are plain resident NumPy arrays."""

    def __init__(self) -> None:
        self._slots: Dict[int, Dict[str, np.ndarray]] = {}

    def init(self, param: Parameter, slots: Dict[str, np.ndarray]) -> None:
        self._slots[id(param)] = slots

    @contextmanager
    def update(self, param: Parameter) -> Iterator[Dict[str, np.ndarray]]:
        # The live dict: in-place mutation *is* the persistence.
        yield self._slots[id(param)]

    def read(self, param: Parameter, slot: str) -> np.ndarray:
        return self._slots[id(param)][slot]

    def write(self, param: Parameter, slot: str, value: np.ndarray) -> None:
        self._slots[id(param)][slot][...] = value

    def drop(self, param: Parameter) -> Dict[str, np.ndarray]:
        return self._slots.pop(id(param))


class Optimizer:
    """Base: slot-based parameter updates over a pluggable state backend.

    Subclasses declare ``slot_names`` and implement :meth:`apply_update`
    (pure in-place math over ``param.data`` / ``param.grad`` / the slot
    arrays).  :meth:`step` fetches each parameter's slots from the
    backend, applies the update, and lets the backend persist the result
    — which is what allows optimizer state to live out-of-core.
    """

    #: names of the per-parameter state arrays this optimizer keeps
    slot_names: Tuple[str, ...] = ()
    #: the slot the paper's gradient assessment reads as "momentum"
    momentum_slot: str = ""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.iteration = 0
        self.state: SlotState = ResidentSlots()
        for p in self.params:
            self.state.init(p, self.init_slots(p))

    # -- subclass interface ------------------------------------------------
    def init_slots(self, param: Parameter) -> Dict[str, np.ndarray]:
        """Fresh (zero) slot arrays for *param*."""
        return {name: np.zeros_like(param.data) for name in self.slot_names}

    def apply_update(self, param: Parameter, slots: Dict[str, np.ndarray]) -> None:
        """Mutate ``param.data`` (and *slots*) in place for one step."""
        raise NotImplementedError

    # -- the step ----------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p in self.params:
            with self.state.update(p) as slots:
                self.apply_update(p, slots)
        self.iteration += 1

    # -- state backend plumbing --------------------------------------------
    def use_slot_state(self, state: SlotState) -> None:
        """Swap the slot backend, migrating every parameter's current
        slot arrays (accumulated momentum survives the move)."""
        for p in self.params:
            state.init(p, self.state.drop(p))
        self.state = state

    def read_slot(self, param: Parameter, slot: str) -> np.ndarray:
        return self.state.read(param, slot)

    def write_slot(self, param: Parameter, slot: str, value: np.ndarray) -> None:
        self.state.write(param, slot, value)

    # -- introspection used by the paper's framework -----------------------
    def momentum_buffer(self, p: Parameter) -> np.ndarray:
        """The momentum-class slot (live array under resident slots; a
        materialized copy under a store backend — use :meth:`write_slot`
        to persist mutations)."""
        return self.state.read(p, self.momentum_slot)

    def average_momentum_magnitude(self) -> float:
        """Mean |momentum| across all entries (Eq. 8's M_average)."""
        total = 0.0
        count = 0
        for p in self.params:
            v = self.state.read(p, self.momentum_slot)
            total += float(np.abs(v).sum())
            count += v.size
        return total / count if count else 0.0

    def average_gradient_magnitude(self) -> float:
        """Mean |g| across all parameters (Figure 9's G-bar)."""
        total = 0.0
        count = 0
        for p in self.params:
            total += float(np.abs(p.grad).sum())
            count += p.grad.size
        return total / count if count else 0.0


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay.

    update: ``v = mu * v + g + wd * w``;  ``w -= lr * v``
    (Caffe/TensorFlow convention used by the paper's experiments).
    """

    slot_names = ("velocity",)
    momentum_slot = "velocity"

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        super().__init__(params, lr)

    def apply_update(self, p: Parameter, slots: Dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        v = slots["velocity"]
        v *= self.momentum
        v += g
        p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and L2 weight decay.

    ``m = b1*m + (1-b1)*g``, ``v = b2*v + (1-b2)*g^2``,
    ``w -= lr * m_hat / (sqrt(v_hat) + eps)``.  Both moment slots live in
    the slot state, so Adam trains out-of-core through the same
    :class:`~repro.core.param_store.ParamStore` path as SGD.
    """

    slot_names = ("exp_avg", "exp_avg_sq")
    momentum_slot = "exp_avg"

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        b1, b2 = betas
        if not 0.0 <= b1 < 1.0 or not 0.0 <= b2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        super().__init__(params, lr)

    def apply_update(self, p: Parameter, slots: Dict[str, np.ndarray]) -> None:
        b1, b2 = self.betas
        t = self.iteration + 1
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        m, v = slots["exp_avg"], slots["exp_avg_sq"]
        m *= b1
        m += (1.0 - b1) * g
        v *= b2
        v += (1.0 - b2) * np.square(g)
        m_hat = m / (1.0 - b1**t)
        v_hat = v / (1.0 - b2**t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer

    def step(self) -> float:
        return self.optimizer.lr


class StepLR:
    """Multiply the LR by *gamma* every *step_size* optimizer steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> float:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
