"""Shape adaptor layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """``(N, ...) -> (N, prod(...))``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout.reshape(self._x_shape)

    def output_shape(self, in_shape):
        n = in_shape[0]
        prod = 1
        for d in in_shape[1:]:
            prod *= d
        return (n, prod)
