"""2-D convolution with exact analytic backward pass (im2col formulation).

The layer's saved tensor is its *input activation* — the tensor the paper
compresses.  ``im2col`` patches are recomputed during backward rather than
saved (they are ``k*k`` times larger than the activation), matching how
training frameworks checkpoint convolutions.

The forward pass extracts patches with ``sliding_window_view`` (zero-copy
strided view, per the HPC guides' "views, not copies") and reduces to one
GEMM; backward is two GEMMs plus a strided scatter-add (col2im).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.layers.base import Layer, Parameter
from repro.nn.init import kaiming_uniform

__all__ = ["Conv2D", "im2col", "col2im", "conv_output_hw"]


def conv_output_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> Tuple[int, int]:
    """Spatial output size of a convolution/pooling window."""
    ho = (h + 2 * padding - kernel) // stride + 1
    wo = (w + 2 * padding - kernel) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"window (k={kernel}, s={stride}, p={padding}) does not fit input {h}x{w}"
        )
    return ho, wo


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Extract conv patches: ``(N, C, H, W) -> (N*Ho*Wo, C*k*k)``."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c = x.shape[:2]
    windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, k, k)
    ho, wo = windows.shape[2], windows.shape[3]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * ho * wo, c * kernel * kernel)
    return np.ascontiguousarray(cols)


def col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch gradients back."""
    n, c, h, w = x_shape
    ho, wo = conv_output_hw(h, w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dxp = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    d6 = dcols.reshape(n, ho, wo, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kernel):
        for j in range(kernel):
            dxp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += d6[
                :, :, :, :, i, j
            ]
    if padding:
        return dxp[:, :, padding : padding + h, padding : padding + w]
    return dxp


class Conv2D(Layer):
    """``(N, C_in, H, W) -> (N, C_out, Ho, Wo)`` convolution layer."""

    compressible = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = None,
        rng=None,
    ):
        super().__init__(name)
        if kernel < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid conv geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            kaiming_uniform((out_channels, in_channels, kernel, kernel), fan_in, rng=rng),
            name=f"{self.name}.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{self.name}.bias") if bias else None

    def parameters(self):
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        ho, wo = conv_output_hw(x.shape[2], x.shape[3], self.kernel, self.stride, self.padding)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        wmat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ wmat.T
        if self.bias is not None:
            out += self.bias.data
        out = out.reshape(n, ho, wo, self.out_channels).transpose(0, 3, 1, 2)
        if self.training:
            self._save("x", x)
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x = self._pop("x")
        n, _, ho, wo = dout.shape
        dmat = dout.transpose(0, 2, 3, 1).reshape(n * ho * wo, self.out_channels)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        wmat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (dmat.T @ cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += dmat.sum(axis=0)
        dcols = dmat @ wmat
        return col2im(dcols, x.shape, self.kernel, self.stride, self.padding)

    def output_shape(self, in_shape):
        n, c, h, w = in_shape
        ho, wo = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (n, self.out_channels, ho, wo)

    def __repr__(self):
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, k={self.kernel}, "
            f"s={self.stride}, p={self.padding})"
        )
