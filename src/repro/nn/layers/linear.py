"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_uniform
from repro.nn.layers.base import Layer, Parameter

__all__ = ["Linear"]


class Linear(Layer):
    """``(N, in_features) -> (N, out_features)`` affine layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, name=None, rng=None):
        super().__init__(name)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), in_features, rng=rng),
            name=f"{self.name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{self.name}.bias") if bias else None

    def parameters(self):
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"{self.name}: expected (N, {self.in_features}), got {x.shape}")
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        if self.training:
            self._save("x", x)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x = self._pop("x")
        self.weight.grad += dout.T @ x
        if self.bias is not None:
            self.bias.grad += dout.sum(axis=0)
        return dout @ self.weight.data

    def output_shape(self, in_shape):
        return (in_shape[0], self.out_features)

    def __repr__(self):
        return f"Linear({self.in_features}->{self.out_features})"
