"""Layer base class, parameters, and the saved-tensor context.

The saved-tensor context is this substrate's analog of PyTorch's
``saved_tensors_hooks``: every layer stores the tensors it needs for its
backward pass through a pluggable ``pack``/``unpack`` pair.  The default
context keeps plain references; the paper's framework
(:mod:`repro.core.activation_store`) swaps in a context that compresses on
``pack`` (forward pass) and decompresses on ``unpack`` (backward pass) —
exactly the interception point the paper instruments in Caffe/TensorFlow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["Parameter", "SavedTensorContext", "Layer"]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


class SavedTensorContext:
    """Default pass-through storage for tensors saved for backward."""

    def pack(self, layer: "Layer", key: str, arr: np.ndarray):
        """Called on forward when *layer* saves *arr*; returns a handle."""
        return arr

    def unpack(self, layer: "Layer", key: str, handle) -> np.ndarray:
        """Called on backward to recover the tensor from its handle."""
        return handle

    def discard(self, layer: "Layer", key: str, handle) -> None:
        """Called when a handle is dropped without being unpacked."""


_DEFAULT_CTX = SavedTensorContext()


class Layer:
    """Base class: forward/backward pair over NumPy arrays.

    Subclasses implement :meth:`forward` and :meth:`backward`; tensors
    needed by backward must go through :meth:`_save`/:meth:`_load` so
    memory policies can intercept them.
    """

    #: True for layers whose saved input is a large conv activation —
    #: the tensors the paper targets for compression.
    compressible = False
    #: True for layers cheap to recompute from their input (ReLU, pool),
    #: eligible for the recomputation policy of Section 2.1.
    recomputable = False

    _instance_counter = 0

    def __init__(self, name: Optional[str] = None):
        if name is None:
            # Unique default names: per-layer statistics (error bounds,
            # loss scales, memory records) are keyed by name.
            Layer._instance_counter += 1
            name = f"{type(self).__name__}_{Layer._instance_counter}"
        self.name = name
        self.training = True
        self.saved_ctx: SavedTensorContext = _DEFAULT_CTX
        self._saved: Dict[str, object] = {}

    # -- lifecycle --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def parameters(self) -> List[Parameter]:
        return []

    def train(self, flag: bool = True) -> "Layer":
        self.training = flag
        return self

    def eval(self) -> "Layer":
        return self.train(False)

    # -- saved-tensor plumbing ---------------------------------------------
    def _save(self, key: str, arr: np.ndarray) -> None:
        self._saved[key] = self.saved_ctx.pack(self, key, arr)

    def _load(self, key: str) -> np.ndarray:
        return self.saved_ctx.unpack(self, key, self._saved[key])

    def _pop(self, key: str) -> np.ndarray:
        """Load and release a saved tensor (normal backward-pass use)."""
        handle = self._saved.pop(key)
        return self.saved_ctx.unpack(self, key, handle)

    def clear_saved(self) -> None:
        for key, handle in self._saved.items():
            self.saved_ctx.discard(self, key, handle)
        self._saved.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
