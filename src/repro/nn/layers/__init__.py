"""Primitive layers of the DNN substrate."""

from repro.nn.layers.base import Layer, Parameter, SavedTensorContext
from repro.nn.layers.conv import Conv2D, col2im, conv_output_hw, im2col
from repro.nn.layers.linear import Linear
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.norm import BatchNorm2D, LocalResponseNorm
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.loss import SoftmaxCrossEntropy

__all__ = [
    "Layer",
    "Parameter",
    "SavedTensorContext",
    "Conv2D",
    "col2im",
    "conv_output_hw",
    "im2col",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "MaxPool2D",
    "BatchNorm2D",
    "LocalResponseNorm",
    "Dropout",
    "Flatten",
    "SoftmaxCrossEntropy",
]
