"""Spatial pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import conv_output_hw

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


def _windows(x: np.ndarray, kernel: int, stride: int, padding: int, pad_value: float):
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=pad_value,
        )
    w = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
    return x, w  # padded input, (N, C, Ho, Wo, k, k) view


class MaxPool2D(Layer):
    """Max pooling; backward routes gradients to per-window argmax."""

    recomputable = True

    def __init__(self, kernel: int, stride: int = None, padding: int = 0, name=None):
        super().__init__(name)
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4-D input, got {x.shape}")
        _, w = _windows(x, self.kernel, self.stride, self.padding, -np.inf)
        n, c, ho, wo = w.shape[:4]
        flat = w.reshape(n, c, ho, wo, -1)
        idx = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]
        if self.training:
            self._save("idx", idx.astype(np.int16))
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        idx = self._pop("idx").astype(np.int64)
        n, c, h, w = self._x_shape
        k, s, p = self.kernel, self.stride, self.padding
        ho, wo = conv_output_hw(h, w, k, s, p)
        hp, wp = h + 2 * p, w + 2 * p
        # Window-local argmax -> absolute padded coordinates, then one
        # flat scatter-add (windows may overlap when stride < kernel).
        di, dj = idx // k, idx % k
        base_i = (np.arange(ho) * s)[None, None, :, None]
        base_j = (np.arange(wo) * s)[None, None, None, :]
        rows = base_i + di
        cols = base_j + dj
        plane = (np.arange(n * c) * (hp * wp)).reshape(n, c, 1, 1)
        flat_idx = (plane + rows * wp + cols).reshape(-1)
        dxp = np.zeros(n * c * hp * wp, dtype=dout.dtype)
        np.add.at(dxp, flat_idx, dout.reshape(-1))
        dxp = dxp.reshape(n, c, hp, wp)
        return dxp[:, :, p : p + h, p : p + w] if p else dxp

    def output_shape(self, in_shape):
        n, c, h, w = in_shape
        ho, wo = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (n, c, ho, wo)

    def __repr__(self):
        return f"MaxPool2D(k={self.kernel}, s={self.stride}, p={self.padding})"


class AvgPool2D(Layer):
    """Average pooling (count includes padding, TF/Caffe style)."""

    recomputable = True

    def __init__(self, kernel: int, stride: int = None, padding: int = 0, name=None):
        super().__init__(name)
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4-D input, got {x.shape}")
        _, w = _windows(x, self.kernel, self.stride, self.padding, 0.0)
        out = w.mean(axis=(-2, -1))
        if self.training:
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        k, s, p = self.kernel, self.stride, self.padding
        ho, wo = conv_output_hw(h, w, k, s, p)
        hp, wp = h + 2 * p, w + 2 * p
        dxp = np.zeros((n, c, hp, wp), dtype=dout.dtype)
        g = dout / (k * k)
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + s * ho : s, j : j + s * wo : s] += g
        return dxp[:, :, p : p + h, p : p + w] if p else dxp

    def output_shape(self, in_shape):
        n, c, h, w = in_shape
        ho, wo = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (n, c, ho, wo)


class GlobalAvgPool2D(Layer):
    """Mean over the spatial axes: ``(N, C, H, W) -> (N, C)``."""

    recomputable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4-D input, got {x.shape}")
        if self.training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(dout[:, :, None, None] / (h * w), (n, c, h, w)).copy()

    def output_shape(self, in_shape):
        return (in_shape[0], in_shape[1])
