"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Layer):
    """max(x, 0).

    Saves only a bit mask for backward (the layer is the canonical
    "recomputable" layer of Section 2.1: its output is trivially derived
    from its input, which is why the paper can recompute the activation
    function to restore exact zeros).
    """

    recomputable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.maximum(x, 0)
        if self.training:
            self._save("mask", (x > 0))
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        mask = self._pop("mask")
        return dout * mask

    def output_shape(self, in_shape):
        return in_shape


class Tanh(Layer):
    recomputable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        if self.training:
            self._save("y", out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        y = self._pop("y")
        return dout * (1.0 - y * y)

    def output_shape(self, in_shape):
        return in_shape


class Sigmoid(Layer):
    recomputable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-x))
        if self.training:
            self._save("y", out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        y = self._pop("y")
        return dout * y * (1.0 - y)

    def output_shape(self, in_shape):
        return in_shape
