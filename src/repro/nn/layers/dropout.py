"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import ensure_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: identity at eval time, scaled mask when training."""

    def __init__(self, p: float = 0.5, name=None, rng=None):
        super().__init__(name)
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._save("mask", mask)
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self.p == 0.0 or "mask" not in self._saved:
            return dout
        return dout * self._pop("mask")

    def output_shape(self, in_shape):
        return in_shape
