"""Normalization layers: BatchNorm2D and AlexNet-style LRN."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, Parameter

__all__ = ["BatchNorm2D", "LocalResponseNorm"]


class BatchNorm2D(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5, name=None):
        super().__init__(name)
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{self.name}.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def parameters(self):
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(f"{self.name}: expected (N, {self.channels}, H, W), got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * xhat + self.beta.data[None, :, None, None]
        if self.training:
            self._save("xhat", xhat.astype(x.dtype))
            self._inv_std = inv_std
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        xhat = self._pop("xhat")
        n, _, h, w = dout.shape
        m = n * h * w
        self.gamma.grad += (dout * xhat).sum(axis=(0, 2, 3))
        self.beta.grad += dout.sum(axis=(0, 2, 3))
        g = self.gamma.data[None, :, None, None] * self._inv_std[None, :, None, None]
        sum_d = dout.sum(axis=(0, 2, 3), keepdims=True)
        sum_dx = (dout * xhat).sum(axis=(0, 2, 3), keepdims=True)
        return g * (dout - sum_d / m - xhat * sum_dx / m)

    def output_shape(self, in_shape):
        return in_shape


def _channel_window_sum(v: np.ndarray, size: int) -> np.ndarray:
    """Sum of *v* over a centered channel window (AlexNet LRN semantics)."""
    half = size // 2
    c = v.shape[1]
    pad = np.zeros_like(v[:, :1])
    cs = np.concatenate([pad, np.cumsum(v, axis=1)], axis=1)  # (N, C+1, H, W)
    hi = np.minimum(np.arange(c) + half + 1, c)
    lo = np.maximum(np.arange(c) - half, 0)
    return cs[:, hi] - cs[:, lo]


class LocalResponseNorm(Layer):
    """Across-channel local response normalization (Krizhevsky et al.).

    ``y_i = x_i / (k + alpha/n * sum_{j in win(i)} x_j^2)^beta``
    """

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0, name=None):
        super().__init__(name)
        if size < 1 or size % 2 == 0:
            raise ValueError(f"LRN size must be odd and >= 1, got {size}")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4-D input, got {x.shape}")
        denom = self.k + (self.alpha / self.size) * _channel_window_sum(x * x, self.size)
        out = x * denom ** (-self.beta)
        if self.training:
            self._save("x", x)
            self._denom = denom
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x = self._pop("x")
        denom = self._denom
        dpow = denom ** (-self.beta)
        # dL/dx_j = dout_j * d_j^-b
        #          - (2ab/n) x_j * window_sum_j(dout_i x_i d_i^-(b+1))
        inner = dout * x * denom ** (-self.beta - 1.0)
        corr = _channel_window_sum(inner, self.size)
        return dout * dpow - (2.0 * self.alpha * self.beta / self.size) * x * corr

    def output_shape(self, in_shape):
        return in_shape
