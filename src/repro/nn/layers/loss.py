"""Loss functions (softmax cross-entropy with stable log-sum-exp)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SoftmaxCrossEntropy"]


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy over integer class labels.

    ``forward`` returns ``(loss, dlogits)`` so the backward pass never
    recomputes the softmax; the gradient is averaged over the batch,
    matching the paper's Eq. 4 batch-averaged gradient.
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        n = logits.shape[0]
        if labels.shape != (n,):
            raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
        shifted = logits - logits.max(axis=1, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - logsumexp
        loss = -float(log_probs[np.arange(n), labels].mean())
        probs = np.exp(log_probs)
        dlogits = probs
        dlogits[np.arange(n), labels] -= 1.0
        dlogits /= n
        return loss, dlogits

    @staticmethod
    def predictions(logits: np.ndarray) -> np.ndarray:
        return logits.argmax(axis=1)

    @staticmethod
    def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        return float((logits.argmax(axis=1) == labels).mean())
