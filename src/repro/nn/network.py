"""Network containers: Sequential composition and residual blocks."""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.nn.layers.base import Layer, Parameter, SavedTensorContext

__all__ = ["Sequential", "Residual", "iter_layers"]


class Sequential(Layer):
    """Chain of layers executed in order; backward runs in reverse."""

    def __init__(self, layers: Sequence[Layer], name=None):
        super().__init__(name)
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def train(self, flag: bool = True):
        self.training = flag
        for layer in self.layers:
            layer.train(flag)
        return self

    def clear_saved(self):
        for layer in self.layers:
            layer.clear_saved()

    def output_shape(self, in_shape):
        for layer in self.layers:
            in_shape = layer.output_shape(in_shape)
        return in_shape

    def __getitem__(self, i):
        return self.layers[i]

    def __len__(self):
        return len(self.layers)

    def __repr__(self):
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential([{inner}])"


class Residual(Layer):
    """``y = main(x) + shortcut(x)`` (shortcut defaults to identity).

    The elementwise add needs no saved tensor; gradients flow through both
    branches and sum at the input — the ResNet-18/50 building block.
    """

    def __init__(self, main: Layer, shortcut: Layer = None, name=None):
        super().__init__(name)
        self.main = main
        self.shortcut = shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.main.forward(x)
        s = self.shortcut.forward(x) if self.shortcut is not None else x
        if y.shape != s.shape:
            raise ValueError(
                f"{self.name}: branch shapes differ, main {y.shape} vs shortcut {s.shape}"
            )
        return y + s

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dx = self.main.backward(dout)
        if self.shortcut is not None:
            dx = dx + self.shortcut.backward(dout)
        else:
            dx = dx + dout
        return dx

    def parameters(self) -> List[Parameter]:
        ps = list(self.main.parameters())
        if self.shortcut is not None:
            ps += self.shortcut.parameters()
        return ps

    def train(self, flag: bool = True):
        self.training = flag
        self.main.train(flag)
        if self.shortcut is not None:
            self.shortcut.train(flag)
        return self

    def clear_saved(self):
        self.main.clear_saved()
        if self.shortcut is not None:
            self.shortcut.clear_saved()

    def output_shape(self, in_shape):
        return self.main.output_shape(in_shape)

    def __repr__(self):
        return f"Residual(main={self.main!r}, shortcut={self.shortcut!r})"


def iter_layers(root: Layer) -> Iterator[Layer]:
    """Depth-first iteration over every primitive layer under *root*."""
    if isinstance(root, Sequential):
        for layer in root.layers:
            yield from iter_layers(layer)
    elif isinstance(root, Residual):
        yield from iter_layers(root.main)
        if root.shortcut is not None:
            yield from iter_layers(root.shortcut)
    else:
        yield root


def set_saved_ctx(root: Layer, ctx: SavedTensorContext, predicate=None) -> int:
    """Install *ctx* as the saved-tensor context on matching layers.

    Returns the number of layers touched.  ``predicate`` defaults to all
    layers; pass e.g. ``lambda l: l.compressible`` to target conv layers
    only (the paper's scope).
    """
    count = 0
    for layer in iter_layers(root):
        if predicate is None or predicate(layer):
            layer.saved_ctx = ctx
            count += 1
    return count


__all__.append("set_saved_ctx")
