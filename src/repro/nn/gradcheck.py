"""Finite-difference gradient checking for layers and networks.

Used by the test suite to validate every backward pass against central
differences — the substrate's correctness is load-bearing for the whole
reproduction (the paper's error-propagation analysis assumes exact
gradients as the baseline).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["numeric_gradient", "check_layer_gradients"]


def numeric_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of scalar-valued *f* at *x*."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f(x)
        x[idx] = orig - eps
        fm = f(x)
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rng=None,
    eps: float = 1e-3,
    rtol: float = 2e-2,
    atol: float = 1e-3,
) -> None:
    """Assert analytic input and parameter gradients match finite differences.

    Uses a fixed random projection ``sum(out * r)`` as the scalar loss so
    one check covers every output element.
    """
    # Seed chosen independently of common test-input seeds: if r happened
    # to equal x the check degenerates (e.g. BatchNorm's input gradient is
    # exactly zero along x itself).
    rng = np.random.default_rng(0xC0FFEE) if rng is None else rng
    layer.train(True)
    out = layer.forward(x.astype(np.float32))
    r = rng.standard_normal(out.shape).astype(np.float64)

    for p in layer.parameters():
        p.zero_grad()
    layer.clear_saved()
    out = layer.forward(x.astype(np.float32))
    dx = layer.backward(r.astype(np.float32))

    def loss_wrt_input(xv: np.ndarray) -> float:
        layer.clear_saved()
        o = layer.forward(xv.astype(np.float32))
        layer.clear_saved()
        return float((o.astype(np.float64) * r).sum())

    num_dx = numeric_gradient(loss_wrt_input, x.copy(), eps=eps)
    np.testing.assert_allclose(dx, num_dx, rtol=rtol, atol=atol, err_msg=f"{layer}: d/dx mismatch")

    for p in layer.parameters():
        analytic = p.grad.copy()

        def loss_wrt_param(w: np.ndarray, p=p) -> float:
            saved = p.data.copy()
            p.data = w.astype(np.float32)
            layer.clear_saved()
            o = layer.forward(x.astype(np.float32))
            layer.clear_saved()
            p.data = saved
            return float((o.astype(np.float64) * r).sum())

        num = numeric_gradient(loss_wrt_param, p.data.copy().astype(np.float64), eps=eps)
        np.testing.assert_allclose(
            analytic, num, rtol=rtol, atol=atol, err_msg=f"{layer}: d/d{p.name} mismatch"
        )
