"""Training snapshots: save/restore network weights and optimizer state.

The paper's Figure 9 methodology pre-trains a model, saves a snapshot
every epoch, and replays error-injection experiments from chosen
iterations; this module provides that mechanism (npz-based, BatchNorm
running statistics included).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.norm import BatchNorm2D
from repro.nn.network import iter_layers
from repro.nn.optim import SGD

__all__ = ["save_snapshot", "load_snapshot"]


def _named_params(network: Layer):
    for p in network.parameters():
        yield p.name, p


def save_snapshot(path: str, network: Layer, optimizer: Optional[SGD] = None) -> None:
    """Write weights (+ BN running stats, + momentum buffers) to *path*."""
    arrays = {}
    for name, p in _named_params(network):
        arrays[f"param/{name}"] = p.data
        if optimizer is not None:
            arrays[f"momentum/{name}"] = optimizer.momentum_buffer(p)
    for layer in iter_layers(network):
        if isinstance(layer, BatchNorm2D):
            arrays[f"bn_mean/{layer.name}"] = layer.running_mean
            arrays[f"bn_var/{layer.name}"] = layer.running_var
    if optimizer is not None:
        arrays["opt/iteration"] = np.array(optimizer.iteration)
        arrays["opt/lr"] = np.array(optimizer.lr)
    np.savez(path, **arrays)


def load_snapshot(path: str, network: Layer, optimizer: Optional[SGD] = None) -> None:
    """Restore a snapshot written by :func:`save_snapshot` in place.

    The network must have the same architecture (parameter names and
    shapes are matched exactly; mismatches raise).
    """
    with np.load(path) as data:
        for name, p in _named_params(network):
            key = f"param/{name}"
            if key not in data:
                raise KeyError(f"snapshot is missing parameter {name!r}")
            if data[key].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: snapshot {data[key].shape} "
                    f"vs model {p.data.shape}"
                )
            p.data[:] = data[key]
            mkey = f"momentum/{name}"
            if optimizer is not None and mkey in data:
                optimizer.momentum_buffer(p)[:] = data[mkey]
        for layer in iter_layers(network):
            if isinstance(layer, BatchNorm2D):
                if f"bn_mean/{layer.name}" in data:
                    layer.running_mean[:] = data[f"bn_mean/{layer.name}"]
                    layer.running_var[:] = data[f"bn_var/{layer.name}"]
        if optimizer is not None and "opt/iteration" in data:
            optimizer.iteration = int(data["opt/iteration"])
            optimizer.lr = float(data["opt/lr"])
