"""Training snapshots: save/restore network weights and optimizer state.

The paper's Figure 9 methodology pre-trains a model, saves a snapshot
every epoch, and replays error-injection experiments from chosen
iterations; this module provides that mechanism (npz-based, BatchNorm
running statistics included).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.norm import BatchNorm2D
from repro.nn.network import iter_layers
from repro.nn.optim import Optimizer

__all__ = ["save_snapshot", "load_snapshot"]


def _named_params(network: Layer):
    for p in network.parameters():
        yield p.name, p


def _slot_tag(slot: str) -> str:
    # SGD's velocity keeps the historical "momentum/" key so snapshots
    # written before the slot-based optimizer API still load.
    return "momentum" if slot == "velocity" else f"slot_{slot}"


def _param_store(optimizer: Optional[Optimizer]):
    # Duck-typed: StoreSlots (repro.core.param_store) carries the store;
    # nn cannot import core without a cycle.
    return getattr(getattr(optimizer, "state", None), "store", None)


def _read_param(p, optimizer: Optional[Optimizer]):
    if p.data.flags.writeable:
        return p.data
    # Read-only stub: the weights live out-of-core in a ParamStore.
    store = _param_store(optimizer)
    if store is not None:
        return store.fetch(p.name)
    raise RuntimeError(
        f"parameter {p.name!r} is store-backed (ParamStore attached) and no "
        f"store-aware optimizer was passed; snapshot through the optimizer "
        f"or detach the store first"
    )


def _write_param(p, optimizer: Optional[Optimizer], value) -> None:
    if p.data.flags.writeable:
        p.data[:] = value
        return
    store = _param_store(optimizer)
    if store is not None:
        store.writeback(p.name, value)
        return
    raise RuntimeError(
        f"parameter {p.name!r} is store-backed (ParamStore attached) and no "
        f"store-aware optimizer was passed; load through the optimizer or "
        f"detach the store first"
    )


def save_snapshot(path: str, network: Layer, optimizer: Optional[Optimizer] = None) -> None:
    """Write weights (+ BN running stats, + optimizer slots) to *path*.

    Works for resident and :class:`~repro.core.param_store.ParamStore`-
    backed training alike — store-backed weights are fetched through the
    optimizer's slot state (pass the optimizer, or detach the store,
    when parameters live out-of-core)."""
    arrays = {}
    for name, p in _named_params(network):
        arrays[f"param/{name}"] = _read_param(p, optimizer)
        if optimizer is not None:
            for slot in optimizer.slot_names:
                arrays[f"{_slot_tag(slot)}/{name}"] = optimizer.read_slot(p, slot)
    for layer in iter_layers(network):
        if isinstance(layer, BatchNorm2D):
            arrays[f"bn_mean/{layer.name}"] = layer.running_mean
            arrays[f"bn_var/{layer.name}"] = layer.running_var
    if optimizer is not None:
        arrays["opt/iteration"] = np.array(optimizer.iteration)
        arrays["opt/lr"] = np.array(optimizer.lr)
    np.savez(path, **arrays)


def load_snapshot(path: str, network: Layer, optimizer: Optional[Optimizer] = None) -> None:
    """Restore a snapshot written by :func:`save_snapshot` in place.

    The network must have the same architecture (parameter names and
    shapes are matched exactly; mismatches raise).
    """
    with np.load(path) as data:
        for name, p in _named_params(network):
            key = f"param/{name}"
            if key not in data:
                raise KeyError(f"snapshot is missing parameter {name!r}")
            if data[key].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: snapshot {data[key].shape} "
                    f"vs model {p.data.shape}"
                )
            _write_param(p, optimizer, data[key])
            if optimizer is not None:
                for slot in optimizer.slot_names:
                    skey = f"{_slot_tag(slot)}/{name}"
                    if skey in data:
                        optimizer.write_slot(p, slot, data[skey])
        for layer in iter_layers(network):
            if isinstance(layer, BatchNorm2D):
                if f"bn_mean/{layer.name}" in data:
                    layer.running_mean[:] = data[f"bn_mean/{layer.name}"]
                    layer.running_var[:] = data[f"bn_var/{layer.name}"]
        if optimizer is not None and "opt/iteration" in data:
            optimizer.iteration = int(data["opt/iteration"])
            optimizer.lr = float(data["opt/lr"])
