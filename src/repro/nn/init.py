"""Weight initializers (Kaiming / Xavier families)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform"]


def kaiming_uniform(shape, fan_in: int, rng=None) -> np.ndarray:
    """He et al. uniform init for ReLU networks: U(+-sqrt(6/fan_in))."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = np.sqrt(6.0 / fan_in)
    return ensure_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape, fan_in: int, rng=None) -> np.ndarray:
    """He et al. normal init: N(0, sqrt(2/fan_in))."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return (ensure_rng(rng).standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(np.float32)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """Glorot uniform init: U(+-sqrt(6/(fan_in+fan_out)))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return ensure_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)
