"""Architecture specs: one declarative source of truth per network.

A spec list can be (a) instantiated into live :mod:`repro.nn` layers for
actual training, or (b) walked symbolically for exact activation/weight
accounting at full ImageNet scale without allocating anything — which is
how Table 1's "Convolutional Act. Size" and Figure 2's memory bars are
computed (tens of GB of tensors never materialize).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.layers.conv import conv_output_hw

__all__ = [
    "ConvS", "ReLUS", "LRNS", "MaxPoolS", "AvgPoolS", "GlobalAvgPoolS",
    "BatchNormS", "DropoutS", "FlattenS", "LinearS", "ResidualS",
    "build_network", "walk_shapes", "LayerReport",
]


@dataclass(frozen=True)
class ConvS:
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    bias: bool = True


@dataclass(frozen=True)
class ReLUS:
    pass


@dataclass(frozen=True)
class LRNS:
    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0


@dataclass(frozen=True)
class MaxPoolS:
    kernel: int
    stride: Optional[int] = None
    padding: int = 0


@dataclass(frozen=True)
class AvgPoolS:
    kernel: int
    stride: Optional[int] = None
    padding: int = 0


@dataclass(frozen=True)
class GlobalAvgPoolS:
    pass


@dataclass(frozen=True)
class BatchNormS:
    pass


@dataclass(frozen=True)
class DropoutS:
    p: float = 0.5


@dataclass(frozen=True)
class FlattenS:
    pass


@dataclass(frozen=True)
class LinearS:
    out_features: int


@dataclass(frozen=True)
class ResidualS:
    main: Tuple
    shortcut: Optional[Tuple] = None


def build_network(specs: Sequence, in_shape: Tuple[int, int, int, int], rng=None) -> Sequential:
    """Instantiate live layers from *specs* for input ``(N, C, H, W)``."""
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    layers = []
    shape = tuple(in_shape)
    for i, spec in enumerate(specs):
        layer, shape = _build_one(spec, shape, rng, f"l{i}")
        layers.append(layer)
    return Sequential(layers)


def _build_one(spec, shape, rng, name):
    if isinstance(spec, ConvS):
        c_in = shape[1]
        layer = Conv2D(c_in, spec.out_channels, spec.kernel, spec.stride, spec.padding,
                       bias=spec.bias, name=name, rng=rng)
        return layer, layer.output_shape(shape)
    if isinstance(spec, ReLUS):
        return ReLU(name=name), shape
    if isinstance(spec, LRNS):
        return LocalResponseNorm(spec.size, spec.alpha, spec.beta, spec.k, name=name), shape
    if isinstance(spec, MaxPoolS):
        layer = MaxPool2D(spec.kernel, spec.stride, spec.padding, name=name)
        return layer, layer.output_shape(shape)
    if isinstance(spec, AvgPoolS):
        layer = AvgPool2D(spec.kernel, spec.stride, spec.padding, name=name)
        return layer, layer.output_shape(shape)
    if isinstance(spec, GlobalAvgPoolS):
        layer = GlobalAvgPool2D(name=name)
        return layer, layer.output_shape(shape)
    if isinstance(spec, BatchNormS):
        return BatchNorm2D(shape[1], name=name), shape
    if isinstance(spec, DropoutS):
        return Dropout(spec.p, name=name, rng=rng), shape
    if isinstance(spec, FlattenS):
        layer = Flatten(name=name)
        return layer, layer.output_shape(shape)
    if isinstance(spec, LinearS):
        layer = Linear(shape[1], spec.out_features, name=name, rng=rng)
        return layer, layer.output_shape(shape)
    if isinstance(spec, ResidualS):
        main_layers = []
        s = shape
        for j, sub in enumerate(spec.main):
            l, s = _build_one(sub, s, rng, f"{name}.m{j}")
            main_layers.append(l)
        shortcut = None
        if spec.shortcut is not None:
            sc_layers = []
            s2 = shape
            for j, sub in enumerate(spec.shortcut):
                l, s2 = _build_one(sub, s2, rng, f"{name}.s{j}")
                sc_layers.append(l)
            if s2 != s:
                raise ValueError(f"{name}: residual branch shapes differ: {s} vs {s2}")
            shortcut = Sequential(sc_layers, name=f"{name}.shortcut")
        return Residual(Sequential(main_layers, name=f"{name}.main"), shortcut, name=name), s
    raise TypeError(f"unknown spec {spec!r}")


@dataclass
class LayerReport:
    """Symbolic per-layer accounting entry."""

    kind: str
    in_shape: Tuple
    out_shape: Tuple
    weight_count: int
    #: elements saved for backward (the activation footprint), and the
    #: per-element byte width of that saved tensor
    saved_numel: int
    saved_itemsize: int
    is_conv: bool
    recomputable: bool
    flops: float  # forward multiply-accumulates x2

    @property
    def saved_bytes(self) -> int:
        return self.saved_numel * self.saved_itemsize

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * 4


def _numel(shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def walk_shapes(specs: Sequence, in_shape: Tuple[int, int, int, int]) -> List[LayerReport]:
    """Symbolically execute *specs*, returning per-layer accounting.

    Saved-tensor conventions mirror the live layers: conv/linear save
    their fp32 input, BatchNorm saves normalized input, ReLU saves a
    1-byte mask, MaxPool saves 2-byte argmax indices, pooling/flatten
    save nothing beyond shape metadata.
    """
    reports: List[LayerReport] = []
    shape = tuple(in_shape)
    for spec in specs:
        shape = _walk_one(spec, shape, reports)
    return reports


def _walk_one(spec, shape, reports) -> Tuple:
    n = shape[0]
    if isinstance(spec, ConvS):
        c_in, h, w = shape[1], shape[2], shape[3]
        ho, wo = conv_output_hw(h, w, spec.kernel, spec.stride, spec.padding)
        out_shape = (n, spec.out_channels, ho, wo)
        wcount = spec.out_channels * c_in * spec.kernel**2 + (spec.out_channels if spec.bias else 0)
        flops = 2.0 * n * ho * wo * spec.out_channels * c_in * spec.kernel**2
        reports.append(LayerReport("conv", shape, out_shape, wcount, _numel(shape), 4, True, False, flops))
        return out_shape
    if isinstance(spec, ReLUS):
        reports.append(LayerReport("relu", shape, shape, 0, _numel(shape), 1, False, True, _numel(shape)))
        return shape
    if isinstance(spec, LRNS):
        reports.append(LayerReport("lrn", shape, shape, 0, _numel(shape), 4, False, False, 6.0 * _numel(shape) * spec.size))
        return shape
    if isinstance(spec, (MaxPoolS, AvgPoolS)):
        k = spec.kernel
        s = spec.stride if spec.stride is not None else k
        ho, wo = conv_output_hw(shape[2], shape[3], k, s, spec.padding)
        out_shape = (n, shape[1], ho, wo)
        kind = "maxpool" if isinstance(spec, MaxPoolS) else "avgpool"
        saved = _numel(out_shape) if kind == "maxpool" else 0
        reports.append(LayerReport(kind, shape, out_shape, 0, saved, 2, False, True, _numel(shape)))
        return out_shape
    if isinstance(spec, GlobalAvgPoolS):
        out_shape = (n, shape[1])
        reports.append(LayerReport("gap", shape, out_shape, 0, 0, 4, False, True, _numel(shape)))
        return out_shape
    if isinstance(spec, BatchNormS):
        reports.append(LayerReport("bn", shape, shape, 2 * shape[1], _numel(shape), 4, False, False, 4.0 * _numel(shape)))
        return shape
    if isinstance(spec, DropoutS):
        reports.append(LayerReport("dropout", shape, shape, 0, _numel(shape), 4, False, True, _numel(shape)))
        return shape
    if isinstance(spec, FlattenS):
        out_shape = (n, _numel(shape[1:]))
        reports.append(LayerReport("flatten", shape, out_shape, 0, 0, 4, False, True, 0.0))
        return out_shape
    if isinstance(spec, LinearS):
        out_shape = (n, spec.out_features)
        wcount = spec.out_features * shape[1] + spec.out_features
        reports.append(LayerReport("linear", shape, out_shape, wcount, _numel(shape), 4, False, False, 2.0 * n * shape[1] * spec.out_features))
        return out_shape
    if isinstance(spec, ResidualS):
        s = shape
        for sub in spec.main:
            s = _walk_one(sub, s, reports)
        if spec.shortcut is not None:
            s2 = shape
            for sub in spec.shortcut:
                s2 = _walk_one(sub, s2, reports)
        return s
    raise TypeError(f"unknown spec {spec!r}")
