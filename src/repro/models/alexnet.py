"""AlexNet (Krizhevsky et al. 2012, Caffe single-GPU variant)."""

from __future__ import annotations

from typing import List

from repro.models.specs import (
    ConvS, DropoutS, FlattenS, LinearS, LRNS, MaxPoolS, ReLUS,
)

__all__ = ["alexnet_specs", "alexnet_scaled_specs"]


def alexnet_specs(num_classes: int = 1000) -> List:
    """Full ImageNet AlexNet for 224x224x3 input.

    Five conv layers (96-256-384-384-256), two LRNs, three max pools,
    and the 4096-4096 classifier head — Table 1's 407 MB of conv input
    activations at batch 256.
    """
    return [
        ConvS(96, 11, stride=4, padding=2), ReLUS(), LRNS(), MaxPoolS(3, 2),
        ConvS(256, 5, stride=1, padding=2), ReLUS(), LRNS(), MaxPoolS(3, 2),
        ConvS(384, 3, stride=1, padding=1), ReLUS(),
        ConvS(384, 3, stride=1, padding=1), ReLUS(),
        ConvS(256, 3, stride=1, padding=1), ReLUS(), MaxPoolS(3, 2),
        FlattenS(),
        LinearS(4096), ReLUS(), DropoutS(0.5),
        LinearS(4096), ReLUS(), DropoutS(0.5),
        LinearS(num_classes),
    ]


def alexnet_scaled_specs(num_classes: int = 8, width: float = 0.25) -> List:
    """CPU-trainable AlexNet: same topology at 32x32 with scaled width.

    Strides/pools are compressed for the small canvas, but the layer
    sequence (conv-LRN-pool front end, 5 convs, dropout head) is kept so
    per-layer compression behaviour is representative.
    """
    def c(ch: int) -> int:
        return max(4, int(round(ch * width)))

    return [
        ConvS(c(96), 3, stride=1, padding=1), ReLUS(), LRNS(size=5), MaxPoolS(2),
        ConvS(c(256), 3, stride=1, padding=1), ReLUS(), LRNS(size=5), MaxPoolS(2),
        ConvS(c(384), 3, stride=1, padding=1), ReLUS(),
        ConvS(c(384), 3, stride=1, padding=1), ReLUS(),
        ConvS(c(256), 3, stride=1, padding=1), ReLUS(), MaxPoolS(2),
        FlattenS(),
        LinearS(c(1024)), ReLUS(), DropoutS(0.3),
        LinearS(num_classes),
    ]
