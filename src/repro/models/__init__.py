"""Model zoo: full-scale specs for accounting, scaled variants for training."""

from repro.models.alexnet import alexnet_scaled_specs, alexnet_specs
from repro.models.resnet import resnet18_specs, resnet50_specs, resnet_scaled_specs
from repro.models.vgg import vgg16_scaled_specs, vgg16_specs
from repro.models.registry import (
    FULL_MODELS,
    PAPER_REFERENCE,
    SCALED_MODELS,
    build_scaled_model,
    conv_activation_bytes,
    full_model_specs,
    scaled_model_specs,
    total_saved_bytes,
    weight_bytes,
)
from repro.models.specs import (
    LayerReport,
    build_network,
    walk_shapes,
)

__all__ = [
    "alexnet_specs",
    "alexnet_scaled_specs",
    "vgg16_specs",
    "vgg16_scaled_specs",
    "resnet18_specs",
    "resnet50_specs",
    "resnet_scaled_specs",
    "FULL_MODELS",
    "SCALED_MODELS",
    "PAPER_REFERENCE",
    "build_scaled_model",
    "conv_activation_bytes",
    "full_model_specs",
    "scaled_model_specs",
    "total_saved_bytes",
    "weight_bytes",
    "LayerReport",
    "build_network",
    "walk_shapes",
]
