"""Model registry: full-scale specs, scaled trainable variants, and the
published reference numbers used by Figure 2 / Table 1 comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.models.alexnet import alexnet_scaled_specs, alexnet_specs
from repro.models.resnet import resnet18_specs, resnet50_specs, resnet_scaled_specs
from repro.models.vgg import vgg16_scaled_specs, vgg16_specs
from repro.models.specs import LayerReport, build_network, walk_shapes

__all__ = [
    "FULL_MODELS",
    "SCALED_MODELS",
    "PAPER_REFERENCE",
    "full_model_specs",
    "scaled_model_specs",
    "build_scaled_model",
    "conv_activation_bytes",
    "total_saved_bytes",
    "weight_bytes",
]

#: name -> spec builder for the full 224x224 ImageNet architectures
FULL_MODELS: Dict[str, Callable[[], List]] = {
    "alexnet": lambda: alexnet_specs(1000),
    "vgg16": lambda: vgg16_specs(1000),
    "resnet18": lambda: resnet18_specs(1000),
    "resnet50": lambda: resnet50_specs(1000),
}

#: name -> spec builder for CPU-trainable scaled variants (32x32 input)
SCALED_MODELS: Dict[str, Callable[[int], List]] = {
    "alexnet": lambda ncls: alexnet_scaled_specs(ncls),
    "vgg16": lambda ncls: vgg16_scaled_specs(ncls),
    "resnet18": lambda ncls: resnet_scaled_specs(ncls, blocks_per_stage=1),
    "resnet50": lambda ncls: resnet_scaled_specs(ncls, blocks_per_stage=2),
}


@dataclass(frozen=True)
class PaperNumbers:
    """Table 1 reference values from the paper (batch size 256)."""

    top1_baseline: float
    top1_compressed: float
    conv_act_bytes_baseline: float  # bytes
    compression_ratio: float


_MB = 1024.0**2
_GB = 1024.0**3

PAPER_REFERENCE: Dict[str, PaperNumbers] = {
    "alexnet": PaperNumbers(57.41, 57.42, 407 * _MB, 13.5),
    "vgg16": PaperNumbers(68.05, 68.02, 9.30 * _GB, 11.1),
    "resnet18": PaperNumbers(67.57, 67.43, 3.42 * _GB, 10.7),
    "resnet50": PaperNumbers(71.49, 71.18, 10.28 * _GB, 11.0),
}


def full_model_specs(name: str) -> List:
    try:
        return FULL_MODELS[name]()
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {sorted(FULL_MODELS)}") from None


def scaled_model_specs(name: str, num_classes: int = 8) -> List:
    try:
        return SCALED_MODELS[name](num_classes)
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {sorted(SCALED_MODELS)}") from None


def build_scaled_model(name: str, num_classes: int = 8, image_size: int = 32, batch: int = 32, rng=None):
    """Instantiate a trainable scaled model for ``(batch, 3, size, size)``."""
    specs = scaled_model_specs(name, num_classes)
    return build_network(specs, (batch, 3, image_size, image_size), rng=rng)


def _reports(name: str, batch: int, image_size: int = 224) -> List[LayerReport]:
    return walk_shapes(full_model_specs(name), (batch, 3, image_size, image_size))


def conv_activation_bytes(name: str, batch: int = 256, image_size: int = 224) -> int:
    """Total fp32 bytes of conv-layer *input* activations (Table 1 metric)."""
    return sum(r.saved_bytes for r in _reports(name, batch, image_size) if r.is_conv)


def total_saved_bytes(name: str, batch: int = 256, image_size: int = 224) -> int:
    """All saved-for-backward bytes across every layer (Figure 2 metric)."""
    return sum(r.saved_bytes for r in _reports(name, batch, image_size))


def weight_bytes(name: str, image_size: int = 224) -> int:
    """Model/weight footprint in bytes (fp32)."""
    return sum(r.weight_bytes for r in _reports(name, 1, image_size))
