"""ResNet-18 and ResNet-50 (He et al. 2016).

Basic blocks (two 3x3 convs) for ResNet-18; bottleneck blocks
(1x1 - 3x3 - 1x1) for ResNet-50.  Projection shortcuts (1x1 conv + BN)
appear wherever shape changes, per the paper's option B.
"""

from __future__ import annotations

from typing import List

from repro.models.specs import (
    BatchNormS, ConvS, GlobalAvgPoolS, LinearS, MaxPoolS, ReLUS, ResidualS,
)

__all__ = ["resnet18_specs", "resnet50_specs", "resnet_scaled_specs"]


def _basic_block(channels: int, stride: int, in_channels: int) -> ResidualS:
    main = (
        ConvS(channels, 3, stride=stride, padding=1, bias=False), BatchNormS(), ReLUS(),
        ConvS(channels, 3, stride=1, padding=1, bias=False), BatchNormS(),
    )
    if stride != 1 or in_channels != channels:
        shortcut = (ConvS(channels, 1, stride=stride, bias=False), BatchNormS())
    else:
        shortcut = None
    return ResidualS(main=main, shortcut=shortcut)


def _bottleneck_block(mid: int, stride: int, in_channels: int) -> ResidualS:
    out = mid * 4
    main = (
        ConvS(mid, 1, stride=1, bias=False), BatchNormS(), ReLUS(),
        ConvS(mid, 3, stride=stride, padding=1, bias=False), BatchNormS(), ReLUS(),
        ConvS(out, 1, stride=1, bias=False), BatchNormS(),
    )
    if stride != 1 or in_channels != out:
        shortcut = (ConvS(out, 1, stride=stride, bias=False), BatchNormS())
    else:
        shortcut = None
    return ResidualS(main=main, shortcut=shortcut)


def _stem() -> List:
    return [
        ConvS(64, 7, stride=2, padding=3, bias=False), BatchNormS(), ReLUS(),
        MaxPoolS(3, 2, padding=1),
    ]


def resnet18_specs(num_classes: int = 1000) -> List:
    specs: List = _stem()
    in_ch = 64
    for channels, blocks, first_stride in ((64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2)):
        for b in range(blocks):
            stride = first_stride if b == 0 else 1
            specs.append(_basic_block(channels, stride, in_ch))
            specs.append(ReLUS())
            in_ch = channels
    specs += [GlobalAvgPoolS(), LinearS(num_classes)]
    return specs


def resnet50_specs(num_classes: int = 1000) -> List:
    specs: List = _stem()
    in_ch = 64
    for mid, blocks, first_stride in ((64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)):
        for b in range(blocks):
            stride = first_stride if b == 0 else 1
            specs.append(_bottleneck_block(mid, stride, in_ch))
            specs.append(ReLUS())
            in_ch = mid * 4
    specs += [GlobalAvgPoolS(), LinearS(num_classes)]
    return specs


def resnet_scaled_specs(num_classes: int = 8, width: float = 0.25, blocks_per_stage: int = 1) -> List:
    """CPU-trainable basic-block ResNet for 32x32 input."""
    def c(ch: int) -> int:
        return max(4, int(round(ch * width)))

    specs: List = [ConvS(c(64), 3, stride=1, padding=1, bias=False), BatchNormS(), ReLUS()]
    in_ch = c(64)
    for channels, first_stride in ((c(64), 1), (c(128), 2), (c(256), 2)):
        for b in range(blocks_per_stage):
            stride = first_stride if b == 0 else 1
            specs.append(_basic_block(channels, stride, in_ch))
            specs.append(ReLUS())
            in_ch = channels
    specs += [GlobalAvgPoolS(), LinearS(num_classes)]
    return specs
