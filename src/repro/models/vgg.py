"""VGG-16 (Simonyan & Zisserman 2014, configuration D)."""

from __future__ import annotations

from typing import List

from repro.models.specs import ConvS, DropoutS, FlattenS, LinearS, MaxPoolS, ReLUS

__all__ = ["vgg16_specs", "vgg16_scaled_specs"]

_CFG_D = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"]


def vgg16_specs(num_classes: int = 1000) -> List:
    """Full ImageNet VGG-16: 13 3x3 convs + 3 FC layers (9.30 GB of conv
    input activations at batch 256)."""
    specs: List = []
    for item in _CFG_D:
        if item == "M":
            specs.append(MaxPoolS(2))
        else:
            specs += [ConvS(item, 3, stride=1, padding=1), ReLUS()]
    specs += [
        FlattenS(),
        LinearS(4096), ReLUS(), DropoutS(0.5),
        LinearS(4096), ReLUS(), DropoutS(0.5),
        LinearS(num_classes),
    ]
    return specs


def vgg16_scaled_specs(num_classes: int = 8, width: float = 0.125) -> List:
    """CPU-trainable VGG: config-D conv stack at reduced width for 32x32
    input (3 pools instead of 5 so the canvas survives)."""
    def c(ch: int) -> int:
        return max(4, int(round(ch * width)))

    cfg = [64, 64, "M", 128, 128, "M", 256, 256, "M"]
    specs: List = []
    for item in cfg:
        if item == "M":
            specs.append(MaxPoolS(2))
        else:
            specs += [ConvS(c(item), 3, stride=1, padding=1), ReLUS()]
    specs += [FlattenS(), LinearS(c(512)), ReLUS(), DropoutS(0.3), LinearS(num_classes)]
    return specs
