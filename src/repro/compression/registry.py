"""Unified codec registry: one API over every compression backend.

The framework originally hard-wired :class:`SZCompressor` into the
compressing saved-tensor context.  Real deployments of the paper's idea
(cuSZ-style codecs behind a ``pack_hook``) swap codecs freely, so this
module defines the contract every codec speaks and a string-keyed
registry for constructing them:

* :class:`Codec` — the protocol: ``compress(x, error_bound=None)``,
  ``decompress(ct)``, ``estimate_nbytes(x, error_bound=None)``, plus
  ``name`` / ``error_bounded`` / ``lossless`` metadata attributes.
  ``error_bound`` is accepted by every codec; codecs without per-element
  error control (the JPEG-class baseline, the lossless baselines) ignore
  it — which is exactly the drawback the paper argues against
  (Section 2.1) and the contract makes explicit.
* :func:`register_codec` / :func:`get_codec` / :func:`available_codecs`
  — the registry.  ``get_codec("szlike", error_bound=1e-3)`` replaces
  direct constructor calls throughout examples and benchmarks.
* :func:`dumps` / :func:`loads` — byte-level serialization for *any*
  registered codec's compressed object (dispatch by type / magic), the
  physical representation a byte arena or a spill file stores.
* :class:`ChunkedCodec` — a wrapper that splits activations along the
  batch axis and compresses/decompresses the chunks concurrently in a
  thread pool (zlib and the vectorized NumPy stages release the GIL, so
  real parallelism is available without processes).

Accounting convention (shared with ``CompressedTensor.nbytes``): every
compressed object's ``nbytes`` counts its binary sections at their exact
serialized size and the variable wire header at the object's fixed
``header_nbytes`` charge, so ``ct.nbytes == len(dumps(ct)) -
wire_header_nbytes(blob) + ct.header_nbytes`` holds for every leaf
codec.  A :class:`ChunkedCompressedTensor` nests: its ``nbytes`` sums
the chunks' (convention-following) footprints plus its own fixed
container-header charge.
"""

from __future__ import annotations

import inspect
import json
import struct
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.utils import profiler as _profiler
from repro.compression.jpeg_like import JpegCompressedTensor, JpegLikeCompressor
from repro.compression.lossless import (
    DeflateCompressor,
    LosslessCompressedTensor,
    SparseLosslessCompressor,
)
from repro.compression.szlike import CompressedTensor, SharedCodebookCache, SZCompressor
from repro.compression.szlike import serialize as _szser

__all__ = [
    "Codec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "spec_of",
    "dumps",
    "loads",
    "wire_header_nbytes",
    "ChunkedCodec",
    "ChunkedCompressedTensor",
    "CHUNK_HEADER_BYTES",
    "ensure_shared_codebook_cache",
]


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class Codec(Protocol):
    """What every registered codec provides."""

    #: registry key the codec was built from
    name: str
    #: True when a per-element absolute error bound is honored
    error_bounded: bool
    #: True when decompress(compress(x)) == x bit-for-bit
    lossless: bool

    def compress(self, x: np.ndarray, error_bound: Optional[float] = None) -> Any:
        """Compress *x*; codecs without error control ignore the bound."""
        ...

    def decompress(self, ct: Any) -> np.ndarray:
        ...

    def estimate_nbytes(self, x: np.ndarray, error_bound: Optional[float] = None) -> float:
        """Expected compressed footprint of *x* (monitoring path)."""
        ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., Codec]] = {}


def register_codec(name: str, factory: Optional[Callable[..., Codec]] = None):
    """Register *factory* under *name* (usable as a decorator)."""

    def _register(f: Callable[..., Codec]):
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"codec {key!r} is already registered")
        _REGISTRY[key] = f
        return f

    return _register(factory) if factory is not None else _register


def get_codec(name: str, **kwargs) -> Codec:
    """Construct a codec by registry key, e.g. ``get_codec("szlike", error_bound=1e-3)``."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None
    return factory(**kwargs)


def available_codecs() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _ctor_defaults(cls) -> Dict[str, Any]:
    """Constructor-parameter defaults of *cls* — the single source of
    truth ``spec_of`` compares against (no hand-copied default tables
    that could drift when a constructor changes)."""
    return {
        name: p.default
        for name, p in inspect.signature(cls.__init__).parameters.items()
        if p.default is not inspect.Parameter.empty
    }


def _nondefault_options(codec, attrs, defaults) -> Dict[str, Any]:
    return {
        attr: getattr(codec, attr)
        for attr in attrs
        if getattr(codec, attr) != defaults[attr]
    }


def spec_of(codec: Codec) -> Dict[str, Any]:
    """Declarative ``{"name": ..., "options": {...}}`` spec for *codec*.

    The inverse of :func:`get_codec`: ``get_codec(spec["name"],
    **spec["options"])`` builds an equivalent instance.  Only
    non-default constructor options are emitted, so a default-built
    codec round-trips to ``{"name": ..., "options": {}}`` — the stable
    canonical form the api layer serializes to JSON.

    Raises :class:`TypeError` for codec types the registry cannot
    describe (hand-rolled codecs outside the registry), and
    :class:`ValueError` for ablation-only modes
    (``emulate_zero_drift``) that are deliberately not serializable.
    """
    if isinstance(codec, SZCompressor):
        if codec.emulate_zero_drift:
            raise ValueError(
                "SZCompressor(emulate_zero_drift=True) is an ablation-only mode "
                "and cannot be captured in a declarative codec spec"
            )
        d = _ctor_defaults(SZCompressor)
        options = _nondefault_options(
            codec,
            ("error_bound", "mode", "dict_size", "lorenzo_ndim", "entropy",
             "zero_filter", "zlib_level", "kernel_backend"),
            d,
        )
        if codec.codebook_cache is not None:
            options["codebook_cache"] = True
            if codec.codebook_cache.refresh_interval != d["codebook_refresh"]:
                options["codebook_refresh"] = codec.codebook_cache.refresh_interval
            if codec.codebook_cache.delta != d["codebook_delta"]:
                options["codebook_delta"] = codec.codebook_cache.delta
        return {"name": "szlike", "options": options}
    if isinstance(codec, JpegCodec):
        options = _nondefault_options(
            codec, ("quality", "zlib_level"), _ctor_defaults(JpegLikeCompressor)
        )
        return {"name": "jpeg", "options": options}
    if isinstance(codec, (DeflateCodec, SparseLosslessCodec)):
        options = _nondefault_options(codec, ("level",), _ctor_defaults(type(codec)))
        return {"name": codec.name, "options": options}
    if isinstance(codec, ChunkedCodec):
        inner_spec = spec_of(codec.inner)
        options = {"inner": inner_spec["name"], **inner_spec["options"]}
        options.update(
            _nondefault_options(
                codec,
                ("workers", "min_chunk_nbytes", "executor", "share_codebook",
                 "shared_cache"),
                _ctor_defaults(ChunkedCodec),
            )
        )
        return {"name": "chunked", "options": options}
    raise TypeError(
        f"cannot describe {type(codec).__name__} as a registry spec; "
        f"declarative configs need a registry codec "
        f"({', '.join(available_codecs())})"
    )


# ---------------------------------------------------------------------------
# Adapters for the non-SZ codecs (normalize the compress signature)
# ---------------------------------------------------------------------------


class _IgnoreBoundMixin:
    """Adapter for codecs without per-element error control.

    ``error_bound`` is accepted and ignored — the only control these
    families offer is their own knob (quality / level), which is exactly
    the drawback the paper argues against (Section 2.1).  The size
    estimate compresses for real: these pipelines are cheap enough that
    the estimate is the actual figure, exact by construction.
    """

    error_bounded = False

    def compress(self, x, error_bound=None):
        return super().compress(x)

    def estimate_nbytes(self, x, error_bound=None):
        return float(self.compress(x).nbytes)

    def roundtrip(self, x, error_bound=None):
        return self.decompress(self.compress(x))


class JpegCodec(_IgnoreBoundMixin, JpegLikeCompressor):
    """JPEG-ACT-style baseline behind the unified Codec API."""

    name = "jpeg"
    lossless = False


class DeflateCodec(_IgnoreBoundMixin, DeflateCompressor):
    """GZIP-class lossless baseline behind the unified Codec API."""

    name = "lossless"
    lossless = True


class SparseLosslessCodec(_IgnoreBoundMixin, SparseLosslessCompressor):
    """CDMA-style sparsity-aware lossless baseline behind the Codec API."""

    name = "sparse-lossless"
    lossless = True


register_codec("szlike", SZCompressor)
register_codec("jpeg", JpegCodec)
register_codec("lossless", DeflateCodec)
register_codec("sparse-lossless", SparseLosslessCodec)


# ---------------------------------------------------------------------------
# Generic serialization (what a byte arena physically stores)
# ---------------------------------------------------------------------------

_JPEG_MAGIC = b"JLRP"
_LOSSLESS_MAGIC = b"LLRP"
_CHUNKED_MAGIC = b"CKRP"
#: magic + header-length word
_GENERIC_FRAMING_BYTES = 8


def _dumps_generic(magic: bytes, header: dict, sections: List[bytes]) -> bytes:
    hbytes = json.dumps(header, separators=(",", ":")).encode()
    return b"".join([magic, struct.pack("<I", len(hbytes)), hbytes, *sections])


def _split_generic(data: bytes) -> Tuple[dict, int]:
    (hlen,) = struct.unpack_from("<I", data, 4)
    header = json.loads(data[_GENERIC_FRAMING_BYTES : _GENERIC_FRAMING_BYTES + hlen].decode())
    return header, _GENERIC_FRAMING_BYTES + hlen


def dumps(ct: Any) -> bytes:
    """Serialize any codec's compressed object to a self-describing blob."""
    if isinstance(ct, CompressedTensor):
        return _szser.dumps(ct)
    if isinstance(ct, JpegCompressedTensor):
        header = {
            "shape": list(ct.shape),
            "dtype": ct.dtype,
            "quality": ct.quality,
            "scale": ct.scale,
            "coeff_dtype": ct.coeff_dtype,
            "padded_shape": list(ct.padded_shape),
            "plen": len(ct.payload),
        }
        return _dumps_generic(_JPEG_MAGIC, header, [ct.payload])
    if isinstance(ct, LosslessCompressedTensor):
        header = {
            "shape": list(ct.shape),
            "dtype": ct.dtype,
            "scheme": ct.scheme,
            "plen": len(ct.payload),
            "blen": len(ct.bitmap),
        }
        return _dumps_generic(_LOSSLESS_MAGIC, header, [ct.payload, ct.bitmap])
    if isinstance(ct, ChunkedCompressedTensor):
        blobs = [dumps(c) for c in ct.chunks]
        header = {
            "shape": list(ct.shape),
            "dtype": ct.dtype,
            "axis": ct.axis,
            "chunk_lengths": [len(b) for b in blobs],
        }
        sections = list(blobs)
        if ct.shared_codebook is not None:
            # the shared length table is written once, after the chunks
            lengths = np.asarray(ct.shared_codebook.lengths, dtype=np.uint8)
            header["shared_codebook_len"] = int(lengths.size)
            sections.append(lengths.tobytes())
        return _dumps_generic(_CHUNKED_MAGIC, header, sections)
    raise TypeError(f"don't know how to serialize {type(ct).__name__}")


def loads(data: bytes) -> Any:
    """Inverse of :func:`dumps` (dispatch on the 4-byte magic)."""
    magic = bytes(data[:4])
    if magic == _szser._MAGIC:
        return _szser.loads(data)
    if magic == _JPEG_MAGIC:
        header, pos = _split_generic(data)
        payload = bytes(data[pos : pos + header["plen"]])
        if pos + header["plen"] != len(data):
            raise ValueError("trailing bytes in serialized tensor")
        return JpegCompressedTensor(
            shape=tuple(header["shape"]),
            dtype=header["dtype"],
            quality=header["quality"],
            scale=header["scale"],
            payload=payload,
            coeff_dtype=header["coeff_dtype"],
            padded_shape=tuple(header["padded_shape"]),
        )
    if magic == _LOSSLESS_MAGIC:
        header, pos = _split_generic(data)
        payload = bytes(data[pos : pos + header["plen"]])
        pos += header["plen"]
        bitmap = bytes(data[pos : pos + header["blen"]])
        if pos + header["blen"] != len(data):
            raise ValueError("trailing bytes in serialized tensor")
        return LosslessCompressedTensor(
            shape=tuple(header["shape"]),
            dtype=header["dtype"],
            scheme=header["scheme"],
            payload=payload,
            bitmap=bitmap,
        )
    if magic == _CHUNKED_MAGIC:
        header, pos = _split_generic(data)
        chunks = []
        for length in header["chunk_lengths"]:
            chunks.append(loads(data[pos : pos + length]))
            pos += length
        shared = None
        cb_len = header.get("shared_codebook_len", 0)
        if cb_len:
            from repro.compression.szlike import HuffmanCodebook

            lengths = np.frombuffer(data[pos : pos + cb_len], dtype=np.uint8).copy()
            pos += cb_len
            shared = HuffmanCodebook.from_lengths(lengths)
            # re-attach the container-owned book to every chunk that
            # serialized only a reference
            for c in chunks:
                if getattr(c, "codebook_shared", False) and c.codebook is None:
                    c.codebook = shared
        if pos != len(data):
            raise ValueError("trailing bytes in serialized tensor")
        return ChunkedCompressedTensor(
            shape=tuple(header["shape"]),
            dtype=header["dtype"],
            axis=header["axis"],
            chunks=chunks,
            shared_codebook=shared,
        )
    raise ValueError("not a serialized compressed tensor (bad magic)")


def wire_header_nbytes(data: bytes) -> int:
    """Framing + header bytes of *data* (the part ``nbytes`` charges at
    the object's fixed ``header_nbytes``), for any codec's blob."""
    magic = bytes(data[:4])
    if magic == _szser._MAGIC:
        return _szser.wire_header_nbytes(data)
    if magic in (_JPEG_MAGIC, _LOSSLESS_MAGIC, _CHUNKED_MAGIC):
        (hlen,) = struct.unpack_from("<I", data, 4)
        return _GENERIC_FRAMING_BYTES + hlen
    raise ValueError("not a serialized compressed tensor (bad magic)")


# ---------------------------------------------------------------------------
# Chunked parallel compression
# ---------------------------------------------------------------------------

#: fixed charge for the chunked container's own wire header
CHUNK_HEADER_BYTES = 32


# Module-level trampolines: ProcessPoolExecutor can only ship picklable
# callables, so per-chunk work is expressed as (codec, args) tuples
# rather than the bound-method closures the thread path uses.
def _profiled_chunk_op(packed):
    """Run a chunk trampoline in a worker *process* under a child-local
    profiler and ship the per-stage timings back with the result.

    Thread workers report straight into the parent's process-wide active
    profiler; a process worker has its own (empty) module global, so the
    encode/decode stage totals would silently vanish at the executor
    boundary.  The parent merges the returned snapshots.
    """
    from repro.utils.profiler import StageProfiler

    op, args = packed
    prof = StageProfiler()
    prof.activate()
    try:
        result = op(args)
    finally:
        prof.deactivate()
    return result, prof.snapshot()


def _chunk_compress(args):
    codec, part, error_bound, codebook, cache_key = args
    if codebook is not None:
        return codec.compress(part, error_bound=error_bound, codebook=codebook)
    if cache_key is not None:
        # Per-chunk cache keys: in a process pool the worker's codec copy
        # consults the (shared) codebook cache, so steady-state chunk
        # compresses adopt published books instead of rebuilding.
        return codec.compress(part, error_bound=error_bound, cache_key=cache_key)
    return codec.compress(part, error_bound=error_bound)


def _chunk_decompress(args):
    codec, ct = args
    return codec.decompress(ct)


def _chunk_estimate(args):
    codec, part, error_bound = args
    return codec.estimate_nbytes(part, error_bound=error_bound)


@dataclass
class ChunkedCompressedTensor:
    """Container for per-chunk compressed objects (split along one axis).

    When the inner codec is Huffman-based, the chunks share **one**
    canonical codebook (built or cache-fetched once per compress call
    instead of once per chunk).  The container owns it: chunks are
    flagged ``codebook_shared`` so their own ``nbytes``/serialized form
    carry only a reference, and the container charges/serializes the
    length table exactly once — "charge on first use, reference
    thereafter".
    """

    shape: tuple
    dtype: str
    axis: int
    chunks: List[Any] = field(default_factory=list)
    #: the one codebook the chunks reference (None when each chunk owns
    #: its own, e.g. non-Huffman inner codecs)
    shared_codebook: Optional[Any] = None

    header_nbytes = CHUNK_HEADER_BYTES

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize if self.shape else 0

    @property
    def nbytes(self) -> int:
        """Sum of the chunk footprints plus the container header, plus
        the shared codebook charged exactly once.

        Each chunk's own ``nbytes`` already follows the exact-sections
        convention (shared-codebook chunks charge only their reference).
        """
        n = sum(c.nbytes for c in self.chunks) + CHUNK_HEADER_BYTES
        if self.shared_codebook is not None:
            n += self.shared_codebook.nbytes
        return n

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes if self.nbytes else 0.0

    @property
    def error_bound(self):
        """The (uniform) absolute bound the chunks were compressed under,
        or None for codecs without one."""
        if not self.chunks:
            return None
        return getattr(self.chunks[0], "error_bound", None)


class ChunkedCodec:
    """Split along the batch axis, compress/decompress chunks concurrently.

    Parameters
    ----------
    inner:
        A :class:`Codec` instance or a registry key (extra kwargs go to
        :func:`get_codec`).
    workers:
        Worker count for whichever executor is selected.
    min_chunk_nbytes:
        Tensors smaller than ``2 * min_chunk_nbytes`` are not split —
        chunking overhead would swamp the win.
    executor:
        ``"thread"`` (default): zlib's deflate/inflate and NumPy's
        vectorized kernels drop the GIL, so threads deliver real
        concurrency without serialization cost.  ``"process"``: a
        process pool that also parallelizes the *GIL-bound* stages —
        chiefly the Huffman codebook build's Python heap loop — at the
        price of pickling chunks across the process boundary.  The
        process pool is created eagerly at construction (forking lazily
        from a multi-threaded engine worker would be hazardous).

    Equivalence contract: the reconstruction is bit-identical to the
    unchunked path whenever the inner codec treats leading-axis slices
    independently — true for the SZ-style codec (Lorenzo prediction
    covers only trailing axes), the JPEG-like codec would differ only via
    its per-tensor scale, and lossless codecs are exact either way.  A
    relative-mode error bound is resolved **once on the whole tensor** so
    every chunk compresses under the same absolute bound.

    Codebook sharing: when the inner codec supports it (the
    Huffman-based SZ compressor, ``supports_codebook_sharing``), the
    first chunk is compressed inline on the calling thread and its
    canonical codebook — freshly built with the escape marker reserved,
    or fetched from the inner codec's cross-iteration cache — is
    injected into the remaining chunks' compress calls.  That removes
    the per-chunk GIL-bound tree builds (the reason
    ``executor="process"`` exists) and makes the whole tensor's entropy
    stage amortizable across training steps via ``cache_key``; chunk
    symbols the shared book does not cover escape to the outlier
    channel, so the error bound is unaffected.  Disable with
    ``share_codebook=False`` to restore per-chunk builds.
    """

    name = "chunked"
    #: compress accepts cache_key= (forwarded to the inner codec's
    #: cross-iteration codebook cache)
    supports_cache_key = True

    def __init__(
        self,
        inner: Any = "szlike",
        *,
        workers: int = 4,
        min_chunk_nbytes: int = 1 << 20,
        executor: str = "thread",
        share_codebook: bool = True,
        shared_cache: bool = True,
        **inner_kwargs,
    ):
        if isinstance(inner, str):
            inner = get_codec(inner, **inner_kwargs)
        elif inner_kwargs:
            raise TypeError("inner_kwargs are only valid with a registry-key inner")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_chunk_nbytes < 1:
            raise ValueError(f"min_chunk_nbytes must be >= 1, got {min_chunk_nbytes}")
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        self.inner = inner
        self.workers = int(workers)
        self.min_chunk_nbytes = int(min_chunk_nbytes)
        self.executor = executor
        self.share_codebook = bool(share_codebook)
        self.shared_cache = bool(shared_cache)
        # A plain CodebookCache empties itself at the process boundary,
        # so a process-pool inner would rebuild canonical books in every
        # worker.  Upgrade it to the serialized-segment shared cache —
        # same keys, same staleness checks, same escape contract — so
        # workers adopt published books instead of rebuilding.
        inner_cache = getattr(inner, "codebook_cache", None)
        if (
            executor == "process"
            and self.shared_cache
            and inner_cache is not None
            and not isinstance(inner_cache, SharedCodebookCache)
        ):
            inner.codebook_cache = SharedCodebookCache.from_cache(inner_cache)
        self.error_bounded = bool(getattr(inner, "error_bounded", False))
        self.lossless = bool(getattr(inner, "lossless", False))
        # Persistent pool: compress/decompress sit on the per-layer
        # per-iteration pack/unpack hot path, so worker churn per call
        # would be pure overhead.  Threads are created lazily; a process
        # pool forks all its workers now (ProcessPoolExecutor spawns on
        # first submit, so a no-op is pushed through) while the process
        # is still single-threaded — forking later from e.g. an async
        # engine worker could inherit held locks into the children.
        self._pool: Optional[Any] = None
        if executor == "process" and self.workers > 1:
            # workers == 1 always takes _run's inline path; don't fork a
            # pool that could never be used.
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._pool.submit(int).result()

    # -- helpers ---------------------------------------------------------
    def _num_chunks(self, x: np.ndarray) -> int:
        if x.ndim == 0 or x.shape[0] < 2 or x.nbytes < 2 * self.min_chunk_nbytes:
            return 1
        by_size = max(1, x.nbytes // self.min_chunk_nbytes)
        return int(min(self.workers, x.shape[0], by_size))

    def _run(self, op, arg_lists: List[tuple], inline) -> List[Any]:
        """Fan per-chunk work out to the configured executor.

        *op* is a module-level trampoline taking ``(inner, *args)`` (the
        picklable form the process pool needs); *inline* is the
        equivalent direct call used for the no-parallelism fast path.
        """
        if self.workers <= 1 or len(arg_lists) <= 1:
            return [inline(*args) for args in arg_lists]
        if self.executor == "process":
            # Never recreate a process pool lazily: after close() or
            # unpickling, the process may be multi-threaded (async engine
            # workers) and forking then can inherit held locks.  Degrade
            # to inline serial execution instead.
            if self._pool is None:
                return [inline(*args) for args in arg_lists]
            packed = [(self.inner, *args) for args in arg_lists]
            active = _profiler.get_active()
            if active is None:
                return list(self._pool.map(op, packed))
            # Profiling run: each chunk executes under a child-local
            # profiler and its stage snapshot is merged back here, so
            # encode/decode totals survive the process boundary.
            results = []
            for result, snap in self._pool.map(_profiled_chunk_op, [(op, p) for p in packed]):
                active.merge(snap)
                results.append(result)
            return results
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="chunked-codec"
            )
        return list(self._pool.map(lambda args: inline(*args), arg_lists))

    def close(self) -> None:
        """Shut down the worker pool.  A thread pool is recreated lazily
        if the codec is used again; a closed process-backed codec keeps
        working but runs its chunks inline (serially)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None  # executors don't pickle; rebuilt on use
        return state

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- Codec API -------------------------------------------------------
    def compress(
        self,
        x: np.ndarray,
        error_bound: Optional[float] = None,
        *,
        cache_key: Optional[Any] = None,
    ) -> ChunkedCompressedTensor:
        x = np.asarray(x)
        if error_bound is None and hasattr(self.inner, "resolve_error_bound"):
            error_bound = self.inner.resolve_error_bound(x)
        n = self._num_chunks(x)
        parts = np.array_split(x, n, axis=0) if n > 1 else [x]
        supports_key = getattr(self.inner, "supports_cache_key", False)
        shared = None
        if n > 1 and self.share_codebook and getattr(
            self.inner, "supports_codebook_sharing", False
        ):
            # Compress the first chunk inline — its book (built with the
            # escape marker reserved, or fetched from the inner codec's
            # cross-iteration cache) becomes the shared book for the
            # remaining chunks, which skip their own builds.  Batch-axis
            # slices of one activation share their code distribution, so
            # the first chunk is a representative sample; any symbol it
            # missed escapes through the inner codec's outlier channel.
            first = self.inner.compress(
                parts[0], error_bound=error_bound,
                cache_key=cache_key, reserve_marker=True,
            )
            shared = first.codebook  # None for book-less entropy stages
            rest = self._run(
                _chunk_compress,
                [(p, error_bound, shared, None) for p in parts[1:]],
                lambda p, eb, cb, ck: self.inner.compress(p, error_bound=eb, codebook=cb)
                if cb is not None
                else self.inner.compress(p, error_bound=eb),
            )
            chunks = [first] + rest
        elif n == 1 and cache_key is not None and supports_key:
            # unsplit tensors still amortize through the inner cache
            chunks = [self.inner.compress(parts[0], error_bound=error_bound, cache_key=cache_key)]
        else:
            # Without codebook sharing, chunks amortize individually: each
            # chunk index gets its own stable cache key, so its book reuse
            # decisions depend only on that chunk's own history (the same
            # per-key independence the cache's determinism rests on).
            chunk_keys = supports_key and cache_key is not None
            chunks = self._run(
                _chunk_compress,
                [
                    (
                        p,
                        error_bound,
                        None,
                        (cache_key, "chunk", i) if chunk_keys else None,
                    )
                    for i, p in enumerate(parts)
                ],
                lambda p, eb, cb, ck: self.inner.compress(p, error_bound=eb, cache_key=ck)
                if ck is not None
                else self.inner.compress(p, error_bound=eb),
            )
        container_book = None
        if shared is not None:
            # The container owns the shared book; chunks that actually
            # used it (a chunk falls back to a private build when the
            # injected book lacks a usable outlier marker) carry only a
            # reference in their own nbytes/serialized form.
            for c in chunks:
                if c.codebook is not None and np.array_equal(c.codebook.lengths, shared.lengths):
                    c.codebook = shared
                    c.codebook_shared = True
                    container_book = shared
        return ChunkedCompressedTensor(
            shape=x.shape, dtype=str(x.dtype), axis=0, chunks=chunks,
            shared_codebook=container_book,
        )

    def decompress(self, ct: ChunkedCompressedTensor) -> np.ndarray:
        if not isinstance(ct, ChunkedCompressedTensor):
            return self.inner.decompress(ct)
        parts = self._run(
            _chunk_decompress, [(c,) for c in ct.chunks], self.inner.decompress
        )
        out = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=ct.axis)
        return out.reshape(ct.shape)

    def estimate_nbytes(self, x: np.ndarray, error_bound: Optional[float] = None) -> float:
        """Expected compressed footprint, cache-aware: under codebook
        sharing the container-owned book is charged **once**, matching
        :attr:`ChunkedCompressedTensor.nbytes` (each per-chunk estimate
        charges a private book; actual shared-book chunks carry only a
        reference)."""
        x = np.asarray(x)
        if error_bound is None and hasattr(self.inner, "resolve_error_bound"):
            error_bound = self.inner.resolve_error_bound(x)
        n = self._num_chunks(x)
        parts = np.array_split(x, n, axis=0) if n > 1 else [x]
        ests = self._run(
            _chunk_estimate,
            [(p, error_bound) for p in parts],
            lambda p, eb: self.inner.estimate_nbytes(p, error_bound=eb),
        )
        est = float(sum(ests)) + CHUNK_HEADER_BYTES
        if (
            n > 1
            and self.share_codebook
            and getattr(self.inner, "supports_codebook_sharing", False)
            and getattr(self.inner, "entropy", "") in ("huffman", "huffman+zlib")
        ):
            est -= (n - 1) * self.inner.dict_size
        return est

    def roundtrip(self, x: np.ndarray, error_bound: Optional[float] = None) -> np.ndarray:
        return self.decompress(self.compress(x, error_bound))


register_codec("chunked", ChunkedCodec)


def ensure_shared_codebook_cache(
    codec: Any,
    segment_path: Optional[str] = None,
    owner: Optional[str] = None,
) -> bool:
    """Upgrade *codec*'s codebook cache to a :class:`SharedCodebookCache`.

    Recurses through :class:`ChunkedCodec` wrappers to the inner codec.
    Returns True when the codec now has (or already had) a shared cache;
    False for codecs without a codebook cache (nothing to share — e.g.
    jpeg/lossless, or ``codebook_cache=False``), which is a no-op, not
    an error: a session-wide switch must tolerate mixed rule codecs.

    *segment_path* points the cache at an existing shared segment (the
    multi-tenant server passes one file every tenant adopts from; the
    caller owns that file's lifetime).  A codec whose cache is already
    shared but on a different segment is re-pointed, keeping its
    staleness knobs.  *owner* labels this participant's publishes for
    the segment's adoption ledger.
    """
    if isinstance(codec, ChunkedCodec):
        return ensure_shared_codebook_cache(codec.inner, segment_path, owner)
    cache = getattr(codec, "codebook_cache", None)
    if cache is None:
        return False
    if isinstance(cache, SharedCodebookCache):
        if segment_path is None or cache.segment_path == segment_path:
            if owner is not None:
                cache.owner = owner
            return True
        cache.close()  # drop the private segment before re-pointing
    codec.codebook_cache = SharedCodebookCache.from_cache(
        cache, segment_path=segment_path, owner=owner
    )
    return True
