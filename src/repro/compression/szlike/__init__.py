"""SZ/cuSZ-style error-bounded lossy compressor (CPU re-implementation)."""

from repro.compression.szlike.compressor import SZCompressor, CompressedTensor
from repro.compression.szlike.codebook_cache import CodebookCache, SharedCodebookCache
from repro.compression.szlike.huffman import (
    HuffmanCodebook,
    build_codebook,
    entropy_bits,
    entropy_bits_from_hist,
    histogram,
    huffman_decode,
    huffman_encode,
)
from repro.compression.szlike.lorenzo import lorenzo_decode, lorenzo_encode
from repro.compression.szlike.serialize import dumps, loads
from repro.compression.szlike.quantizer import (
    QuantizedResiduals,
    codes_from_residuals,
    prequantize,
    reconstruct,
    residuals_from_codes,
)

__all__ = [
    "SZCompressor",
    "dumps",
    "loads",
    "CompressedTensor",
    "CodebookCache",
    "SharedCodebookCache",
    "HuffmanCodebook",
    "build_codebook",
    "entropy_bits",
    "entropy_bits_from_hist",
    "histogram",
    "huffman_decode",
    "huffman_encode",
    "lorenzo_decode",
    "lorenzo_encode",
    "QuantizedResiduals",
    "codes_from_residuals",
    "prequantize",
    "reconstruct",
    "residuals_from_codes",
]
