"""Byte-level serialization of compressed tensors.

``CompressedTensor.nbytes`` is an accounting estimate; this module makes
it concrete: a compressed tensor becomes one self-describing byte string
(JSON header + binary sections) that can be written to disk, shipped over
a socket, or held in a byte arena — what an actual deployment of the
framework would store instead of live Python objects.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.compression.szlike.compressor import CompressedTensor
from repro.compression.szlike.huffman import HuffmanCodebook

__all__ = ["dumps", "loads", "wire_header_nbytes", "WIRE_FRAMING_BYTES"]

_MAGIC = b"SZRP"
_VERSION = 1

#: fixed framing: magic + header-length word + payload-length word
WIRE_FRAMING_BYTES = 16


def wire_header_nbytes(data: bytes) -> int:
    """Bytes of *data* spent on framing plus the JSON header.

    This is exactly the portion :attr:`CompressedTensor.nbytes` charges
    at the fixed ``HEADER_BYTES`` convention, so for any compressed
    tensor ``ct``::

        ct.nbytes == len(dumps(ct)) - wire_header_nbytes(dumps(ct)) + HEADER_BYTES
    """
    if data[:4] != _MAGIC:
        raise ValueError("not a serialized compressed tensor (bad magic)")
    (hlen,) = struct.unpack_from("<I", data, 4)
    return WIRE_FRAMING_BYTES + hlen


def dumps(ct: CompressedTensor) -> bytes:
    """Serialize *ct* to a self-describing byte string."""
    # A shared codebook is serialized by its owning container (one length
    # table for all chunks); the chunk itself carries only the reference
    # flag — exactly what its ``nbytes`` charges.
    write_codebook = ct.codebook is not None and not ct.codebook_shared
    header = {
        "v": _VERSION,
        "shape": list(ct.shape),
        "dtype": ct.dtype,
        "eb": ct.error_bound,
        "radius": ct.radius,
        "lorenzo_ndim": ct.lorenzo_ndim,
        "entropy": ct.entropy,
        "total_bits": ct.total_bits,
        "count": ct.count,
        "zero_filter": ct.zero_filter,
        "raw_codes_dtype": ct.raw_codes_dtype,
        "outlier_dtype": str(ct.outliers.dtype),
        "outlier_count": int(ct.outliers.size),
        "has_codebook": write_codebook,
        "chunk_count": 0 if ct.chunk_offsets is None else int(ct.chunk_offsets.size),
    }
    if ct.codebook_shared:
        header["codebook_shared"] = True
    hbytes = json.dumps(header, separators=(",", ":")).encode()
    parts = [_MAGIC, struct.pack("<I", len(hbytes)), hbytes]
    parts.append(struct.pack("<Q", len(ct.payload)))
    parts.append(ct.payload)
    parts.append(ct.outliers.tobytes())
    if ct.chunk_offsets is not None:
        parts.append(ct.chunk_offsets.astype(np.int64).tobytes())
    if write_codebook:
        parts.append(ct.codebook.lengths.astype(np.uint8).tobytes())
    return b"".join(parts)


def loads(data: bytes) -> CompressedTensor:
    """Inverse of :func:`dumps`."""
    if data[:4] != _MAGIC:
        raise ValueError("not a serialized compressed tensor (bad magic)")
    (hlen,) = struct.unpack_from("<I", data, 4)
    pos = 8
    header = json.loads(data[pos : pos + hlen].decode())
    pos += hlen
    if header["v"] != _VERSION:
        raise ValueError(f"unsupported version {header['v']}")
    (plen,) = struct.unpack_from("<Q", data, pos)
    pos += 8
    payload = bytes(data[pos : pos + plen])
    pos += plen
    odt = np.dtype(header["outlier_dtype"])
    osz = header["outlier_count"] * odt.itemsize
    outliers = np.frombuffer(data[pos : pos + osz], dtype=odt).copy()
    pos += osz
    chunk_offsets = None
    if header["chunk_count"]:
        csz = header["chunk_count"] * 8
        chunk_offsets = np.frombuffer(data[pos : pos + csz], dtype=np.int64).copy()
        pos += csz
    codebook = None
    if header["has_codebook"]:
        # alphabet size = 2 * radius quantization codes
        asz = 2 * header["radius"]
        lengths = np.frombuffer(data[pos : pos + asz], dtype=np.uint8).copy()
        pos += asz
        codebook = HuffmanCodebook.from_lengths(lengths)
    if pos != len(data):
        raise ValueError(f"trailing bytes in serialized tensor ({len(data) - pos})")
    return CompressedTensor(
        shape=tuple(header["shape"]),
        dtype=header["dtype"],
        error_bound=header["eb"],
        radius=header["radius"],
        lorenzo_ndim=header["lorenzo_ndim"],
        entropy=header["entropy"],
        payload=payload,
        total_bits=header["total_bits"],
        count=header["count"],
        outliers=outliers,
        chunk_offsets=chunk_offsets,
        codebook=codebook,
        zero_filter=header["zero_filter"],
        raw_codes_dtype=header["raw_codes_dtype"],
        # a shared-codebook chunk comes back bookless; the chunked
        # container's loads() re-attaches the shared book
        codebook_shared=header.get("codebook_shared", False),
    )
