"""Dual-quantization (cuSZ) with linear-scaling error control.

cuSZ first *pre-quantizes* the floating-point input onto a uniform grid of
pitch ``2*eb`` so that all later stages operate on integers and the
reconstruction error is bounded by construction:

    q   = round(x / (2*eb))          (prequantization)
    x'  = q * (2*eb)                 (reconstruction)
    =>  |x - x'| <= eb               (absolute error bound)

The Lorenzo residuals of ``q`` are then mapped to bounded *quantization
codes* around a radius; residuals outside the code range are "outliers"
stored verbatim.  Code value 0 is reserved as the outlier marker, exactly
as in SZ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["prequantize", "reconstruct", "codes_from_residuals", "residuals_from_codes", "QuantizedResiduals"]


def prequantize(x: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize *x* onto the ``2*eb`` grid, returning int64 grid indices."""
    if error_bound <= 0:
        raise ValueError(f"error bound must be positive, got {error_bound}")
    # rint keeps ties-to-even like cuSZ's round; int64 avoids overflow for
    # small error bounds on large-magnitude data.
    return np.rint(np.asarray(x, dtype=np.float64) / (2.0 * error_bound)).astype(np.int64)


def reconstruct(q: np.ndarray, error_bound: float, dtype=np.float32) -> np.ndarray:
    """Map grid indices back to floating point values.

    The error-bound contract: the reconstruction is computed in float64,
    where ``|x - q * 2*eb| <= eb`` holds exactly (up to float64 rounding
    of the product, i.e. well below any float32 ulp).  Requesting a
    narrower output ``dtype`` adds at most half an ulp of the value
    magnitude on top of ``eb`` — the same caveat real cuSZ carries.
    Pass ``dtype=np.float64`` to keep the guarantee exact.
    """
    out = q.astype(np.float64) * (2.0 * error_bound)
    dtype = np.dtype(dtype)
    return out if dtype == np.float64 else out.astype(dtype)


@dataclass
class QuantizedResiduals:
    """Bounded quantization codes plus the escaped outlier residuals.

    ``codes`` is a flat ``uint16``/``uint32`` array over the original
    element order; positions holding the reserved value 0 take their
    residual from ``outliers`` (in order of appearance).
    """

    codes: np.ndarray
    outliers: np.ndarray
    radius: int
    shape: tuple

    @property
    def outlier_count(self) -> int:
        return int(self.outliers.size)

    @property
    def outlier_ratio(self) -> float:
        n = int(np.prod(self.shape)) if self.shape else 0
        return self.outlier_count / n if n else 0.0


def codes_from_residuals(delta: np.ndarray, radius: int = 512) -> QuantizedResiduals:
    """Map Lorenzo residuals to codes ``delta + radius`` in ``(0, 2*radius)``.

    Residuals with ``|delta| >= radius`` cannot be represented and are
    escaped into the outlier array (marker code 0).
    """
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    flat = delta.reshape(-1)
    shifted = flat + radius
    inlier = (shifted > 0) & (shifted < 2 * radius)
    dtype = np.uint16 if 2 * radius <= np.iinfo(np.uint16).max else np.uint32
    codes = np.where(inlier, shifted, 0).astype(dtype)
    outliers = flat[~inlier].astype(np.int64)
    return QuantizedResiduals(codes=codes, outliers=outliers, radius=radius, shape=delta.shape)


def residuals_from_codes(qr: QuantizedResiduals) -> np.ndarray:
    """Invert :func:`codes_from_residuals` back to int64 residuals."""
    delta = qr.codes.astype(np.int64) - qr.radius
    mask = qr.codes == 0
    n_out = int(mask.sum())
    if n_out != qr.outliers.size:
        raise ValueError(
            f"outlier bookkeeping mismatch: {n_out} markers vs {qr.outliers.size} stored values"
        )
    if n_out:
        delta[mask] = qr.outliers
    return delta.reshape(qr.shape)
