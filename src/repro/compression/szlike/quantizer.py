"""Dual-quantization (cuSZ) with linear-scaling error control.

cuSZ first *pre-quantizes* the floating-point input onto a uniform grid of
pitch ``2*eb`` so that all later stages operate on integers and the
reconstruction error is bounded by construction:

    q   = round(x / (2*eb))          (prequantization)
    x'  = q * (2*eb)                 (reconstruction)
    =>  |x - x'| <= eb               (absolute error bound)

The Lorenzo residuals of ``q`` are then mapped to bounded *quantization
codes* around a radius; residuals outside the code range are "outliers"
stored verbatim.  Code value 0 is reserved as the outlier marker, exactly
as in SZ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.numpy_backend import (
    apply_outliers,
    bounded_codes_into,
    prequantize_grid_into,
)

__all__ = [
    "prequantize",
    "prequantize_into",
    "reconstruct",
    "codes_from_residuals",
    "codes_from_residuals_into",
    "residuals_from_codes",
    "QuantizedResiduals",
]


def prequantize(x: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize *x* onto the ``2*eb`` grid, returning int64 grid indices."""
    if error_bound <= 0:
        raise ValueError(f"error bound must be positive, got {error_bound}")
    # rint keeps ties-to-even like cuSZ's round; int64 avoids overflow for
    # small error bounds on large-magnitude data.
    return np.rint(np.asarray(x, dtype=np.float64) / (2.0 * error_bound)).astype(np.int64)


def prequantize_into(x: np.ndarray, error_bound: float, out: np.ndarray, work: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`prequantize` over caller-owned buffers.

    Bit-identical to :func:`prequantize` (same float64 divide + rint +
    int64 cast), but the float64 staging array (*work*) and the int64
    result (*out*) come from the caller — typically a
    :class:`~repro.utils.scratch.ScratchPool` — so the steady-state
    compress path allocates nothing here.
    """
    # The loop body lives in the kernels layer (the reference backend's
    # building block); this wrapper keeps the historical public API.
    return prequantize_grid_into(x, error_bound, out, work)


def reconstruct(q: np.ndarray, error_bound: float, dtype=np.float32) -> np.ndarray:
    """Map grid indices back to floating point values.

    The error-bound contract: the reconstruction is computed in float64,
    where ``|x - q * 2*eb| <= eb`` holds exactly (up to float64 rounding
    of the product, i.e. well below any float32 ulp).  Requesting a
    narrower output ``dtype`` adds at most half an ulp of the value
    magnitude on top of ``eb`` — the same caveat real cuSZ carries.
    Pass ``dtype=np.float64`` to keep the guarantee exact.
    """
    out = q.astype(np.float64) * (2.0 * error_bound)
    dtype = np.dtype(dtype)
    return out if dtype == np.float64 else out.astype(dtype)


@dataclass
class QuantizedResiduals:
    """Bounded quantization codes plus the escaped outlier residuals.

    ``codes`` is a flat ``uint16``/``uint32`` array over the original
    element order; positions holding the reserved value 0 take their
    residual from ``outliers`` (in order of appearance).
    """

    codes: np.ndarray
    outliers: np.ndarray
    radius: int
    shape: tuple

    @property
    def outlier_count(self) -> int:
        return int(self.outliers.size)

    @property
    def outlier_ratio(self) -> float:
        n = int(np.prod(self.shape)) if self.shape else 0
        return self.outlier_count / n if n else 0.0


def codes_from_residuals(delta: np.ndarray, radius: int = 512) -> QuantizedResiduals:
    """Map Lorenzo residuals to codes ``delta + radius`` in ``(0, 2*radius)``.

    Residuals with ``|delta| >= radius`` cannot be represented and are
    escaped into the outlier array (marker code 0).
    """
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    flat = delta.reshape(-1)
    shifted = flat + radius
    inlier = (shifted > 0) & (shifted < 2 * radius)
    dtype = np.uint16 if 2 * radius <= np.iinfo(np.uint16).max else np.uint32
    codes = np.where(inlier, shifted, 0).astype(dtype)
    outliers = flat[~inlier].astype(np.int64)
    return QuantizedResiduals(codes=codes, outliers=outliers, radius=radius, shape=delta.shape)


def codes_from_residuals_into(
    delta: np.ndarray,
    radius: int,
    *,
    shifted: np.ndarray,
    mask: np.ndarray,
    work_mask: np.ndarray,
    codes: np.ndarray,
) -> QuantizedResiduals:
    """Allocation-lean :func:`codes_from_residuals` over caller buffers.

    *shifted* (int64), *mask*/*work_mask* (bool), and *codes* (the
    output dtype, ``uint16``/``uint32``) are flat buffers of
    ``delta.size`` elements, typically pooled scratch; only the (small)
    outlier array is freshly allocated.  Semantics are identical to
    :func:`codes_from_residuals`.
    """
    codes, outliers = bounded_codes_into(
        delta, radius, shifted=shifted, mask=mask, work_mask=work_mask, codes=codes
    )
    return QuantizedResiduals(codes=codes, outliers=outliers, radius=radius, shape=delta.shape)


def residuals_from_codes(qr: QuantizedResiduals) -> np.ndarray:
    """Invert :func:`codes_from_residuals` back to int64 residuals."""
    return apply_outliers(qr.codes, qr.outliers, qr.radius).reshape(qr.shape)
