"""Cross-iteration Huffman codebook caching (the amortized entropy stage).

cuSZ (Tian et al. 2020) treats Huffman codebook construction as an
amortizable *setup* cost: activation code distributions are stable
across adjacent training iterations, so a codebook built at step *t* is
near-optimal at step *t+1*.  Our canonical builder is a Python heap loop
(:func:`~repro.compression.szlike.huffman._huffman_lengths`) — exactly
the GIL-bound stage the chunked codec's process pool exists for — and
the dense decode tables are another per-codebook build.  Reusing the
book across steps removes both from the steady-state path.

:class:`CodebookCache` keeps one canonical codebook per *tensor key*
(the saved-tensor path passes the layer name, so each conv layer
amortizes independently).  Every lookup hands in the fresh symbol
histogram (the single ``bincount`` the compress call already produces)
and the cache decides, cheaply, whether the cached book is still good:

* **Staleness (δ) check** — the exact cost of coding the new data with
  the cached book is one dot product, ``hist · lengths`` (unseen
  symbols priced at the escape cost below).  The best any fresh book
  could do is bounded below by ``max(shannon_bits(hist), count)``
  (canonical Huffman spends at least one bit per symbol).  When the
  cached cost exceeds that floor by more than ``delta``, rebuild.
* **Refresh interval** — rebuild unconditionally every
  ``refresh_interval`` uses, a drift backstop independent of δ.
* **Correctness escape** — symbols with *no codeword* under the cached
  book cannot be encoded.  The compressor demotes them to the existing
  outlier channel (marker code 0, residual stored verbatim), so the
  error bound holds unconditionally; the cache only vets viability
  (the marker itself must have a codeword, and the escape volume must
  stay under ``max_escape_ratio``) and otherwise forces a rebuild.

Reuse decisions for a key depend only on that key's own lookup history,
so per-layer keys keep the async engine bit-identical to the sync
engine: each layer packs once per iteration, in a deterministic order.
All state is behind one lock — the chunked codec's thread workers and
the async engine's pack pool share a single compressor instance.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.compression.szlike.huffman import HuffmanCodebook, entropy_bits_from_hist

try:  # POSIX advisory file locking for the shared segment (see below)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["CodebookCache", "SharedCodebookCache"]

#: accounting price of one escaped symbol, in bits: the marker codeword
#: is charged separately via ``lengths[0]``; the escaped residual itself
#: is stored verbatim as (at least) an int32 outlier
ESCAPE_BITS = 32


class _Entry:
    __slots__ = ("codebook", "uses_since_build")

    def __init__(self, codebook: HuffmanCodebook):
        self.codebook = codebook
        self.uses_since_build = 0


class CodebookCache:
    """Per-key reuse of canonical Huffman codebooks across iterations.

    Parameters
    ----------
    refresh_interval:
        Rebuild a key's codebook after this many reuses regardless of
        the staleness check (``0`` disables the periodic refresh).
    delta:
        Staleness tolerance: rebuild when the cached book's actual
        bits on the new histogram exceed the fresh-codebook floor
        ``max(shannon_bits, count)`` by more than this fraction.
    max_escape_ratio:
        Ceiling on the fraction of symbols that may be demoted to the
        outlier channel under a cached book; beyond it a rebuild is
        cheaper than the escape traffic.
    max_entries:
        LRU capacity (one entry per tensor key).
    """

    def __init__(
        self,
        refresh_interval: int = 64,
        delta: float = 0.10,
        max_escape_ratio: float = 0.02,
        max_entries: int = 512,
    ):
        if refresh_interval < 0:
            raise ValueError(f"refresh_interval must be >= 0, got {refresh_interval}")
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if not 0 <= max_escape_ratio <= 1:
            raise ValueError(f"max_escape_ratio must be in [0, 1], got {max_escape_ratio}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.refresh_interval = int(refresh_interval)
        self.delta = float(delta)
        self.max_escape_ratio = float(max_escape_ratio)
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        # -- statistics ----------------------------------------------------
        self.hits = 0  # lookups served by the cached book
        self.builds = 0  # first-time builds (cold keys)
        self.rebuilds_delta = 0  # staleness check tripped
        self.rebuilds_refresh = 0  # periodic refresh tripped
        self.rebuilds_escape = 0  # escape path not viable
        self.escaped_symbols = 0  # symbols demoted under cached books
        self.evictions = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "codebook_cache")

    # -- internals ---------------------------------------------------------
    @staticmethod
    def reserve_marker(hist: np.ndarray) -> np.ndarray:
        """Give the outlier marker (symbol 0) a codeword even when the
        build histogram has no outliers: a cached/shared book must be
        able to *escape* unseen symbols later, and the marker is the
        escape hatch.  Costs one pseudo-count (a near-zero bit price)."""
        if hist[0] == 0:
            hist = hist.copy()
            hist[0] = 1
        return hist

    def _install(self, key: Hashable, book: HuffmanCodebook) -> None:
        """Store a freshly built book for *key* (callers hold the lock)."""
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(book)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            entry.codebook = book
            entry.uses_since_build = 0

    def _stale_reason(self, entry: _Entry, hist: np.ndarray) -> Optional[str]:
        """Why the cached book must be rebuilt for *hist* (None = fresh
        enough; escapes, if any, are viable)."""
        if self.refresh_interval and entry.uses_since_build >= self.refresh_interval:
            return "refresh"
        lengths = entry.codebook.lengths
        if lengths.size < hist.size:
            return "escape"  # alphabet grew; cached book cannot cover it
        lengths = lengths[: hist.size].astype(np.int64)
        covered = lengths > 0
        escaped = int(hist[~covered].sum())
        count = int(hist.sum())
        if escaped:
            # Demotion is only expressible through the outlier marker, and
            # only worthwhile in small volume.
            if lengths[0] == 0 or escaped > self.max_escape_ratio * count:
                return "escape"
        actual_bits = float(np.dot(hist[covered].astype(np.float64), lengths[covered]))
        actual_bits += escaped * (int(lengths[0]) + ESCAPE_BITS)
        # What would a fresh book cost?  Without building it: Huffman's
        # redundancy over Shannon is at most p1 + 0.086 bits/symbol
        # (Gallager 1978, p1 = most-frequent-symbol probability), and
        # never below 1 bit/symbol.  Using the *upper* bound as the
        # fresh estimate makes the check reuse-friendly: a book rebuilt
        # on an identical distribution can never look stale.
        p1 = float(hist.max()) / count if count else 0.0
        fresh_est = max(
            entropy_bits_from_hist(hist) + (p1 + 0.086) * count, float(count)
        )
        if actual_bits > (1.0 + self.delta) * fresh_est:
            return "delta"
        return None

    # -- API ---------------------------------------------------------------
    def lookup(self, key: Hashable, hist: np.ndarray) -> Tuple[HuffmanCodebook, bool]:
        """Return ``(codebook, reused)`` for *key* given the fresh symbol
        histogram.  ``reused`` is False when the book was (re)built this
        call — the caller must still demote any uncovered symbols to the
        outlier channel when ``reused`` is True.

        The expensive tree build runs *outside* the cache lock, so
        other keys' lookups never stall behind one key's rebuild (the
        engine's pack workers and the chunked codec's pool share one
        cache).  A concurrent rebuild of the same key is last-writer-wins
        — each caller returns the book it built, both valid for their
        own histograms.
        """
        hist = np.asarray(hist)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.builds += 1
            else:
                self._entries.move_to_end(key)
                reason = self._stale_reason(entry, hist)
                if reason is None:
                    entry.uses_since_build += 1
                    self.hits += 1
                    return entry.codebook, True
                if reason == "delta":
                    self.rebuilds_delta += 1
                elif reason == "refresh":
                    self.rebuilds_refresh += 1
                else:
                    self.rebuilds_escape += 1
        book = HuffmanCodebook.from_frequencies(self.reserve_marker(hist))
        with self._lock:
            self._install(key, book)
        return book, False

    def note_escapes(self, n: int) -> None:
        """Record *n* symbols demoted to the outlier channel under a
        cached book (called by the compressor after demotion)."""
        with self._lock:
            self.escaped_symbols += int(n)

    def invalidate(self, key: Hashable = None) -> None:
        """Forget one key's codebook (or all of them)."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    @property
    def rebuilds(self) -> int:
        with self._lock:
            return self.rebuilds_delta + self.rebuilds_refresh + self.rebuilds_escape

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "builds": self.builds,
                "rebuilds_delta": self.rebuilds_delta,
                "rebuilds_refresh": self.rebuilds_refresh,
                "rebuilds_escape": self.rebuilds_escape,
                "escaped_symbols": self.escaped_symbols,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        # One snapshot under the (non-reentrant) lock; len(self) and the
        # rebuilds property would deadlock here, so read fields directly.
        with self._lock:
            entries = len(self._entries)
            hits = self.hits
            builds = self.builds
            rebuilds = (
                self.rebuilds_delta + self.rebuilds_refresh + self.rebuilds_escape
            )
        return (
            f"CodebookCache(entries={entries}, hits={hits}, "
            f"builds={builds}, rebuilds={rebuilds})"
        )

    # Caches don't pickle their contents (the process-pool chunked codec
    # ships the inner compressor to workers; each worker re-warms its
    # own): state resets to empty, knobs survive.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_entries"] = OrderedDict()
        state["_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "codebook_cache")


class SharedCodebookCache(CodebookCache):
    """Cross-process codebook cache over a serialized-segment file.

    The plain :class:`CodebookCache` empties itself when pickled, so
    every ``ChunkedCodec(executor="process")`` worker used to rebuild
    canonical books from scratch — the exact amortization the cache
    exists to provide, lost at the process boundary.  This subclass
    backs the same API with one shared *segment*: a small file holding
    ``{key: lengths_bytes}`` for every published codebook (canonical
    books are fully determined by their length arrays, so the wire cost
    is one byte per alphabet symbol per key).

    * **Publish** — whenever a lookup (re)builds a book, the process's
      entries are merged into the segment under an exclusive
      ``fcntl.flock`` (read-merge-write, so concurrent publishers never
      lose each other's keys).  Hits never publish.
    * **Adopt** — a lookup for a locally unknown key first consults the
      segment (shared ``flock``) and installs the published book via
      :meth:`HuffmanCodebook.from_lengths` — an O(alphabet) canonical
      reconstruction, no heap loop.  The adopted entry then flows
      through the ordinary staleness checks, so the refresh/δ/escape
      contract (and the unconditional outlier-escape bound) is
      unchanged.
    * **Degrade** — every segment error (unreadable, unwritable,
      truncated) falls back to plain per-process caching and bumps
      ``segment_errors``; correctness never depends on the segment.

    Pickled copies (what process-pool workers receive) keep the segment
    path but never own the file; the creator removes it in
    :meth:`close`.  Determinism: publishes happen inside the worker's
    task, before its result returns, and the chunked codec's ``map`` is
    a barrier — so the set of published books visible at step *t+1* is a
    deterministic function of the work completed through step *t*.
    """

    def __init__(
        self,
        refresh_interval: int = 64,
        delta: float = 0.10,
        max_escape_ratio: float = 0.02,
        max_entries: int = 512,
        segment_path: Optional[str] = None,
        owner: Optional[str] = None,
    ):
        super().__init__(
            refresh_interval=refresh_interval,
            delta=delta,
            max_escape_ratio=max_escape_ratio,
            max_entries=max_entries,
        )
        if segment_path is None:
            fd, segment_path = tempfile.mkstemp(
                prefix="repro-codebooks-", suffix=".seg"
            )
            os.close(fd)
            self._owns_segment = True
        else:
            self._owns_segment = False
        self.segment_path = segment_path
        self._creator_pid = os.getpid()
        #: participant label stamped on published books (a server sets
        #: the tenant name here); None publishes anonymously
        self.owner = owner
        # -- shared-segment statistics (guarded like the base counters) ----
        self.shared_adoptions = 0  # entries adopted from the segment
        self.publishes = 0  # merges written to the segment
        self.segment_errors = 0  # degraded-to-local events
        #: publisher label -> books adopted from that publisher; the
        #: multi-tenant amortization ledger ("who warmed whose cache").
        #: Anonymous publishers count under "<anonymous>".
        self.adoptions_from: Dict[str, int] = {}

    @classmethod
    def from_cache(
        cls,
        cache: CodebookCache,
        segment_path: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> "SharedCodebookCache":
        """A shared cache with the same staleness knobs as *cache*."""
        return cls(
            refresh_interval=cache.refresh_interval,
            delta=cache.delta,
            max_escape_ratio=cache.max_escape_ratio,
            max_entries=cache.max_entries,
            segment_path=segment_path,
            owner=owner,
        )

    # -- segment value format ----------------------------------------------
    # Entries are ``(lengths_bytes, owner)``; bare ``bytes`` values from
    # older segments are read as anonymously published.
    @staticmethod
    def _seg_lengths(value) -> Optional[bytes]:
        if isinstance(value, tuple):
            value = value[0]
        return value if isinstance(value, bytes) and value else None

    @staticmethod
    def _seg_owner(value) -> str:
        if isinstance(value, tuple) and isinstance(value[1], str):
            return value[1]
        return "<anonymous>"

    # -- segment I/O (never under self._lock: file waits must not stall
    # -- other keys' lookups, and the lock is non-reentrant) ---------------
    def _decode_segment(self, raw: bytes) -> Dict[Hashable, bytes]:
        if not raw:
            return {}
        try:
            doc = pickle.loads(raw)
        except Exception:
            with self._lock:
                self.segment_errors += 1
            return {}
        return doc if isinstance(doc, dict) else {}

    def _read_segment(self) -> Dict[Hashable, bytes]:
        try:
            with open(self.segment_path, "rb") as f:
                if fcntl is not None:
                    fcntl.flock(f.fileno(), fcntl.LOCK_SH)
                try:
                    raw = f.read()
                finally:
                    if fcntl is not None:
                        fcntl.flock(f.fileno(), fcntl.LOCK_UN)
        except OSError:
            with self._lock:
                self.segment_errors += 1
            return {}
        return self._decode_segment(raw)

    def _rewrite_segment(self, mutate: Callable[[Dict[Hashable, bytes]], None]) -> None:
        """Read-merge-write the segment under an exclusive file lock.

        In-place rewrite on the flocked fd keeps one stable inode for
        every locker; without ``fcntl`` (non-POSIX) a tmp-file
        ``os.replace`` keeps readers tear-free instead.
        """
        try:
            with open(self.segment_path, "a+b") as f:
                if fcntl is not None:
                    fcntl.flock(f.fileno(), fcntl.LOCK_EX)
                try:
                    f.seek(0)
                    merged = self._decode_segment(f.read())
                    mutate(merged)
                    payload = pickle.dumps(merged, protocol=pickle.HIGHEST_PROTOCOL)
                    if fcntl is not None:
                        f.seek(0)
                        f.truncate()
                        f.write(payload)
                        f.flush()
                    else:  # pragma: no cover - non-POSIX fallback
                        tmp = self.segment_path + ".tmp"
                        with open(tmp, "wb") as g:
                            g.write(payload)
                        os.replace(tmp, self.segment_path)
                finally:
                    if fcntl is not None:
                        fcntl.flock(f.fileno(), fcntl.LOCK_UN)
        except OSError:
            with self._lock:
                self.segment_errors += 1
            return
        with self._lock:
            self.publishes += 1

    def _adopt(self, key: Hashable) -> None:
        """Install *key*'s published codebook from the segment, if any."""
        value = self._read_segment().get(key)
        lengths = self._seg_lengths(value)
        if lengths is None:
            return
        book = HuffmanCodebook.from_lengths(
            np.frombuffer(lengths, dtype=np.uint8).copy()
        )
        publisher = self._seg_owner(value)
        with self._lock:
            if key not in self._entries:
                self._install(key, book)
                self.shared_adoptions += 1
                self.adoptions_from[publisher] = (
                    self.adoptions_from.get(publisher, 0) + 1
                )

    # -- API ---------------------------------------------------------------
    def lookup(self, key: Hashable, hist: np.ndarray) -> Tuple[HuffmanCodebook, bool]:
        with self._lock:
            known = key in self._entries
        if not known:
            self._adopt(key)
        book, reused = super().lookup(key, hist)
        if not reused:
            # Merge every local entry, not just this key: publishes heal
            # any update another process lost to a crash mid-run.
            with self._lock:
                local = {
                    k: (e.codebook.lengths.tobytes(), self.owner)
                    for k, e in self._entries.items()
                }

            def merge(merged):
                for k, v in local.items():
                    # An unchanged book keeps its original publisher, so
                    # re-merging an adopted entry never relabels the
                    # tenant that actually built it.
                    if self._seg_lengths(merged.get(k)) == v[0]:
                        continue
                    merged[k] = v

            self._rewrite_segment(merge)
        return book, reused

    def invalidate(self, key: Hashable = None) -> None:
        super().invalidate(key)
        if key is None:
            self._rewrite_segment(lambda merged: merged.clear())
        else:
            self._rewrite_segment(lambda merged: merged.pop(key, None))

    def stats(self) -> dict:
        out = super().stats()
        with self._lock:
            out["owner"] = self.owner
            out["shared_adoptions"] = self.shared_adoptions
            out["publishes"] = self.publishes
            out["segment_errors"] = self.segment_errors
            out["adoptions_from"] = dict(self.adoptions_from)
        return out

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Remove the owned segment file.  Pickled (worker-side) copies
        never own it, so worker teardown cannot yank the segment out
        from under the parent."""
        if self._owns_segment and os.getpid() == self._creator_pid:
            self._owns_segment = False
            try:
                os.remove(self.segment_path)
            except OSError:
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        state = super().__getstate__()
        state["_owns_segment"] = False
        # A pickled copy is a fresh participant (a pool worker): zero the
        # counters so worker-side stats measure worker activity only —
        # "builds == 0 in the worker" is the cross-process cache-hit
        # assertion the tests pin.
        for counter in (
            "hits",
            "builds",
            "rebuilds_delta",
            "rebuilds_refresh",
            "rebuilds_escape",
            "escaped_symbols",
            "evictions",
            "shared_adoptions",
            "publishes",
            "segment_errors",
        ):
            state[counter] = 0
        state["adoptions_from"] = {}
        return state

    def __repr__(self) -> str:
        with self._lock:
            entries = len(self._entries)
            adoptions = self.shared_adoptions
            publishes = self.publishes
        return (
            f"SharedCodebookCache(entries={entries}, "
            f"adoptions={adoptions}, publishes={publishes}, "
            f"segment={os.path.basename(self.segment_path)!r})"
        )
