"""Cross-iteration Huffman codebook caching (the amortized entropy stage).

cuSZ (Tian et al. 2020) treats Huffman codebook construction as an
amortizable *setup* cost: activation code distributions are stable
across adjacent training iterations, so a codebook built at step *t* is
near-optimal at step *t+1*.  Our canonical builder is a Python heap loop
(:func:`~repro.compression.szlike.huffman._huffman_lengths`) — exactly
the GIL-bound stage the chunked codec's process pool exists for — and
the dense decode tables are another per-codebook build.  Reusing the
book across steps removes both from the steady-state path.

:class:`CodebookCache` keeps one canonical codebook per *tensor key*
(the saved-tensor path passes the layer name, so each conv layer
amortizes independently).  Every lookup hands in the fresh symbol
histogram (the single ``bincount`` the compress call already produces)
and the cache decides, cheaply, whether the cached book is still good:

* **Staleness (δ) check** — the exact cost of coding the new data with
  the cached book is one dot product, ``hist · lengths`` (unseen
  symbols priced at the escape cost below).  The best any fresh book
  could do is bounded below by ``max(shannon_bits(hist), count)``
  (canonical Huffman spends at least one bit per symbol).  When the
  cached cost exceeds that floor by more than ``delta``, rebuild.
* **Refresh interval** — rebuild unconditionally every
  ``refresh_interval`` uses, a drift backstop independent of δ.
* **Correctness escape** — symbols with *no codeword* under the cached
  book cannot be encoded.  The compressor demotes them to the existing
  outlier channel (marker code 0, residual stored verbatim), so the
  error bound holds unconditionally; the cache only vets viability
  (the marker itself must have a codeword, and the escape volume must
  stay under ``max_escape_ratio``) and otherwise forces a rebuild.

Reuse decisions for a key depend only on that key's own lookup history,
so per-layer keys keep the async engine bit-identical to the sync
engine: each layer packs once per iteration, in a deterministic order.
All state is behind one lock — the chunked codec's thread workers and
the async engine's pack pool share a single compressor instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.compression.szlike.huffman import HuffmanCodebook, entropy_bits_from_hist

__all__ = ["CodebookCache"]

#: accounting price of one escaped symbol, in bits: the marker codeword
#: is charged separately via ``lengths[0]``; the escaped residual itself
#: is stored verbatim as (at least) an int32 outlier
ESCAPE_BITS = 32


class _Entry:
    __slots__ = ("codebook", "uses_since_build")

    def __init__(self, codebook: HuffmanCodebook):
        self.codebook = codebook
        self.uses_since_build = 0


class CodebookCache:
    """Per-key reuse of canonical Huffman codebooks across iterations.

    Parameters
    ----------
    refresh_interval:
        Rebuild a key's codebook after this many reuses regardless of
        the staleness check (``0`` disables the periodic refresh).
    delta:
        Staleness tolerance: rebuild when the cached book's actual
        bits on the new histogram exceed the fresh-codebook floor
        ``max(shannon_bits, count)`` by more than this fraction.
    max_escape_ratio:
        Ceiling on the fraction of symbols that may be demoted to the
        outlier channel under a cached book; beyond it a rebuild is
        cheaper than the escape traffic.
    max_entries:
        LRU capacity (one entry per tensor key).
    """

    def __init__(
        self,
        refresh_interval: int = 64,
        delta: float = 0.10,
        max_escape_ratio: float = 0.02,
        max_entries: int = 512,
    ):
        if refresh_interval < 0:
            raise ValueError(f"refresh_interval must be >= 0, got {refresh_interval}")
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if not 0 <= max_escape_ratio <= 1:
            raise ValueError(f"max_escape_ratio must be in [0, 1], got {max_escape_ratio}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.refresh_interval = int(refresh_interval)
        self.delta = float(delta)
        self.max_escape_ratio = float(max_escape_ratio)
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        # -- statistics ----------------------------------------------------
        self.hits = 0  # lookups served by the cached book
        self.builds = 0  # first-time builds (cold keys)
        self.rebuilds_delta = 0  # staleness check tripped
        self.rebuilds_refresh = 0  # periodic refresh tripped
        self.rebuilds_escape = 0  # escape path not viable
        self.escaped_symbols = 0  # symbols demoted under cached books
        self.evictions = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "codebook_cache")

    # -- internals ---------------------------------------------------------
    @staticmethod
    def reserve_marker(hist: np.ndarray) -> np.ndarray:
        """Give the outlier marker (symbol 0) a codeword even when the
        build histogram has no outliers: a cached/shared book must be
        able to *escape* unseen symbols later, and the marker is the
        escape hatch.  Costs one pseudo-count (a near-zero bit price)."""
        if hist[0] == 0:
            hist = hist.copy()
            hist[0] = 1
        return hist

    def _install(self, key: Hashable, book: HuffmanCodebook) -> None:
        """Store a freshly built book for *key* (callers hold the lock)."""
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(book)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            entry.codebook = book
            entry.uses_since_build = 0

    def _stale_reason(self, entry: _Entry, hist: np.ndarray) -> Optional[str]:
        """Why the cached book must be rebuilt for *hist* (None = fresh
        enough; escapes, if any, are viable)."""
        if self.refresh_interval and entry.uses_since_build >= self.refresh_interval:
            return "refresh"
        lengths = entry.codebook.lengths
        if lengths.size < hist.size:
            return "escape"  # alphabet grew; cached book cannot cover it
        lengths = lengths[: hist.size].astype(np.int64)
        covered = lengths > 0
        escaped = int(hist[~covered].sum())
        count = int(hist.sum())
        if escaped:
            # Demotion is only expressible through the outlier marker, and
            # only worthwhile in small volume.
            if lengths[0] == 0 or escaped > self.max_escape_ratio * count:
                return "escape"
        actual_bits = float(np.dot(hist[covered].astype(np.float64), lengths[covered]))
        actual_bits += escaped * (int(lengths[0]) + ESCAPE_BITS)
        # What would a fresh book cost?  Without building it: Huffman's
        # redundancy over Shannon is at most p1 + 0.086 bits/symbol
        # (Gallager 1978, p1 = most-frequent-symbol probability), and
        # never below 1 bit/symbol.  Using the *upper* bound as the
        # fresh estimate makes the check reuse-friendly: a book rebuilt
        # on an identical distribution can never look stale.
        p1 = float(hist.max()) / count if count else 0.0
        fresh_est = max(
            entropy_bits_from_hist(hist) + (p1 + 0.086) * count, float(count)
        )
        if actual_bits > (1.0 + self.delta) * fresh_est:
            return "delta"
        return None

    # -- API ---------------------------------------------------------------
    def lookup(self, key: Hashable, hist: np.ndarray) -> Tuple[HuffmanCodebook, bool]:
        """Return ``(codebook, reused)`` for *key* given the fresh symbol
        histogram.  ``reused`` is False when the book was (re)built this
        call — the caller must still demote any uncovered symbols to the
        outlier channel when ``reused`` is True.

        The expensive tree build runs *outside* the cache lock, so
        other keys' lookups never stall behind one key's rebuild (the
        engine's pack workers and the chunked codec's pool share one
        cache).  A concurrent rebuild of the same key is last-writer-wins
        — each caller returns the book it built, both valid for their
        own histograms.
        """
        hist = np.asarray(hist)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.builds += 1
            else:
                self._entries.move_to_end(key)
                reason = self._stale_reason(entry, hist)
                if reason is None:
                    entry.uses_since_build += 1
                    self.hits += 1
                    return entry.codebook, True
                if reason == "delta":
                    self.rebuilds_delta += 1
                elif reason == "refresh":
                    self.rebuilds_refresh += 1
                else:
                    self.rebuilds_escape += 1
        book = HuffmanCodebook.from_frequencies(self.reserve_marker(hist))
        with self._lock:
            self._install(key, book)
        return book, False

    def note_escapes(self, n: int) -> None:
        """Record *n* symbols demoted to the outlier channel under a
        cached book (called by the compressor after demotion)."""
        with self._lock:
            self.escaped_symbols += int(n)

    def invalidate(self, key: Hashable = None) -> None:
        """Forget one key's codebook (or all of them)."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    @property
    def rebuilds(self) -> int:
        with self._lock:
            return self.rebuilds_delta + self.rebuilds_refresh + self.rebuilds_escape

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "builds": self.builds,
                "rebuilds_delta": self.rebuilds_delta,
                "rebuilds_refresh": self.rebuilds_refresh,
                "rebuilds_escape": self.rebuilds_escape,
                "escaped_symbols": self.escaped_symbols,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        # One snapshot under the (non-reentrant) lock; len(self) and the
        # rebuilds property would deadlock here, so read fields directly.
        with self._lock:
            entries = len(self._entries)
            hits = self.hits
            builds = self.builds
            rebuilds = (
                self.rebuilds_delta + self.rebuilds_refresh + self.rebuilds_escape
            )
        return (
            f"CodebookCache(entries={entries}, hits={hits}, "
            f"builds={builds}, rebuilds={rebuilds})"
        )

    # Caches don't pickle their contents (the process-pool chunked codec
    # ships the inner compressor to workers; each worker re-warms its
    # own): state resets to empty, knobs survive.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_entries"] = OrderedDict()
        state["_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "codebook_cache")
