"""End-to-end SZ/cuSZ-style error-bounded lossy compressor.

Pipeline (cuSZ, Tian et al. 2020, as used by the paper):

    float tensor
      --(dual-quantization, pitch 2*eb)-->  int grid indices
      --(Lorenzo prediction)-->             residuals
      --(linear-scaling codes + outliers)-> bounded quantization codes
      --(canonical Huffman / DEFLATE)-->    compressed payload

Decompression inverts each stage; the absolute error bound

    |x - decompress(compress(x))| <= eb

holds by construction of the dual-quantization stage (exactly in the
quantizer's float64 arithmetic; casting the reconstruction back to the
input dtype can add at most one ulp of the data magnitude on top, the
same caveat real cuSZ carries).

The paper's Section 4.4 modification — a decompression-side filter that
re-zeroes any reconstructed value with ``|x'| <= eb`` so that
ReLU-produced zeros are never turned into small non-zero values — is
implemented via ``zero_filter=True`` (the default, as in the paper).

**Amortized entropy stage.**  cuSZ treats Huffman codebook construction
as a setup cost amortized across the run, because quantization-code
distributions are stable between adjacent training iterations (Tian et
al. 2020, Section 4; the tree build happens once on the host while the
GPU streams data).  ``codebook_cache=True`` reproduces that economics:
canonical codebooks are cached per tensor key
(:class:`~repro.compression.szlike.codebook_cache.CodebookCache`) and
reused across ``compress`` calls, with a one-``bincount`` staleness
check (rebuild beyond a ``codebook_delta`` excess over the fresh-book
floor, or every ``codebook_refresh`` uses) and an unconditional
correctness escape — symbols with no codeword under a cached book are
demoted to the outlier channel, so the error bound never depends on
cache freshness.  The whole hot path is also allocation-lean: the
quantize/predict/code intermediates live in a reusable
:class:`~repro.utils.scratch.ScratchPool` and the entropy kernels are
the word-packed/blocked variants in
:mod:`~repro.compression.szlike.huffman`.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Hashable, Optional, Union

import numpy as np

from repro.compression.szlike.codebook_cache import CodebookCache
from repro.compression.szlike.huffman import (
    HuffmanCodebook,
    entropy_bits_from_hist,
    histogram,
    huffman_decode,
    huffman_encode,
)
from repro.compression.szlike.quantizer import (
    QuantizedResiduals,
    reconstruct,
)
from repro.kernels import KERNEL_BACKENDS, get_backend
from repro.utils import profiler
from repro.utils.scratch import ScratchPool

__all__ = ["SZCompressor", "CompressedTensor", "HEADER_BYTES"]

# Fixed serialization overhead we charge per compressed tensor (shape,
# dtype tag, error bound, counts); matches cuSZ's on-GPU header scale.
# The accounting convention: ``CompressedTensor.nbytes`` counts every
# binary section at its exact ``serialize.dumps`` size and charges the
# variable-length wire header at this fixed figure (a real deployment
# would use a packed binary header of this scale; the JSON header our
# serializer writes is for debuggability).
HEADER_BYTES = 64

_ENTROPY_STAGES = ("huffman", "zlib", "huffman+zlib", "none")


def _pack_outliers(outliers: np.ndarray) -> np.ndarray:
    """Store outlier residuals in the narrowest safe integer dtype."""
    if outliers.size == 0:
        return outliers.astype(np.int32)
    lo, hi = int(outliers.min()), int(outliers.max())
    if np.iinfo(np.int32).min <= lo and hi <= np.iinfo(np.int32).max:
        return outliers.astype(np.int32)
    return outliers.astype(np.int64)


@dataclass
class CompressedTensor:
    """Opaque compressed representation of one activation tensor."""

    shape: tuple
    dtype: str
    error_bound: float
    radius: int
    lorenzo_ndim: int
    entropy: str
    payload: bytes
    total_bits: int
    count: int
    outliers: np.ndarray
    chunk_offsets: Optional[np.ndarray] = None
    codebook: Optional[HuffmanCodebook] = None
    zero_filter: bool = True
    raw_codes_dtype: str = "uint16"
    #: True when the codebook is owned elsewhere (a chunked container's
    #: shared book): ``nbytes`` and ``serialize.dumps`` then charge/emit
    #: a reference instead of the length table — the owner charges it
    #: exactly once.
    codebook_shared: bool = False

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize if self.shape else 0

    #: fixed header charge; ``nbytes`` == serialized length with the wire
    #: header swapped for this constant (see :data:`HEADER_BYTES`).
    header_nbytes = HEADER_BYTES

    @property
    def nbytes(self) -> int:
        """Compressed footprint: payload + outliers + codebook + header.

        Every section is charged at its exact serialized size, so
        ``nbytes == len(serialize.dumps(self)) - wire_header + HEADER_BYTES``.
        A shared codebook (``codebook_shared``) is charged by its owning
        container, not here — the serialized chunk likewise carries only
        a reference.
        """
        n = len(self.payload) + self.outliers.nbytes + HEADER_BYTES
        if self.codebook is not None and not self.codebook_shared:
            n += self.codebook.nbytes
        if self.chunk_offsets is not None:
            n += self.chunk_offsets.size * 8  # serialized as int64 bit offsets
        return n

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes if self.nbytes else 0.0


class SZCompressor:
    """Error-bounded lossy compressor for floating-point tensors.

    Parameters
    ----------
    error_bound:
        Absolute error bound (``mode='abs'``) or value-range-relative
        bound (``mode='rel'``, resolved per tensor at compress time).
    dict_size:
        Quantization-code alphabet size (cuSZ default 1024 -> radius 512).
    lorenzo_ndim:
        Number of trailing axes covered by the Lorenzo predictor
        (2 treats ``(N, C, H, W)`` activations as per-map 2-D fields).
    entropy:
        Final entropy stage: ``'huffman'`` (faithful to cuSZ),
        ``'zlib'`` (fast DEFLATE over the code stream, analogous to SZ's
        zstd stage), ``'huffman+zlib'``, or ``'none'``.
    zero_filter:
        Apply the paper's Section 4.4 re-zeroing filter at decompression.
    codebook_cache:
        ``False`` (default): build a fresh canonical Huffman codebook
        per compress call.  ``True`` or a
        :class:`~repro.compression.szlike.codebook_cache.CodebookCache`
        instance: amortize codebooks across calls per tensor key (pass
        ``cache_key=`` to :meth:`compress`; the saved-tensor contexts
        pass the layer name).  The error bound is unaffected either way
        — uncovered symbols under a cached book escape to the outlier
        channel.
    codebook_refresh:
        Periodic-rebuild interval for a ``codebook_cache=True`` default
        cache: a cached book is rebuilt after this many reuses even if
        the staleness check stays quiet (0 disables).  Ignored when an
        explicit cache instance is supplied.
    codebook_delta:
        Staleness tolerance δ for the default cache: rebuild when the
        cached book's bits on the fresh histogram exceed
        ``max(shannon_bits, count)`` by more than this fraction.
        Ignored when an explicit cache instance is supplied.
    kernel_backend:
        Inner-loop implementation for the quantize/predict/entropy hot
        kernels: ``"numpy"`` (reference), ``"numba"`` (compiled; raises
        at construction when numba is unavailable), or ``"auto"``
        (default — probe numba once, warm it up off the profiled path,
        degrade to numpy counted-never-raised).  Every backend is
        bit-identical by contract; see :mod:`repro.kernels`.
    """

    #: registry metadata (see :mod:`repro.compression.registry`)
    name = "szlike"
    error_bounded = True
    lossless = False
    #: the saved-tensor contexts may pass ``cache_key=`` to compress
    supports_cache_key = True
    #: compress accepts ``codebook=`` / ``reserve_marker=`` — the chunked
    #: codec's intra-call codebook sharing protocol
    supports_codebook_sharing = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        mode: str = "abs",
        dict_size: int = 1024,
        lorenzo_ndim: int = 2,
        entropy: str = "huffman",
        zero_filter: bool = True,
        zlib_level: int = 1,
        emulate_zero_drift: bool = False,
        codebook_cache: Union[bool, CodebookCache] = False,
        codebook_refresh: int = 64,
        codebook_delta: float = 0.10,
        kernel_backend: str = "auto",
        rng=None,
    ):
        if mode not in ("abs", "rel"):
            raise ValueError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, got {kernel_backend!r}"
            )
        if error_bound <= 0:
            raise ValueError(f"error bound must be positive, got {error_bound}")
        if dict_size < 4 or dict_size & (dict_size - 1):
            raise ValueError(f"dict_size must be a power of two >= 4, got {dict_size}")
        if entropy not in _ENTROPY_STAGES:
            raise ValueError(f"entropy must be one of {_ENTROPY_STAGES}, got {entropy!r}")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.dict_size = int(dict_size)
        self.radius = self.dict_size // 2
        self.lorenzo_ndim = int(lorenzo_ndim)
        self.entropy = entropy
        self.zero_filter = bool(zero_filter)
        self.zlib_level = int(zlib_level)
        if isinstance(codebook_cache, CodebookCache):
            self.codebook_cache: Optional[CodebookCache] = codebook_cache
        elif codebook_cache:
            self.codebook_cache = CodebookCache(
                refresh_interval=codebook_refresh, delta=codebook_delta
            )
        else:
            self.codebook_cache = None
        # Unmodified cuSZ reconstructs runs of zeros as small values within
        # the error bound (the pathology motivating the Section 4.4 filter).
        # Our integer pipeline reconstructs zeros exactly, so the pathology
        # can be *emulated* for ablation studies: zero grid points are
        # perturbed uniformly within +-eb (exact zeros stay error-bounded;
        # near-zero values that quantized to the zero grid point can err up
        # to 2*eb — that drift is precisely the pathology being emulated).
        self.emulate_zero_drift = bool(emulate_zero_drift)
        from repro.utils.rng import ensure_rng

        self._rng = ensure_rng(rng)
        # numpy Generators are not thread-safe; decompress may run
        # concurrently per chunk under a ChunkedCodec wrapper.
        self._rng_lock = threading.Lock()
        #: reusable scratch buffers for the quantize/predict/code
        #: intermediates (thread-safe; shared by ChunkedCodec workers)
        self._scratch = ScratchPool()
        #: requested backend name (``"auto"`` re-resolves per process)
        self.kernel_backend = kernel_backend
        self._kernels = get_backend(kernel_backend)

    @property
    def kernel_backend_selected(self) -> str:
        """The backend actually serving this codec's hot loops (``"auto"``
        resolves to ``"numba"`` or ``"numpy"`` at construction)."""
        return self._kernels.name

    def set_kernel_backend(self, kernel_backend: str) -> None:
        """Re-point the hot loops at *kernel_backend* (same validation
        and resolution as the constructor; ``"numba"`` raises when
        unavailable)."""
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, got {kernel_backend!r}"
            )
        self._kernels = get_backend(kernel_backend)
        self.kernel_backend = kernel_backend

    # Locks, scratch buffers, and kernel callables don't pickle;
    # ChunkedCodec(executor="process") ships the inner codec to pool
    # workers, so drop them and rebuild (``"auto"`` re-probes in the
    # worker — a host-side numba never forces itself on a worker that
    # lacks it).  A cached codebook state resets too (CodebookCache's
    # own __getstate__) — workers re-warm independently.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_rng_lock"]
        del state["_scratch"]
        del state["_kernels"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rng_lock = threading.Lock()
        self._scratch = ScratchPool()
        self._kernels = get_backend(self.kernel_backend)

    # -- helpers ---------------------------------------------------------
    def resolve_error_bound(self, x: np.ndarray) -> float:
        """The absolute bound a compress() call on *x* would use.

        Public so wrappers (e.g. the chunked codec) can resolve a
        relative-mode bound once on the whole tensor and hand every chunk
        the same absolute bound.
        """
        if self.mode == "abs":
            return self.error_bound
        vrange = float(x.max() - x.min()) if x.size else 0.0
        return self.error_bound * vrange if vrange > 0 else self.error_bound

    def _effective_ndim(self, x: np.ndarray) -> int:
        return max(1, min(self.lorenzo_ndim, x.ndim))

    def _quantized_codes(self, x: np.ndarray, eb: float, stack: ExitStack):
        """Run quantize -> predict -> codes over pooled scratch buffers.

        The whole front half is one backend kernel (``quantize_encode``:
        grid round, Lorenzo prediction, bounded-code mapping — fused on
        compiled backends).  Returns ``(qr, flat_delta)``; both
        reference pooled memory owned by *stack*, so they are valid only
        until the stack closes.
        """
        ndim = self._effective_ndim(x)
        codes, outliers, flat = self._kernels.quantize_encode(
            x, eb, self.radius, ndim, self._scratch, stack
        )
        qr = QuantizedResiduals(
            codes=codes, outliers=outliers, radius=self.radius, shape=x.shape
        )
        return qr, flat

    def _resolve_codebook(
        self,
        hist: np.ndarray,
        cache_key: Optional[Hashable],
        x_shape: tuple,
        x_dtype,
        reserve_marker: bool = False,
    ):
        """Fresh build, cache lookup, or escape-vetted reuse.

        Returns ``(codebook, reused)``; ``reused`` means symbols may lack
        codewords and the caller must demote them.  *reserve_marker*
        keeps the outlier-marker codeword in a cache-less fresh build (a
        book destined for sharing needs its escape hatch; cache builds
        always reserve it).
        """
        cache = self.codebook_cache
        if cache is None:
            if reserve_marker:
                hist = CodebookCache.reserve_marker(hist)
            return HuffmanCodebook.from_frequencies(hist), False
        key = cache_key if cache_key is not None else ("__auto__", x_shape, str(x_dtype))
        return cache.lookup(key, hist)

    @staticmethod
    def _demote_uncovered(
        codes: np.ndarray,
        flat_delta: np.ndarray,
        hist: np.ndarray,
        codebook: HuffmanCodebook,
    ):
        """Escape symbols without codewords to the outlier channel.

        The histogram answers "is anything uncovered?" in O(alphabet) —
        the common warm-cache case pays no per-element work here.  When
        demotion is needed, *codes* is mutated in place (uncovered
        positions become the marker code 0) and the merged
        positional-order outlier array is returned; otherwise ``None``.
        Requires the marker symbol itself to be covered — the
        cache/viability checks guarantee that before reuse is allowed.
        """
        lengths = codebook.lengths
        if lengths.size >= hist.size:
            bad_syms = (hist > 0) & (lengths[: hist.size] == 0)
            n_escape = int(hist[bad_syms].sum())
        else:
            bad_syms = (hist[: lengths.size] > 0) & (lengths == 0)
            n_escape = int(hist[: lengths.size][bad_syms].sum() + hist[lengths.size :].sum())
        if n_escape == 0:
            return None, 0
        if lengths[0] == 0:
            raise ValueError(
                "codebook lacks the outlier marker codeword; cannot demote "
                "uncovered symbols (rebuild the codebook instead)"
            )
        if lengths.size >= hist.size:
            uncovered = lengths[codes] == 0
        else:  # defensive: injected book over a smaller alphabet
            clipped = np.minimum(codes, lengths.size - 1)
            uncovered = (codes >= lengths.size) | (lengths[clipped] == 0)
        codes[uncovered] = 0
        # Recompute the outlier stream in positional order: existing
        # markers and the freshly demoted positions interleave exactly as
        # residuals_from_codes will consume them.
        outliers = flat_delta[codes.reshape(-1) == 0].astype(np.int64)
        return outliers, n_escape

    # -- API -------------------------------------------------------------
    def compress(
        self,
        x: np.ndarray,
        error_bound: Optional[float] = None,
        *,
        cache_key: Optional[Hashable] = None,
        codebook: Optional[HuffmanCodebook] = None,
        reserve_marker: bool = False,
    ) -> CompressedTensor:
        """Compress *x* under the (per-call overridable) error bound.

        ``cache_key`` names the tensor stream for cross-iteration
        codebook amortization (only meaningful with ``codebook_cache``);
        ``codebook`` injects an externally owned book (the chunked
        codec's intra-call sharing) and ``reserve_marker`` keeps the
        escape-marker codeword in a freshly built book so it *can* be
        shared — uncovered symbols escape to the outlier channel either
        way, so the error bound is unconditional.
        """
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.floating):
            raise TypeError(f"SZCompressor expects floating-point input, got {x.dtype}")
        if x.size == 0:
            raise ValueError("cannot compress an empty tensor")
        if not np.all(np.isfinite(x)):
            raise ValueError("input contains non-finite values")
        eb = float(error_bound) if error_bound is not None else self.resolve_error_bound(x)
        if eb <= 0:
            raise ValueError(f"resolved error bound must be positive, got {eb}")
        ndim = self._effective_ndim(x)

        with ExitStack() as stack:
            qr, flat_delta = self._quantized_codes(x, eb, stack)
            out_codebook = None
            total_bits = 0
            chunk_offsets = None
            outliers = qr.outliers
            count = int(qr.codes.size)
            raw_codes_dtype = str(qr.codes.dtype)
            if self.entropy in ("huffman", "huffman+zlib"):
                with profiler.stage("encode"):
                    # One histogram feeds the codebook build/cache check;
                    # estimate_compressed_nbytes shares the same helper.
                    hist = histogram(qr.codes, self.dict_size)
                    if codebook is not None:
                        out_codebook, reused = codebook, True
                    else:
                        out_codebook, reused = self._resolve_codebook(
                            hist, cache_key, x.shape, x.dtype, reserve_marker
                        )
                    if reused:
                        try:
                            escaped, n_escape = self._demote_uncovered(
                                qr.codes, flat_delta, hist, out_codebook
                            )
                        except ValueError:
                            # Injected book without a usable marker: fall
                            # back to a fresh local build (correctness
                            # first; the container will not mark this
                            # chunk as shared).
                            out_codebook = HuffmanCodebook.from_frequencies(hist)
                            escaped, n_escape = None, 0
                        if escaped is not None:
                            outliers = escaped
                            if self.codebook_cache is not None and codebook is None:
                                self.codebook_cache.note_escapes(n_escape)
                    payload, total_bits, chunk_offsets = huffman_encode(
                        qr.codes, out_codebook, kernels=self._kernels
                    )
                    if self.entropy == "huffman+zlib":
                        payload = zlib.compress(payload, self.zlib_level)
            elif self.entropy == "zlib":
                with profiler.stage("encode"):
                    payload = zlib.compress(qr.codes.tobytes(), self.zlib_level)
            else:  # 'none'
                payload = qr.codes.tobytes()
            packed_outliers = _pack_outliers(outliers)

        return CompressedTensor(
            shape=x.shape,
            dtype=str(x.dtype),
            error_bound=eb,
            radius=self.radius,
            lorenzo_ndim=ndim,
            entropy=self.entropy,
            payload=payload,
            total_bits=total_bits,
            count=count,
            outliers=packed_outliers,
            chunk_offsets=chunk_offsets,
            codebook=out_codebook,
            zero_filter=self.zero_filter,
            raw_codes_dtype=raw_codes_dtype,
        )

    def codebook_for(
        self,
        x: np.ndarray,
        error_bound: Optional[float] = None,
        cache_key: Optional[Hashable] = None,
    ) -> HuffmanCodebook:
        """The canonical codebook :meth:`compress` would use for *x*.

        A utility for wrappers that inject a book into several compress
        calls via ``codebook=`` (the chunked codec itself avoids the
        extra pipeline pass by compressing its first chunk with
        ``reserve_marker=True`` and sharing that chunk's book).  Goes
        through the same cache/staleness machinery as :meth:`compress`;
        a fresh build keeps the escape-marker codeword so uncovered
        symbols in other tensors can demote through it.
        """
        if self.entropy not in ("huffman", "huffman+zlib"):
            raise ValueError(f"entropy stage {self.entropy!r} has no codebook")
        x = np.asarray(x)
        eb = float(error_bound) if error_bound is not None else self.resolve_error_bound(x)
        with ExitStack() as stack:
            qr, _ = self._quantized_codes(x, eb, stack)
            hist = histogram(qr.codes, self.dict_size)
            book, _ = self._resolve_codebook(
                hist, cache_key, x.shape, x.dtype, reserve_marker=True
            )
        return book

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        """Reconstruct the tensor; max abs error is ``ct.error_bound``."""
        with profiler.stage("decode"):
            if ct.entropy in ("huffman", "huffman+zlib"):
                if ct.codebook is None:
                    raise ValueError(
                        "compressed tensor references a shared codebook that is "
                        "not attached; decompress it through its chunked container"
                    )
                payload = ct.payload
                if ct.entropy == "huffman+zlib":
                    payload = zlib.decompress(payload)
                codes = huffman_decode(
                    payload,
                    ct.total_bits,
                    ct.count,
                    ct.codebook,
                    chunk_offsets=ct.chunk_offsets,
                    kernels=self._kernels,
                )
            elif ct.entropy == "zlib":
                codes = np.frombuffer(zlib.decompress(ct.payload), dtype=ct.raw_codes_dtype)
            else:
                codes = np.frombuffer(ct.payload, dtype=ct.raw_codes_dtype)

            # The back half is one backend kernel (``quantize_decode``:
            # outlier re-injection + per-axis cumulative sums, fused on
            # compiled backends).
            q = self._kernels.quantize_decode(
                codes.astype(np.uint32),
                ct.outliers.astype(np.int64),
                ct.radius,
                ct.shape,
                ct.lorenzo_ndim,
            )
            x = reconstruct(q, ct.error_bound, dtype=np.dtype(ct.dtype))
        if self.emulate_zero_drift:
            zeros = q == 0
            n_zero = int(zeros.sum())
            if n_zero:
                with self._rng_lock:
                    drift = self._rng.uniform(-ct.error_bound, ct.error_bound, n_zero)
                x[zeros] = drift.astype(x.dtype)
        if ct.zero_filter:
            # Paper Section 4.4: re-zero anything within the error bound so
            # ReLU zeros survive compression exactly.
            x[np.abs(x) <= ct.error_bound] = 0
        return x

    def roundtrip(self, x: np.ndarray, error_bound: Optional[float] = None) -> np.ndarray:
        """Convenience: decompress(compress(x))."""
        return self.decompress(self.compress(x, error_bound))

    def estimate_compressed_nbytes(self, x: np.ndarray, error_bound: Optional[float] = None) -> float:
        """Entropy-based size estimate (no bitstream materialization).

        Used by the adaptive controller's monitoring path where only the
        expected ratio is needed.  Charges every section at the same rate
        ``CompressedTensor.nbytes`` does: outliers at their packed
        itemsize, plus the codebook and chunk-offset metadata the Huffman
        stages serialize — only the payload itself is estimated (at its
        Shannon lower bound).  Shares one histogram between the entropy
        estimate and the code statistics, and runs over the same pooled
        scratch as :meth:`compress`.
        """
        from repro.compression.szlike.huffman import DEFAULT_CHUNK

        x = np.asarray(x)
        eb = float(error_bound) if error_bound is not None else self.resolve_error_bound(x)
        with ExitStack() as stack:
            qr, _ = self._quantized_codes(x, eb, stack)
            hist = histogram(qr.codes, self.dict_size)
            bits = entropy_bits_from_hist(hist)
            est = bits / 8.0 + _pack_outliers(qr.outliers).nbytes + HEADER_BYTES
            if self.entropy in ("huffman", "huffman+zlib"):
                # one length byte per alphabet symbol + int64 chunk offsets
                est += self.dict_size
                est += 8 * (-(-qr.codes.size // DEFAULT_CHUNK))
        return est

    # Registry-facing alias (the unified Codec API name).
    estimate_nbytes = estimate_compressed_nbytes
