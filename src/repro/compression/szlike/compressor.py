"""End-to-end SZ/cuSZ-style error-bounded lossy compressor.

Pipeline (cuSZ, Tian et al. 2020, as used by the paper):

    float tensor
      --(dual-quantization, pitch 2*eb)-->  int grid indices
      --(Lorenzo prediction)-->             residuals
      --(linear-scaling codes + outliers)-> bounded quantization codes
      --(canonical Huffman / DEFLATE)-->    compressed payload

Decompression inverts each stage; the absolute error bound

    |x - decompress(compress(x))| <= eb

holds by construction of the dual-quantization stage (exactly in the
quantizer's float64 arithmetic; casting the reconstruction back to the
input dtype can add at most one ulp of the data magnitude on top, the
same caveat real cuSZ carries).

The paper's Section 4.4 modification — a decompression-side filter that
re-zeroes any reconstructed value with ``|x'| <= eb`` so that
ReLU-produced zeros are never turned into small non-zero values — is
implemented via ``zero_filter=True`` (the default, as in the paper).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compression.szlike.huffman import (
    HuffmanCodebook,
    build_codebook,
    entropy_bits,
    huffman_decode,
    huffman_encode,
)
from repro.compression.szlike.lorenzo import lorenzo_decode, lorenzo_encode
from repro.compression.szlike.quantizer import (
    QuantizedResiduals,
    codes_from_residuals,
    prequantize,
    reconstruct,
    residuals_from_codes,
)

__all__ = ["SZCompressor", "CompressedTensor", "HEADER_BYTES"]

# Fixed serialization overhead we charge per compressed tensor (shape,
# dtype tag, error bound, counts); matches cuSZ's on-GPU header scale.
# The accounting convention: ``CompressedTensor.nbytes`` counts every
# binary section at its exact ``serialize.dumps`` size and charges the
# variable-length wire header at this fixed figure (a real deployment
# would use a packed binary header of this scale; the JSON header our
# serializer writes is for debuggability).
HEADER_BYTES = 64

_ENTROPY_STAGES = ("huffman", "zlib", "huffman+zlib", "none")


def _pack_outliers(outliers: np.ndarray) -> np.ndarray:
    """Store outlier residuals in the narrowest safe integer dtype."""
    if outliers.size == 0:
        return outliers.astype(np.int32)
    lo, hi = int(outliers.min()), int(outliers.max())
    if np.iinfo(np.int32).min <= lo and hi <= np.iinfo(np.int32).max:
        return outliers.astype(np.int32)
    return outliers.astype(np.int64)


@dataclass
class CompressedTensor:
    """Opaque compressed representation of one activation tensor."""

    shape: tuple
    dtype: str
    error_bound: float
    radius: int
    lorenzo_ndim: int
    entropy: str
    payload: bytes
    total_bits: int
    count: int
    outliers: np.ndarray
    chunk_offsets: Optional[np.ndarray] = None
    codebook: Optional[HuffmanCodebook] = None
    zero_filter: bool = True
    raw_codes_dtype: str = "uint16"

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize if self.shape else 0

    #: fixed header charge; ``nbytes`` == serialized length with the wire
    #: header swapped for this constant (see :data:`HEADER_BYTES`).
    header_nbytes = HEADER_BYTES

    @property
    def nbytes(self) -> int:
        """Compressed footprint: payload + outliers + codebook + header.

        Every section is charged at its exact serialized size, so
        ``nbytes == len(serialize.dumps(self)) - wire_header + HEADER_BYTES``.
        """
        n = len(self.payload) + self.outliers.nbytes + HEADER_BYTES
        if self.codebook is not None:
            n += self.codebook.nbytes
        if self.chunk_offsets is not None:
            n += self.chunk_offsets.size * 8  # serialized as int64 bit offsets
        return n

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes if self.nbytes else 0.0


class SZCompressor:
    """Error-bounded lossy compressor for floating-point tensors.

    Parameters
    ----------
    error_bound:
        Absolute error bound (``mode='abs'``) or value-range-relative
        bound (``mode='rel'``, resolved per tensor at compress time).
    dict_size:
        Quantization-code alphabet size (cuSZ default 1024 -> radius 512).
    lorenzo_ndim:
        Number of trailing axes covered by the Lorenzo predictor
        (2 treats ``(N, C, H, W)`` activations as per-map 2-D fields).
    entropy:
        Final entropy stage: ``'huffman'`` (faithful to cuSZ),
        ``'zlib'`` (fast DEFLATE over the code stream, analogous to SZ's
        zstd stage), ``'huffman+zlib'``, or ``'none'``.
    zero_filter:
        Apply the paper's Section 4.4 re-zeroing filter at decompression.
    """

    #: registry metadata (see :mod:`repro.compression.registry`)
    name = "szlike"
    error_bounded = True
    lossless = False

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        mode: str = "abs",
        dict_size: int = 1024,
        lorenzo_ndim: int = 2,
        entropy: str = "huffman",
        zero_filter: bool = True,
        zlib_level: int = 1,
        emulate_zero_drift: bool = False,
        rng=None,
    ):
        if mode not in ("abs", "rel"):
            raise ValueError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if error_bound <= 0:
            raise ValueError(f"error bound must be positive, got {error_bound}")
        if dict_size < 4 or dict_size & (dict_size - 1):
            raise ValueError(f"dict_size must be a power of two >= 4, got {dict_size}")
        if entropy not in _ENTROPY_STAGES:
            raise ValueError(f"entropy must be one of {_ENTROPY_STAGES}, got {entropy!r}")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.dict_size = int(dict_size)
        self.radius = self.dict_size // 2
        self.lorenzo_ndim = int(lorenzo_ndim)
        self.entropy = entropy
        self.zero_filter = bool(zero_filter)
        self.zlib_level = int(zlib_level)
        # Unmodified cuSZ reconstructs runs of zeros as small values within
        # the error bound (the pathology motivating the Section 4.4 filter).
        # Our integer pipeline reconstructs zeros exactly, so the pathology
        # can be *emulated* for ablation studies: zero grid points are
        # perturbed uniformly within +-eb (exact zeros stay error-bounded;
        # near-zero values that quantized to the zero grid point can err up
        # to 2*eb — that drift is precisely the pathology being emulated).
        self.emulate_zero_drift = bool(emulate_zero_drift)
        from repro.utils.rng import ensure_rng

        self._rng = ensure_rng(rng)
        # numpy Generators are not thread-safe; decompress may run
        # concurrently per chunk under a ChunkedCodec wrapper.
        self._rng_lock = threading.Lock()

    # Locks don't pickle; ChunkedCodec(executor="process") ships the
    # inner codec to pool workers, so drop the lock and rebuild it.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_rng_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rng_lock = threading.Lock()

    # -- helpers ---------------------------------------------------------
    def resolve_error_bound(self, x: np.ndarray) -> float:
        """The absolute bound a compress() call on *x* would use.

        Public so wrappers (e.g. the chunked codec) can resolve a
        relative-mode bound once on the whole tensor and hand every chunk
        the same absolute bound.
        """
        if self.mode == "abs":
            return self.error_bound
        vrange = float(x.max() - x.min()) if x.size else 0.0
        return self.error_bound * vrange if vrange > 0 else self.error_bound

    def _effective_ndim(self, x: np.ndarray) -> int:
        return max(1, min(self.lorenzo_ndim, x.ndim))

    # -- API -------------------------------------------------------------
    def compress(self, x: np.ndarray, error_bound: Optional[float] = None) -> CompressedTensor:
        """Compress *x* under the (per-call overridable) error bound."""
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.floating):
            raise TypeError(f"SZCompressor expects floating-point input, got {x.dtype}")
        if x.size == 0:
            raise ValueError("cannot compress an empty tensor")
        if not np.all(np.isfinite(x)):
            raise ValueError("input contains non-finite values")
        eb = float(error_bound) if error_bound is not None else self.resolve_error_bound(x)
        if eb <= 0:
            raise ValueError(f"resolved error bound must be positive, got {eb}")
        ndim = self._effective_ndim(x)

        q = prequantize(x, eb)
        delta = lorenzo_encode(q, ndim)
        qr = codes_from_residuals(delta, self.radius)

        codebook = None
        total_bits = 0
        chunk_offsets = None
        if self.entropy in ("huffman", "huffman+zlib"):
            codebook = build_codebook(qr.codes, self.dict_size)
            payload, total_bits, chunk_offsets = huffman_encode(qr.codes, codebook)
            if self.entropy == "huffman+zlib":
                payload = zlib.compress(payload, self.zlib_level)
        elif self.entropy == "zlib":
            payload = zlib.compress(qr.codes.tobytes(), self.zlib_level)
        else:  # 'none'
            payload = qr.codes.tobytes()

        return CompressedTensor(
            shape=x.shape,
            dtype=str(x.dtype),
            error_bound=eb,
            radius=self.radius,
            lorenzo_ndim=ndim,
            entropy=self.entropy,
            payload=payload,
            total_bits=total_bits,
            count=int(qr.codes.size),
            outliers=_pack_outliers(qr.outliers),
            chunk_offsets=chunk_offsets,
            codebook=codebook,
            zero_filter=self.zero_filter,
            raw_codes_dtype=str(qr.codes.dtype),
        )

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        """Reconstruct the tensor; max abs error is ``ct.error_bound``."""
        if ct.entropy in ("huffman", "huffman+zlib"):
            payload = ct.payload
            if ct.entropy == "huffman+zlib":
                payload = zlib.decompress(payload)
            codes = huffman_decode(
                payload, ct.total_bits, ct.count, ct.codebook, chunk_offsets=ct.chunk_offsets
            )
        elif ct.entropy == "zlib":
            codes = np.frombuffer(zlib.decompress(ct.payload), dtype=ct.raw_codes_dtype)
        else:
            codes = np.frombuffer(ct.payload, dtype=ct.raw_codes_dtype)

        qr = QuantizedResiduals(
            codes=codes.astype(np.uint32),
            outliers=ct.outliers.astype(np.int64),
            radius=ct.radius,
            shape=ct.shape,
        )
        delta = residuals_from_codes(qr)
        q = lorenzo_decode(delta, ct.lorenzo_ndim)
        x = reconstruct(q, ct.error_bound, dtype=np.dtype(ct.dtype))
        if self.emulate_zero_drift:
            zeros = q == 0
            n_zero = int(zeros.sum())
            if n_zero:
                with self._rng_lock:
                    drift = self._rng.uniform(-ct.error_bound, ct.error_bound, n_zero)
                x[zeros] = drift.astype(x.dtype)
        if ct.zero_filter:
            # Paper Section 4.4: re-zero anything within the error bound so
            # ReLU zeros survive compression exactly.
            x[np.abs(x) <= ct.error_bound] = 0
        return x

    def roundtrip(self, x: np.ndarray, error_bound: Optional[float] = None) -> np.ndarray:
        """Convenience: decompress(compress(x))."""
        return self.decompress(self.compress(x, error_bound))

    def estimate_compressed_nbytes(self, x: np.ndarray, error_bound: Optional[float] = None) -> float:
        """Entropy-based size estimate (no bitstream materialization).

        Used by the adaptive controller's monitoring path where only the
        expected ratio is needed.  Charges every section at the same rate
        ``CompressedTensor.nbytes`` does: outliers at their packed
        itemsize, plus the codebook and chunk-offset metadata the Huffman
        stages serialize — only the payload itself is estimated (at its
        Shannon lower bound).
        """
        from repro.compression.szlike.huffman import DEFAULT_CHUNK

        x = np.asarray(x)
        eb = float(error_bound) if error_bound is not None else self.resolve_error_bound(x)
        q = prequantize(x, eb)
        delta = lorenzo_encode(q, self._effective_ndim(x))
        qr = codes_from_residuals(delta, self.radius)
        bits = entropy_bits(qr.codes, self.dict_size)
        est = bits / 8.0 + _pack_outliers(qr.outliers).nbytes + HEADER_BYTES
        if self.entropy in ("huffman", "huffman+zlib"):
            # one length byte per alphabet symbol + int64 chunk offsets
            est += self.dict_size
            est += 8 * (-(-qr.codes.size // DEFAULT_CHUNK))
        return est

    # Registry-facing alias (the unified Codec API name).
    estimate_nbytes = estimate_compressed_nbytes
