"""Canonical, length-limited Huffman codec, fully vectorized.

cuSZ's entropy stage is a customized Huffman coder over the quantization
codes.  We reproduce it with two HPC-flavoured twists so that neither
direction needs a Python-level per-symbol loop:

* **Encode** places all bits for bit-plane ``k`` of every codeword in one
  vectorized scatter, looping only over the (<= 16) codeword bit planes.

* **Decode** is sequential in nature (each codeword's start depends on the
  previous lengths), which is the same obstacle cuSZ's GPU decoder faces.
  Two data-parallel decoders are provided:

  - *chunked* (default, and what cuSZ itself does): the encoder records
    the bit offset of every fixed-size symbol chunk; chunks decode
    independently, and the decoder iterates over symbol slots while
    processing **all chunks simultaneously** with vectorized gathers.
  - *pointer jumping*: offset-metadata-free fallback that decodes
    speculatively at every bit offset via a dense ``2^L`` prefix table
    and recovers the true codeword chain with recursive doubling —
    ``O(B log n)`` fully vectorized.

Code lengths are limited to :data:`MAX_CODE_LENGTH` bits by frequency
flattening, keeping the prefix table at 64Ki entries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MAX_CODE_LENGTH",
    "HuffmanCodebook",
    "build_codebook",
    "huffman_encode",
    "huffman_decode",
    "entropy_bits",
]

MAX_CODE_LENGTH = 16


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol from frequencies (0 for absent symbols)."""
    present = np.nonzero(freqs)[0]
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if present.size == 0:
        raise ValueError("cannot build a Huffman code over an empty input")
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    # Standard heap construction; nodes carry their leaf sets so depths can
    # be assigned when the tree is complete.  Alphabet size is small (<= 64Ki
    # in practice ~1Ki), so this Python loop is not a hot path.
    heap = [(int(freqs[s]), int(s), [int(s)]) for s in present]
    heapq.heapify(heap)
    counter = int(freqs.size)
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for s in s1:
            lengths[s] += 1
        for s in s2:
            lengths[s] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, s1 + s2))
    return lengths


def _limit_lengths(freqs: np.ndarray, max_length: int) -> np.ndarray:
    """Huffman lengths capped at *max_length* via frequency flattening."""
    f = freqs.astype(np.int64, copy=True)
    lengths = _huffman_lengths(f)
    while int(lengths.max()) > max_length:
        nz = f > 0
        f[nz] = (f[nz] + 1) // 2
        lengths = _huffman_lengths(f)
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes (increasing by (length, symbol)) from lengths."""
    syms = np.nonzero(lengths)[0]
    if syms.size == 0:
        return np.zeros(lengths.size, dtype=np.uint32)
    order = np.lexsort((syms, lengths[syms]))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = int(lengths[syms[order[0]]])
    for s in syms[order]:
        l = int(lengths[s])
        code <<= l - prev_len
        codes[s] = code
        code += 1
        prev_len = l
    return codes


@dataclass
class HuffmanCodebook:
    """Canonical codebook: per-symbol code lengths (lengths define codes)."""

    lengths: np.ndarray  # uint8, one entry per alphabet symbol
    codes: np.ndarray  # uint32 canonical codewords

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray, max_length: int = MAX_CODE_LENGTH) -> "HuffmanCodebook":
        lengths = _limit_lengths(np.asarray(freqs), max_length)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCodebook":
        lengths = np.asarray(lengths, dtype=np.uint8)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @property
    def max_length(self) -> int:
        nz = self.lengths[self.lengths > 0]
        return int(nz.max()) if nz.size else 0

    @property
    def nbytes(self) -> int:
        """Serialized size: one length byte per alphabet symbol.

        Canonical codes are fully determined by the length array, and
        that is exactly what :func:`repro.compression.szlike.serialize.dumps`
        writes — so this matches the on-the-wire codebook section
        byte-for-byte.
        """
        return int(self.lengths.size)

    def kraft_sum(self) -> float:
        nz = self.lengths[self.lengths > 0].astype(np.float64)
        return float(np.sum(2.0 ** -nz))


def build_codebook(symbols: np.ndarray, alphabet_size: int) -> HuffmanCodebook:
    """Build a codebook from observed symbol data."""
    freqs = np.bincount(symbols.reshape(-1), minlength=alphabet_size)
    return HuffmanCodebook.from_frequencies(freqs)


DEFAULT_CHUNK = 4096


def huffman_encode(symbols: np.ndarray, codebook: HuffmanCodebook, chunk_size: int = DEFAULT_CHUNK):
    """Encode *symbols* -> ``(payload bytes, total_bits, chunk_offsets)``.

    Vectorized bit-plane placement: one boolean scatter per codeword bit.
    ``chunk_offsets`` records the starting bit of every *chunk_size*-symbol
    chunk (cuSZ's coarse-grained decode metadata); pass ``chunk_size=0``
    to skip it.
    """
    symbols = symbols.reshape(-1)
    if symbols.size == 0:
        return b"", 0, np.zeros(0, dtype=np.int64)
    lens = codebook.lengths[symbols].astype(np.int64)
    if np.any(lens == 0):
        bad = int(symbols[lens == 0][0])
        raise ValueError(f"symbol {bad} has no codeword in this codebook")
    offsets = np.empty(symbols.size, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(lens[:-1], out=offsets[1:])
    total_bits = int(lens.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    codevals = codebook.codes[symbols]
    for k in range(int(lens.max())):
        mask = lens > k
        shift = (lens[mask] - 1 - k).astype(np.uint32)
        bits[offsets[mask] + k] = (codevals[mask] >> shift) & 1
    chunk_offsets = offsets[::chunk_size].copy() if chunk_size else np.zeros(0, dtype=np.int64)
    return np.packbits(bits).tobytes(), total_bits, chunk_offsets


def _prefix_and_tables(payload: bytes, total_bits: int, codebook: HuffmanCodebook):
    """Shared decode setup: per-offset L-bit prefixes and dense tables."""
    L = codebook.max_length
    if L == 0:
        raise ValueError("codebook is empty")
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:total_bits]
    if bits.size != total_bits:
        raise ValueError(f"payload holds {bits.size} bits, expected {total_bits}")
    padded = np.concatenate([bits, np.zeros(L, dtype=np.uint8)])

    # Speculative L-bit prefix at every offset (big-endian), one shift/or
    # pass per bit plane.
    prefix = np.zeros(total_bits + 1, dtype=np.uint32)
    for j in range(L):
        prefix[:total_bits] = (prefix[:total_bits] << 1) | padded[j : j + total_bits]

    # Dense decode table over all 2^L prefixes.
    tsym = np.zeros(1 << L, dtype=np.uint32)
    tlen = np.ones(1 << L, dtype=np.uint8)
    for s in np.nonzero(codebook.lengths)[0]:
        l = int(codebook.lengths[s])
        c = int(codebook.codes[s])
        tsym[c << (L - l) : (c + 1) << (L - l)] = s
        tlen[c << (L - l) : (c + 1) << (L - l)] = l
    return prefix, tsym, tlen


def huffman_decode(
    payload: bytes,
    total_bits: int,
    count: int,
    codebook: HuffmanCodebook,
    chunk_offsets: np.ndarray = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Decode *count* symbols from *payload*.

    With ``chunk_offsets`` the chunked data-parallel decoder runs (all
    chunks advance one symbol per vectorized step); without it the
    pointer-jumping decoder reconstructs the codeword chain from scratch.
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    prefix, tsym, tlen = _prefix_and_tables(payload, total_bits, codebook)

    if chunk_offsets is not None and chunk_offsets.size:
        n_chunks = chunk_offsets.size
        if n_chunks != -(-count // chunk_size):
            raise ValueError("chunk metadata inconsistent with symbol count")
        out = np.empty(n_chunks * chunk_size, dtype=np.uint32)
        pos = chunk_offsets.astype(np.int64).copy()
        slot = np.arange(n_chunks, dtype=np.int64) * chunk_size
        for i in range(chunk_size):
            p = prefix[pos]
            out[slot + i] = tsym[p]
            pos += tlen[p]
            np.minimum(pos, total_bits, out=pos)
        return out[:count]

    # Jump array: next codeword start from every offset (sentinel at end).
    step = np.empty(total_bits + 1, dtype=np.int64)
    step[:total_bits] = np.arange(total_bits, dtype=np.int64) + tlen[prefix[:total_bits]]
    np.minimum(step, total_bits, out=step)
    step[total_bits] = total_bits

    # Recursive doubling: seq holds true codeword starts for steps
    # 0..2^i-1; jump advances 2^i steps at once.
    seq = np.zeros(1, dtype=np.int64)
    jump = step
    while seq.size < count:
        seq = np.concatenate([seq, jump[seq]])
        if seq.size < count:
            jump = jump[jump]
    seq = seq[:count]
    if int(seq[-1]) >= total_bits:
        raise ValueError("bitstream exhausted before all symbols were decoded")
    return tsym[prefix[seq]]


def entropy_bits(symbols: np.ndarray, alphabet_size: int) -> float:
    """Shannon-entropy lower bound (total bits) for coding *symbols*.

    Used by the adaptive controller to estimate compressed size without
    materializing a bitstream.
    """
    flat = symbols.reshape(-1)
    if flat.size == 0:
        return 0.0
    freqs = np.bincount(flat, minlength=alphabet_size).astype(np.float64)
    p = freqs[freqs > 0] / flat.size
    return float(-np.sum(p * np.log2(p)) * flat.size)
