"""Canonical, length-limited Huffman codec, fully vectorized.

cuSZ's entropy stage is a customized Huffman coder over the quantization
codes.  We reproduce it with HPC-flavoured twists so that neither
direction needs a Python-level per-symbol loop:

* **Encode** is *word-packed and blocked*: symbols are processed in
  fixed-size blocks; within a block every codeword (<= 16 bits, so it
  spans at most two adjacent 16-bit output words) is shifted to its
  absolute bit position and the per-word contributions are merged with
  one ``bincount`` — disjoint bits make integer addition equal to
  bitwise OR.  Peak scratch is one output-sized word array plus O(block)
  temporaries, versus the 8x-payload bit-expansion the previous
  bit-plane encoder materialized (kept as ``packer="bitplane"``, the
  reference implementation the packed path is property-tested against).

* **Decode** is sequential in nature (each codeword's start depends on
  the previous lengths), which is the same obstacle cuSZ's GPU decoder
  faces.  Two data-parallel decoders are provided:

  - *chunked* (default, and what cuSZ itself does): the encoder records
    the bit offset of every fixed-size symbol chunk; chunks decode
    independently, and the decoder iterates over symbol slots while
    processing **all chunks simultaneously**.  Each step reads the
    current codeword's L-bit window directly out of the packed payload
    (three byte gathers + shifts), so no bit-expanded or per-offset
    prefix array is ever materialized — scratch is O(#chunks) per step
    plus the dense decode table, which is **cached on the codebook**
    (one table build per codebook lifetime, amortized by the
    cross-iteration :class:`~repro.compression.szlike.codebook_cache.CodebookCache`).
  - *pointer jumping*: offset-metadata-free fallback that decodes
    speculatively at every bit offset via a dense ``2^L`` prefix table
    and recovers the true codeword chain with recursive doubling —
    ``O(B log n)`` fully vectorized.

Code lengths are limited to :data:`MAX_CODE_LENGTH` bits by frequency
flattening, keeping the prefix table at 64Ki entries.

The symbol histogram is a first-class input: :func:`histogram`,
:meth:`HuffmanCodebook.from_frequencies`, and :func:`entropy_bits_from_hist`
let one ``bincount`` feed the codebook build, the entropy estimate, and
the codebook cache's staleness check instead of each running its own.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kernels import get_backend
from repro.kernels.numpy_backend import ENCODE_BLOCK as ENCODE_BLOCK  # noqa: F401 (re-export)

__all__ = [
    "MAX_CODE_LENGTH",
    "HuffmanCodebook",
    "build_codebook",
    "histogram",
    "huffman_encode",
    "huffman_decode",
    "entropy_bits",
    "entropy_bits_from_hist",
]

MAX_CODE_LENGTH = 16


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol from frequencies (0 for absent symbols)."""
    present = np.nonzero(freqs)[0]
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if present.size == 0:
        raise ValueError("cannot build a Huffman code over an empty input")
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    # Standard heap construction; nodes carry their leaf sets so depths can
    # be assigned when the tree is complete.  Alphabet size is small (<= 64Ki
    # in practice ~1Ki) and the CodebookCache amortizes rebuilds across
    # iterations, so this Python loop stays off the steady-state hot path.
    heap = [(int(freqs[s]), int(s), [int(s)]) for s in present]
    heapq.heapify(heap)
    counter = int(freqs.size)
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for s in s1:
            lengths[s] += 1
        for s in s2:
            lengths[s] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, s1 + s2))
    return lengths


def _limit_lengths(freqs: np.ndarray, max_length: int) -> np.ndarray:
    """Huffman lengths capped at *max_length* via frequency flattening."""
    f = freqs.astype(np.int64, copy=True)
    lengths = _huffman_lengths(f)
    while int(lengths.max()) > max_length:
        nz = f > 0
        f[nz] = (f[nz] + 1) // 2
        lengths = _huffman_lengths(f)
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes (increasing by (length, symbol)) from lengths."""
    syms = np.nonzero(lengths)[0]
    if syms.size == 0:
        return np.zeros(lengths.size, dtype=np.uint32)
    order = np.lexsort((syms, lengths[syms]))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = int(lengths[syms[order[0]]])
    for s in syms[order]:
        l = int(lengths[s])
        code <<= l - prev_len
        codes[s] = code
        code += 1
        prev_len = l
    return codes


@dataclass
class HuffmanCodebook:
    """Canonical codebook: per-symbol code lengths (lengths define codes)."""

    lengths: np.ndarray  # uint8, one entry per alphabet symbol
    codes: np.ndarray  # uint32 canonical codewords
    #: lazily built dense decode tables (``(tsym, tlen)`` over all 2^L
    #: prefixes) — cached here so a codebook reused across iterations (or
    #: shared across chunks) pays the table-build loop exactly once
    _tables: Optional[tuple] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray, max_length: int = MAX_CODE_LENGTH) -> "HuffmanCodebook":
        lengths = _limit_lengths(np.asarray(freqs), max_length)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCodebook":
        lengths = np.asarray(lengths, dtype=np.uint8)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @property
    def max_length(self) -> int:
        nz = self.lengths[self.lengths > 0]
        return int(nz.max()) if nz.size else 0

    @property
    def nbytes(self) -> int:
        """Serialized size: one length byte per alphabet symbol.

        Canonical codes are fully determined by the length array, and
        that is exactly what :func:`repro.compression.szlike.serialize.dumps`
        writes — so this matches the on-the-wire codebook section
        byte-for-byte.
        """
        return int(self.lengths.size)

    def kraft_sum(self) -> float:
        nz = self.lengths[self.lengths > 0].astype(np.float64)
        return float(np.sum(2.0 ** -nz))

    def decode_tables(self) -> tuple:
        """Dense decode tables ``(tsym uint32, tlen int64)`` over all
        ``2^L`` L-bit prefixes, built once and cached on the codebook."""
        if self._tables is None:
            L = self.max_length
            if L == 0:
                raise ValueError("codebook is empty")
            tsym = np.zeros(1 << L, dtype=np.uint32)
            tlen = np.ones(1 << L, dtype=np.int64)
            for s in np.nonzero(self.lengths)[0]:
                l = int(self.lengths[s])
                c = int(self.codes[s])
                tsym[c << (L - l) : (c + 1) << (L - l)] = s
                tlen[c << (L - l) : (c + 1) << (L - l)] = l
            self._tables = (tsym, tlen)
        return self._tables

    # The cached tables are derived state: drop them when pickling (the
    # process-pool chunked codec ships codebooks to workers) so the wire
    # cost stays one length byte per symbol.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_tables"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


def histogram(symbols: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Symbol frequency histogram (the one ``bincount`` the codebook
    build, the entropy estimate, and the cache staleness check share)."""
    return np.bincount(symbols.reshape(-1), minlength=alphabet_size)


def build_codebook(symbols: np.ndarray, alphabet_size: int) -> HuffmanCodebook:
    """Build a codebook from observed symbol data."""
    return HuffmanCodebook.from_frequencies(histogram(symbols, alphabet_size))


DEFAULT_CHUNK = 4096

# ENCODE_BLOCK (symbols per encode block, a multiple of DEFAULT_CHUNK)
# now lives in repro.kernels.numpy_backend with the packing loop; it is
# re-exported above for compatibility.


def _encode_bitplane(symbols: np.ndarray, codebook: HuffmanCodebook, chunk_size: int):
    """Reference encoder: one boolean scatter per codeword bit plane.

    Materializes a ``total_bits``-long uint8 array (8x the packed
    payload); kept as the property-test oracle for the word-packed path
    and as the ``packer="bitplane"`` legacy baseline benchmarks measure
    against.
    """
    lens = codebook.lengths[symbols].astype(np.int64)
    if np.any(lens == 0):
        bad = int(symbols[lens == 0][0])
        raise ValueError(f"symbol {bad} has no codeword in this codebook")
    offsets = np.empty(symbols.size, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(lens[:-1], out=offsets[1:])
    total_bits = int(lens.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    codevals = codebook.codes[symbols]
    for k in range(int(lens.max())):
        mask = lens > k
        shift = (lens[mask] - 1 - k).astype(np.uint32)
        bits[offsets[mask] + k] = (codevals[mask] >> shift) & 1
    chunk_offsets = offsets[::chunk_size].copy() if chunk_size else np.zeros(0, dtype=np.int64)
    return np.packbits(bits).tobytes(), total_bits, chunk_offsets


def _encode_words(symbols: np.ndarray, codebook: HuffmanCodebook, chunk_size: int, kernels=None):
    """Word-packed blocked encoder (the low-allocation hot path).

    The packing loop is a backend kernel (``huffman_pack_words``): the
    NumPy reference shifts each <= 16-bit codeword into a 32-bit window
    at its absolute bit position and merges per-word contributions with
    ``bincount`` (disjoint bits make integer addition equal bitwise OR);
    the compiled backend streams branch-per-symbol through a small
    accumulator.  Both produce identical big-endian bytes.
    """
    kernels = kernels if kernels is not None else get_backend("numpy")
    return kernels.huffman_pack_words(symbols, codebook.lengths, codebook.codes, chunk_size)


def huffman_encode(
    symbols: np.ndarray,
    codebook: HuffmanCodebook,
    chunk_size: int = DEFAULT_CHUNK,
    packer: str = "words",
    kernels=None,
):
    """Encode *symbols* -> ``(payload bytes, total_bits, chunk_offsets)``.

    ``chunk_offsets`` records the starting bit of every *chunk_size*-symbol
    chunk (cuSZ's coarse-grained decode metadata); pass ``chunk_size=0``
    to skip it.  ``packer`` selects the kernel: ``"words"`` (default,
    blocked word-packing with O(block) scratch) or ``"bitplane"`` (the
    legacy 8x-payload bit-expansion, kept as the reference oracle).
    Both produce identical bytes.  *kernels* is a
    :class:`~repro.kernels.backends.KernelBackend` for the ``"words"``
    inner loop (default: the NumPy reference).
    """
    symbols = symbols.reshape(-1)
    if symbols.size == 0:
        return b"", 0, np.zeros(0, dtype=np.int64)
    if packer == "words":
        return _encode_words(symbols, codebook, chunk_size, kernels)
    if packer == "bitplane":
        return _encode_bitplane(symbols, codebook, chunk_size)
    raise ValueError(f"packer must be 'words' or 'bitplane', got {packer!r}")


def _prefix_and_tables(payload: bytes, total_bits: int, codebook: HuffmanCodebook):
    """Pointer-jumping decode setup: per-offset L-bit prefixes and the
    dense tables (only the offset-metadata-free fallback needs the full
    prefix array; the chunked decoder reads windows directly)."""
    L = codebook.max_length
    if L == 0:
        raise ValueError("codebook is empty")
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:total_bits]
    if bits.size != total_bits:
        raise ValueError(f"payload holds {bits.size} bits, expected {total_bits}")
    padded = np.concatenate([bits, np.zeros(L, dtype=np.uint8)])

    # Speculative L-bit prefix at every offset (big-endian), one shift/or
    # pass per bit plane.
    prefix = np.zeros(total_bits + 1, dtype=np.uint32)
    for j in range(L):
        prefix[:total_bits] = (prefix[:total_bits] << 1) | padded[j : j + total_bits]

    tsym, tlen = codebook.decode_tables()
    return prefix, tsym, tlen


def _decode_chunked(
    payload: bytes,
    total_bits: int,
    count: int,
    codebook: HuffmanCodebook,
    chunk_offsets: np.ndarray,
    chunk_size: int,
    kernels=None,
) -> np.ndarray:
    """Data-parallel chunked decode reading L-bit windows in place.

    Metadata validation and the dense-table build live here (identical
    errors on every backend); the window-gather loop is a backend
    kernel (``huffman_unpack_window``).  The NumPy reference advances
    all chunks one symbol per vectorized step, gathering each codeword's
    window directly from the packed payload (three bytes cover any
    16-bit codeword at any bit phase) — no 8x bit expansion, no 32x
    per-offset prefix array; the compiled backend walks each chunk
    sequentially.
    """
    L = codebook.max_length
    if L == 0:
        raise ValueError("codebook is empty")
    if 8 * len(payload) < total_bits:
        raise ValueError(f"payload holds {8 * len(payload)} bits, expected {total_bits}")
    tsym, tlen = codebook.decode_tables()
    n_chunks = chunk_offsets.size
    if n_chunks != -(-count // chunk_size):
        raise ValueError("chunk metadata inconsistent with symbol count")
    pos = chunk_offsets.astype(np.int64)
    if pos.size and (int(pos.min()) < 0 or int(pos.max()) >= max(total_bits, 1)):
        raise ValueError("chunk offsets out of range")
    kernels = kernels if kernels is not None else get_backend("numpy")
    return kernels.huffman_unpack_window(
        payload, total_bits, count, tsym, tlen, L, pos, chunk_size
    )


def huffman_decode(
    payload: bytes,
    total_bits: int,
    count: int,
    codebook: HuffmanCodebook,
    chunk_offsets: np.ndarray = None,
    chunk_size: int = DEFAULT_CHUNK,
    kernels=None,
) -> np.ndarray:
    """Decode *count* symbols from *payload*.

    With ``chunk_offsets`` the chunked data-parallel decoder runs (all
    chunks advance one symbol per vectorized step, windows gathered
    straight from the packed bytes); without it the pointer-jumping
    decoder reconstructs the codeword chain from scratch.  *kernels*
    selects the chunked inner loop's backend (default: NumPy reference).
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint32)

    if chunk_offsets is not None and chunk_offsets.size:
        return _decode_chunked(
            payload, total_bits, count, codebook, chunk_offsets, chunk_size, kernels
        )

    prefix, tsym, tlen = _prefix_and_tables(payload, total_bits, codebook)

    # Jump array: next codeword start from every offset (sentinel at end).
    step = np.empty(total_bits + 1, dtype=np.int64)
    step[:total_bits] = np.arange(total_bits, dtype=np.int64) + tlen[prefix[:total_bits]]
    np.minimum(step, total_bits, out=step)
    step[total_bits] = total_bits

    # Recursive doubling: seq holds true codeword starts for steps
    # 0..2^i-1; jump advances 2^i steps at once.
    seq = np.zeros(1, dtype=np.int64)
    jump = step
    while seq.size < count:
        seq = np.concatenate([seq, jump[seq]])
        if seq.size < count:
            jump = jump[jump]
    seq = seq[:count]
    if int(seq[-1]) >= total_bits:
        raise ValueError("bitstream exhausted before all symbols were decoded")
    return tsym[prefix[seq]]


def entropy_bits_from_hist(hist: np.ndarray) -> float:
    """Shannon-entropy lower bound (total bits) from a symbol histogram."""
    count = int(hist.sum())
    if count == 0:
        return 0.0
    freqs = hist[hist > 0].astype(np.float64)
    p = freqs / count
    return float(-np.sum(p * np.log2(p)) * count)


def entropy_bits(symbols: np.ndarray, alphabet_size: int) -> float:
    """Shannon-entropy lower bound (total bits) for coding *symbols*.

    Used by the adaptive controller to estimate compressed size without
    materializing a bitstream.  Callers that already hold the histogram
    should use :func:`entropy_bits_from_hist` instead of paying a second
    ``bincount``.
    """
    flat = symbols.reshape(-1)
    if flat.size == 0:
        return 0.0
    return entropy_bits_from_hist(histogram(flat, alphabet_size))
