"""Vectorized Lorenzo predictor (the prediction stage of SZ / cuSZ).

The Lorenzo predictor estimates each point from its already-decoded
neighbours; for integer (pre-quantized) data the prediction residual is
exactly the d-dimensional finite difference of the array, and the inverse
transform is a cumulative sum along each predicted axis.  Both directions
are therefore fully vectorized NumPy primitives — no Python-level loops —
matching cuSZ's data-parallel formulation.

The transform operates on the *last* ``ndim`` axes of the input; leading
axes (batch, channel) are carried along untouched, which is how we apply
2-D Lorenzo prediction per feature map of an ``(N, C, H, W)`` activation
tensor.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.numpy_backend import (
    cumsum_axes,
    diff_axes,
    diff_axes_alloc,
    validate_lorenzo as _validate,
)

__all__ = ["lorenzo_encode", "lorenzo_decode"]


def lorenzo_encode(
    q: np.ndarray, ndim: int = 2, out: np.ndarray = None, work: np.ndarray = None
) -> np.ndarray:
    """Residuals of the Lorenzo predictor over the last ``ndim`` axes.

    For integer input the transform is exact (losslessly invertible by
    :func:`lorenzo_decode`).  The first element along each axis is
    predicted as 0, i.e. residuals at the boundary equal the raw values.

    With *out* (and, for ``ndim >= 2``, *work*) the per-axis differences
    ping-pong between the two caller-owned buffers instead of allocating
    — *work* may be *q* itself when the caller no longer needs the
    input.  The returned array is whichever buffer holds the final
    residuals.
    """
    _validate(q, ndim)
    if out is None:
        return diff_axes_alloc(q, ndim)
    if ndim >= 2 and work is None:
        raise ValueError("lorenzo_encode with out= needs a work buffer for ndim >= 2")
    return diff_axes(q, ndim, out=out, work=work)


def lorenzo_decode(delta: np.ndarray, ndim: int = 2) -> np.ndarray:
    """Invert :func:`lorenzo_encode` (cumulative sums along each axis)."""
    _validate(delta, ndim)
    return cumsum_axes(delta, ndim)
