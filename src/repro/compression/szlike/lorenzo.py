"""Vectorized Lorenzo predictor (the prediction stage of SZ / cuSZ).

The Lorenzo predictor estimates each point from its already-decoded
neighbours; for integer (pre-quantized) data the prediction residual is
exactly the d-dimensional finite difference of the array, and the inverse
transform is a cumulative sum along each predicted axis.  Both directions
are therefore fully vectorized NumPy primitives — no Python-level loops —
matching cuSZ's data-parallel formulation.

The transform operates on the *last* ``ndim`` axes of the input; leading
axes (batch, channel) are carried along untouched, which is how we apply
2-D Lorenzo prediction per feature map of an ``(N, C, H, W)`` activation
tensor.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_encode", "lorenzo_decode"]


def _validate(arr: np.ndarray, ndim: int) -> int:
    if ndim < 1 or ndim > 3:
        raise ValueError(f"Lorenzo prediction supports 1-3 dims, got {ndim}")
    if arr.ndim < ndim:
        raise ValueError(
            f"array with {arr.ndim} axes cannot be Lorenzo-predicted over {ndim} axes"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("Lorenzo transform requires integer (pre-quantized) input")
    return ndim


def _diff_into(src: np.ndarray, axis: int, dst: np.ndarray) -> None:
    """Finite difference along *axis* from *src* into *dst* (boundary
    element copied).  *dst* must not alias *src*."""
    hi = [slice(None)] * src.ndim
    lo = [slice(None)] * src.ndim
    first = [slice(None)] * src.ndim
    hi[axis] = slice(1, None)
    lo[axis] = slice(None, -1)
    first[axis] = slice(0, 1)
    np.subtract(src[tuple(hi)], src[tuple(lo)], out=dst[tuple(hi)])
    dst[tuple(first)] = src[tuple(first)]


def lorenzo_encode(
    q: np.ndarray, ndim: int = 2, out: np.ndarray = None, work: np.ndarray = None
) -> np.ndarray:
    """Residuals of the Lorenzo predictor over the last ``ndim`` axes.

    For integer input the transform is exact (losslessly invertible by
    :func:`lorenzo_decode`).  The first element along each axis is
    predicted as 0, i.e. residuals at the boundary equal the raw values.

    With *out* (and, for ``ndim >= 2``, *work*) the per-axis differences
    ping-pong between the two caller-owned buffers instead of allocating
    — *work* may be *q* itself when the caller no longer needs the
    input.  The returned array is whichever buffer holds the final
    residuals.
    """
    _validate(q, ndim)
    if out is None:
        res = q
        for axis in range(q.ndim - ndim, q.ndim):
            res = np.diff(res, axis=axis, prepend=np.zeros_like(res.take([0], axis=axis)))
        return res
    if ndim >= 2 and work is None:
        raise ValueError("lorenzo_encode with out= needs a work buffer for ndim >= 2")
    src, dst = q, out
    for axis in range(q.ndim - ndim, q.ndim):
        _diff_into(src, axis, dst)
        src, dst = dst, (work if dst is out else out)
    return src


def lorenzo_decode(delta: np.ndarray, ndim: int = 2) -> np.ndarray:
    """Invert :func:`lorenzo_encode` (cumulative sums along each axis)."""
    _validate(delta, ndim)
    out = delta
    for axis in range(delta.ndim - ndim, delta.ndim):
        out = np.cumsum(out, axis=axis, dtype=delta.dtype)
    return out
