"""Compression quality metrics and distribution tests.

These back the paper's measurement plots: compression ratio (Table 1),
the uniformity of SZ reconstruction error (Figure 3), and error summary
statistics used throughout Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "compression_ratio",
    "max_abs_error",
    "mse",
    "psnr",
    "ErrorStats",
    "error_stats",
    "uniformity_pvalue",
    "normality_pvalue",
]


def compression_ratio(original: np.ndarray, compressed_nbytes: int) -> float:
    """Original bytes over compressed bytes."""
    if compressed_nbytes <= 0:
        raise ValueError("compressed size must be positive")
    return original.nbytes / compressed_nbytes


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    return float(np.max(np.abs(original.astype(np.float64) - reconstructed.astype(np.float64))))


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    d = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.mean(d * d))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB over the data's value range."""
    m = mse(original, reconstructed)
    if m == 0:
        return float("inf")
    vrange = float(original.max() - original.min())
    if vrange == 0:
        return float("inf")
    return 10.0 * np.log10(vrange**2 / m)


@dataclass
class ErrorStats:
    """Summary of a pointwise error sample."""

    mean: float
    std: float
    max_abs: float
    skew: float
    kurtosis: float  # Fisher (normal == 0)
    n: int


def error_stats(errors: np.ndarray) -> ErrorStats:
    e = np.asarray(errors, dtype=np.float64).reshape(-1)
    return ErrorStats(
        mean=float(e.mean()),
        std=float(e.std()),
        max_abs=float(np.abs(e).max()) if e.size else 0.0,
        skew=float(stats.skew(e)) if e.size > 2 else 0.0,
        kurtosis=float(stats.kurtosis(e)) if e.size > 3 else 0.0,
        n=int(e.size),
    )


def uniformity_pvalue(errors: np.ndarray, bound: float) -> float:
    """KS-test p-value of errors against U(-bound, +bound).

    High p-value -> consistent with the uniform error model of Section 3.1.
    """
    e = np.asarray(errors, dtype=np.float64).reshape(-1)
    if e.size == 0:
        raise ValueError("empty error sample")
    return float(stats.kstest(e, "uniform", args=(-bound, 2 * bound)).pvalue)


def normality_pvalue(errors: np.ndarray) -> float:
    """KS-test p-value against a normal fitted by moments (Figure 6 check)."""
    e = np.asarray(errors, dtype=np.float64).reshape(-1)
    if e.size == 0:
        raise ValueError("empty error sample")
    s = e.std()
    if s == 0:
        return 0.0
    return float(stats.kstest((e - e.mean()) / s, "norm").pvalue)
