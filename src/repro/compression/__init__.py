"""Compression substrate: SZ-style error-bounded compressor plus baselines."""

from repro.compression.szlike import SZCompressor, CompressedTensor
from repro.compression.jpeg_like import JpegLikeCompressor, JpegCompressedTensor
from repro.compression.lossless import (
    DeflateCompressor,
    SparseLosslessCompressor,
    LosslessCompressedTensor,
)
from repro.compression.metrics import (
    compression_ratio,
    error_stats,
    max_abs_error,
    mse,
    normality_pvalue,
    psnr,
    uniformity_pvalue,
)

__all__ = [
    "SZCompressor",
    "CompressedTensor",
    "JpegLikeCompressor",
    "JpegCompressedTensor",
    "DeflateCompressor",
    "SparseLosslessCompressor",
    "LosslessCompressedTensor",
    "compression_ratio",
    "error_stats",
    "max_abs_error",
    "mse",
    "normality_pvalue",
    "psnr",
    "uniformity_pvalue",
]
