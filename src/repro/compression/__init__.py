"""Compression substrate: SZ-style error-bounded compressor, baselines,
and the unified codec registry (:mod:`repro.compression.registry`)."""

from repro.compression.szlike import (
    CodebookCache,
    CompressedTensor,
    SharedCodebookCache,
    SZCompressor,
)
from repro.compression.jpeg_like import JpegLikeCompressor, JpegCompressedTensor
from repro.compression.lossless import (
    DeflateCompressor,
    SparseLosslessCompressor,
    LosslessCompressedTensor,
)
from repro.compression.registry import (
    ChunkedCodec,
    ChunkedCompressedTensor,
    Codec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.compression.metrics import (
    compression_ratio,
    error_stats,
    max_abs_error,
    mse,
    normality_pvalue,
    psnr,
    uniformity_pvalue,
)

__all__ = [
    "SZCompressor",
    "CodebookCache",
    "SharedCodebookCache",
    "CompressedTensor",
    "JpegLikeCompressor",
    "JpegCompressedTensor",
    "DeflateCompressor",
    "SparseLosslessCompressor",
    "LosslessCompressedTensor",
    "Codec",
    "ChunkedCodec",
    "ChunkedCompressedTensor",
    "available_codecs",
    "get_codec",
    "register_codec",
    "compression_ratio",
    "error_stats",
    "max_abs_error",
    "mse",
    "normality_pvalue",
    "psnr",
    "uniformity_pvalue",
]
