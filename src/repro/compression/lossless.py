"""Lossless baselines: the <= ~2x ceiling the paper cites (Section 2.1).

Two codecs are provided:

* :class:`DeflateCompressor` — plain DEFLATE over the raw float bytes
  (GZIP-class, the generic lossless baseline).
* :class:`SparseLosslessCompressor` — sparsity-aware: a zero bitmap plus
  DEFLATE-compressed non-zero payload, modeling CDMA-style "compressing
  DMA engine" schemes (Rhu et al., HPCA 2018) that exploit ReLU-induced
  activation sparsity.  Exactly lossless, bounded by the non-zero ratio.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["DeflateCompressor", "SparseLosslessCompressor", "LosslessCompressedTensor"]

HEADER_BYTES = 32


@dataclass
class LosslessCompressedTensor:
    shape: tuple
    dtype: str
    scheme: str
    payload: bytes
    bitmap: bytes = b""

    #: fixed header charge used by ``nbytes`` (accounting convention
    #: shared with the SZ-style codec: sections at exact serialized
    #: size, wire header at this constant).
    header_nbytes = HEADER_BYTES

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        return len(self.payload) + len(self.bitmap) + HEADER_BYTES

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes


class DeflateCompressor:
    """GZIP-class lossless compression of the raw tensor bytes."""

    def __init__(self, level: int = 6):
        self.level = int(level)

    def compress(self, x: np.ndarray) -> LosslessCompressedTensor:
        x = np.ascontiguousarray(x)
        return LosslessCompressedTensor(
            shape=x.shape, dtype=str(x.dtype), scheme="deflate",
            payload=zlib.compress(x.tobytes(), self.level),
        )

    def decompress(self, ct: LosslessCompressedTensor) -> np.ndarray:
        raw = zlib.decompress(ct.payload)
        return np.frombuffer(raw, dtype=ct.dtype).reshape(ct.shape).copy()

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        return self.decompress(self.compress(x))


class SparseLosslessCompressor:
    """Zero-bitmap + DEFLATE(non-zeros): CDMA-style sparsity exploitation."""

    def __init__(self, level: int = 6):
        self.level = int(level)

    def compress(self, x: np.ndarray) -> LosslessCompressedTensor:
        x = np.ascontiguousarray(x)
        flat = x.reshape(-1)
        nz_mask = flat != 0
        bitmap = np.packbits(nz_mask).tobytes()
        payload = zlib.compress(flat[nz_mask].tobytes(), self.level)
        return LosslessCompressedTensor(
            shape=x.shape, dtype=str(x.dtype), scheme="sparse",
            payload=payload, bitmap=bitmap,
        )

    def decompress(self, ct: LosslessCompressedTensor) -> np.ndarray:
        n = int(np.prod(ct.shape))
        nz_mask = np.unpackbits(np.frombuffer(ct.bitmap, dtype=np.uint8))[:n].astype(bool)
        values = np.frombuffer(zlib.decompress(ct.payload), dtype=ct.dtype)
        flat = np.zeros(n, dtype=ct.dtype)
        flat[nz_mask] = values
        return flat.reshape(ct.shape)

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        return self.decompress(self.compress(x))
