"""JPEG-ACT-style baseline: transform-based lossy compression of activations.

JPEG-ACT (Evans et al., ISCA 2020) — the paper's state-of-the-art
comparator — applies a modified JPEG pipeline to activation tensors with
dedicated GPU hardware.  We reproduce the *algorithmic* pipeline in
software: 8x8 block DCT over each feature map, quantization with a scaled
JPEG luminance matrix, and an entropy stage over the quantized integer
coefficients.

The defining contrast with the SZ-style compressor is that the error is
controlled only indirectly through the ``quality`` knob: there is **no
per-element absolute error bound**, which is exactly the drawback the
paper argues against (Section 2.1).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np
from scipy.fft import dctn, idctn

__all__ = ["JpegLikeCompressor", "JpegCompressedTensor", "JPEG_LUMINANCE_Q"]

# The ISO/IEC 10918-1 Annex K luminance quantization table.
JPEG_LUMINANCE_Q = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

HEADER_BYTES = 64


def _quality_scale(quality: int) -> np.ndarray:
    """Scaled quantization matrix per the IJG quality convention."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    s = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    q = np.floor((JPEG_LUMINANCE_Q * s + 50.0) / 100.0)
    return np.clip(q, 1.0, None)


def _blockify(plane: np.ndarray, block: int = 8):
    """Pad the trailing 2 axes to multiples of *block* and tile into blocks."""
    *lead, h, w = plane.shape
    ph = (-h) % block
    pw = (-w) % block
    if ph or pw:
        pad = [(0, 0)] * len(lead) + [(0, ph), (0, pw)]
        plane = np.pad(plane, pad, mode="edge")
    H, W = h + ph, w + pw
    tiled = plane.reshape(*lead, H // block, block, W // block, block)
    tiled = np.moveaxis(tiled, -3, -2)  # (..., H/b, W/b, b, b)
    return tiled, (h, w)


def _unblockify(tiled: np.ndarray, hw):
    h, w = hw
    tiled = np.moveaxis(tiled, -2, -3)
    *lead, nh, b1, nw, b2 = tiled.shape
    plane = tiled.reshape(*lead, nh * b1, nw * b2)
    return plane[..., :h, :w]


@dataclass
class JpegCompressedTensor:
    shape: tuple
    dtype: str
    quality: int
    scale: float
    payload: bytes
    coeff_dtype: str
    padded_shape: tuple

    #: fixed header charge used by ``nbytes`` (accounting convention
    #: shared with the SZ-style codec: sections at exact serialized
    #: size, wire header at this constant).
    header_nbytes = HEADER_BYTES

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        return len(self.payload) + HEADER_BYTES

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / self.nbytes


class JpegLikeCompressor:
    """8x8 DCT + quantization-matrix codec applied to float tensors.

    ``quality`` plays the JPEG role (1 = coarsest). Activation tensors are
    rescaled into the nominal [-128, 128) JPEG sample range before the
    transform, mirroring JPEG-ACT's fixed-point front end.
    """

    def __init__(self, quality: int = 50, zlib_level: int = 6):
        self.quality = int(quality)
        self.qmatrix = _quality_scale(self.quality)
        self.zlib_level = int(zlib_level)

    def compress(self, x: np.ndarray) -> JpegCompressedTensor:
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.floating):
            raise TypeError(f"expected floating-point input, got {x.dtype}")
        if x.ndim < 2:
            raise ValueError("JPEG-like codec needs at least 2 spatial axes")
        amax = float(np.abs(x).max())
        scale = amax / 127.0 if amax > 0 else 1.0
        tiled, hw = _blockify(x.astype(np.float64) / scale)
        coeffs = dctn(tiled, axes=(-2, -1), norm="ortho")
        quant = np.rint(coeffs / self.qmatrix)
        info = np.iinfo(np.int16)
        coeff_dtype = "int16" if (quant.min() >= info.min and quant.max() <= info.max) else "int32"
        quant = quant.astype(coeff_dtype)
        payload = zlib.compress(quant.tobytes(), self.zlib_level)
        return JpegCompressedTensor(
            shape=x.shape,
            dtype=str(x.dtype),
            quality=self.quality,
            scale=scale,
            payload=payload,
            coeff_dtype=coeff_dtype,
            padded_shape=quant.shape,
        )

    def decompress(self, ct: JpegCompressedTensor) -> np.ndarray:
        quant = np.frombuffer(zlib.decompress(ct.payload), dtype=ct.coeff_dtype)
        quant = quant.reshape(ct.padded_shape).astype(np.float64)
        coeffs = quant * self.qmatrix
        tiled = idctn(coeffs, axes=(-2, -1), norm="ortho")
        hw = (ct.shape[-2], ct.shape[-1])
        plane = _unblockify(tiled, hw)
        return (plane * ct.scale).astype(np.dtype(ct.dtype))

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        return self.decompress(self.compress(x))
