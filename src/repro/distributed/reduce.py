"""Deterministic weighted gradient reduction.

Floating-point addition is not associative, so the *schedule* of a
reduction is part of a run's identity: two orders give two (slightly)
different float results, and bit-reproducibility from a committed config
requires pinning one.  This module implements the two schedules
:class:`~repro.api.config.DistributedSpec` names:

* ``"tree"`` — fixed binary rank-tree: ``(0+1) + (2+3)`` then up.  The
  pairing depends only on the rank indices, never on arrival order or
  hash state.
* ``"linear"`` — left fold ``((0+1)+2)+3`` in rank order.

Both accumulate in float64 and cast the weighted mean back to float32
at the end, so the schedule's rounding differences stay in the last
float32 bit and the result is independent of *when* each rank's
gradient arrived (the coordinator always receives in rank order).

The weights are the ranks' shard sizes: with per-rank losses averaged
over their shard, the shard-size-weighted mean of the rank gradients
equals the single-worker global-batch gradient (up to summation order).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["REDUCE_ORDERS", "reduce_arrays"]

#: the reduction schedules DistributedSpec.reduce_order accepts
REDUCE_ORDERS = ("tree", "linear")


def _fold(terms: List[np.ndarray], order: str) -> np.ndarray:
    if order == "linear":
        acc = terms[0]
        for t in terms[1:]:
            acc = acc + t
        return acc
    # tree: combine fixed adjacent pairs until one term remains
    while len(terms) > 1:
        nxt = []
        for i in range(0, len(terms) - 1, 2):
            nxt.append(terms[i] + terms[i + 1])
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def reduce_arrays(
    arrays: Sequence[np.ndarray],
    weights: Sequence[float],
    order: str = "tree",
) -> np.ndarray:
    """Weighted mean of *arrays* under a fixed summation schedule.

    ``arrays[r]`` is rank *r*'s gradient, ``weights[r]`` its shard size.
    Terms are promoted to float64, combined in the schedule *order*
    prescribes, divided by the (identically scheduled) weight total, and
    cast to float32 — the same bits every time for the same inputs.
    """
    if order not in REDUCE_ORDERS:
        raise ValueError(
            f"reduce order must be one of {REDUCE_ORDERS}, got {order!r}"
        )
    if not arrays:
        raise ValueError("reduce_arrays needs at least one array")
    if len(arrays) != len(weights):
        raise ValueError(
            f"got {len(arrays)} arrays but {len(weights)} weights"
        )
    if any(w <= 0 for w in weights):
        raise ValueError(f"weights must be positive, got {list(weights)}")
    terms = [
        np.asarray(a, dtype=np.float64) * float(w)
        for a, w in zip(arrays, weights)
    ]
    shape = terms[0].shape
    for t in terms[1:]:
        if t.shape != shape:
            raise ValueError(
                f"rank gradients disagree on shape: {shape} vs {t.shape}"
            )
    total = _fold([np.float64(w) for w in weights], order)
    return (_fold(terms, order) / total).astype(np.float32)
