"""Coordinator side: ``DistributedSession`` behind the Session surface.

``build_session`` hands one of these back whenever
``config.distributed.world_size > 1``.  The coordinator owns the rank
processes: it shards every batch across them, mediates the compressed
gradient exchange (receive in rank order, reduce on the fixed schedule,
broadcast one bit-exact blob), aggregates the per-rank records into the
usual :class:`~repro.nn.trainer.TrainHistory`, and tears everything
down behind the one :meth:`~repro.api.session.Session.close` the
Session contract promises.

Star topology, deliberately: the coordinator is the only place float
addition happens, so the reduction schedule is pinned by construction
(DET001's no-hash-order rule applies here — ranks are always visited
``0..N-1``).  Every rank applies the *same* broadcast bytes, so rank
weights stay bit-identical step after step — verified by
:meth:`DistributedSession.rank_weights` in the tests.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, List, Optional

import numpy as np

from repro.api.config import ConfigError, SessionConfig
from repro.api.session import Session
from repro.compression.registry import dumps, loads
from repro.distributed.grad_compress import build_grad_plan, downlink_codec_spec
from repro.distributed.reduce import reduce_arrays
from repro.distributed.worker import rank_main
from repro.nn.trainer import IterationRecord, TrainHistory
from repro.utils import profiler as _profiler
from repro.utils.profiler import StageProfiler

__all__ = ["DistributedSession", "build_distributed_session"]


class _RankStats:
    """Uplink accounting for one rank, accumulated by the coordinator."""

    __slots__ = ("raw_bytes", "compressed_bytes", "residual_norms")

    def __init__(self):
        self.raw_bytes = 0
        self.compressed_bytes = 0
        self.residual_norms: List[float] = []


class DistributedSession(Session):
    """N rank processes behind the single-session surface.

    The activation-side accessors (``tracker``, ``engine``,
    ``policy_table``, ...) are per-rank internals living in other
    processes and read ``None``/empty here; what the coordinator *can*
    see — the training history, merged stage profiles, and the
    gradient-exchange ledger (:attr:`grad_exchange_stats`) — is exposed
    with the same shapes the single-process session uses.
    """

    def __init__(self, network, config: SessionConfig, processes, conns, plan, profiler):
        super().__init__(network, None, None, config)
        self._processes = processes
        self._conns = conns
        self._plan = plan
        self._profiler = profiler
        self._history = TrainHistory()
        self._iteration = 0
        self._closed = False
        self._downlink = downlink_codec_spec().build()
        self._rank_stats = [_RankStats() for _ in conns]
        self._downlink_raw = 0
        self._downlink_compressed = 0

    # -- overridden surface ------------------------------------------------
    @property
    def world_size(self) -> int:
        return len(self._conns)

    @property
    def history(self) -> TrainHistory:
        return self._history

    @property
    def profiler(self) -> Optional[StageProfiler]:
        return self._profiler

    @property
    def grad_exchange_stats(self) -> Dict[str, object]:
        """The exchange ledger: per-rank uplink bytes/ratio and
        error-feedback residual trajectory, plus the broadcast leg."""
        per_rank = []
        for st in self._rank_stats:
            per_rank.append(
                {
                    "raw_bytes": st.raw_bytes,
                    "compressed_bytes": st.compressed_bytes,
                    "ratio": (
                        st.raw_bytes / st.compressed_bytes
                        if st.compressed_bytes
                        else 0.0
                    ),
                    "residual_norms": list(st.residual_norms),
                }
            )
        return {
            "world_size": self.world_size,
            "steps": self._iteration,
            "per_rank": per_rank,
            "downlink": {
                "raw_bytes": self._downlink_raw,
                "compressed_bytes": self._downlink_compressed,
                "ratio": (
                    self._downlink_raw / self._downlink_compressed
                    if self._downlink_compressed
                    else 0.0
                ),
            },
        }

    # -- plumbing ----------------------------------------------------------
    def _send(self, rank: int, msg) -> None:
        try:
            self._conns[rank].send(msg)
        except OSError:
            # The pipe broke: the rank died.  Its parting ("error",
            # traceback) message, if it managed one, is still buffered on
            # our end — drain it so the failure surfaces with the real
            # traceback instead of a bare BrokenPipeError.
            self._recv(rank, "<never>")

    def _recv(self, rank: int, expect: str):
        try:
            msg = self._conns[rank].recv()
        except EOFError:
            code = self._processes[rank].exitcode
            raise RuntimeError(
                f"rank {rank} died mid-conversation (exit code {code})"
            ) from None
        if msg[0] == "error":
            raise RuntimeError(f"rank {rank} failed:\n{msg[1]}")
        if msg[0] != expect:
            raise RuntimeError(
                f"rank {rank}: expected {expect!r}, got {msg[0]!r}"
            )
        return msg

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- training ----------------------------------------------------------
    def train_step(self, images, labels) -> IterationRecord:
        self._ensure_open()
        with _profiler.stage("step"):
            return self._train_step(images, labels)

    def _train_step(self, images, labels) -> IterationRecord:
        n = int(images.shape[0])
        world = self.world_size
        if n < world:
            raise ValueError(
                f"batch of {n} cannot be sharded across {world} ranks; "
                f"use a batch size >= world_size"
            )
        image_shards = np.array_split(images, world, axis=0)
        label_shards = np.array_split(labels, world, axis=0)
        for rank in range(world):
            self._send(rank, ("step", image_shards[rank], label_shards[rank]))

        # uplink: receive in rank order (fixed schedule, no arrival races)
        uplinks = [self._recv(rank, "grads") for rank in range(world)]
        weights = [float(msg[2]) for msg in uplinks]
        for rank, msg in enumerate(uplinks):
            st = self._rank_stats[rank]
            st.raw_bytes += int(msg[3])
            st.compressed_bytes += sum(len(b) for b in msg[1])
            st.residual_norms.append(float(msg[4]))

        # reduce + broadcast: one bit-exact blob per parameter, applied
        # identically by every rank.  The coordinator's work here is
        # hidden *behind* the ranks' grad-exchange wait.
        reduced_blobs: List[bytes] = []
        with _profiler.stage("grad-reduce", hidden=True):
            for i in range(len(self._plan)):
                codec = self._plan[i].codec
                decoded = [
                    np.asarray(codec.decompress(loads(msg[1][i])), dtype=np.float32)
                    for msg in uplinks
                ]
                reduced = reduce_arrays(
                    decoded, weights, self.config.distributed.reduce_order
                )
                blob = dumps(self._downlink.compress(reduced))
                self._downlink_raw += reduced.nbytes
                self._downlink_compressed += len(blob)
                reduced_blobs.append(blob)
        for rank in range(world):
            self._send(rank, ("reduced", reduced_blobs))

        records = [self._recv(rank, "record") for rank in range(world)]
        total = sum(weights)
        loss = sum(w * msg[1] for w, msg in zip(weights, records)) / total
        accuracy = sum(w * msg[2] for w, msg in zip(weights, records)) / total
        record = IterationRecord(
            iteration=self._iteration,
            loss=float(loss),
            accuracy=float(accuracy),
            lr=self.config.optimizer.lr,
        )
        self._history.append(record)
        self._iteration += 1
        return record

    def train(self, batch_iter, max_iterations: Optional[int] = None) -> TrainHistory:
        for i, (images, labels) in enumerate(batch_iter):
            if max_iterations is not None and i >= max_iterations:
                break
            self.train_step(images, labels)
        return self._history

    def evaluate(self, images, labels, batch_size: int = 64) -> float:
        """Top-1 accuracy, computed by rank 0 (all ranks hold identical
        weights, so any one of them is authoritative)."""
        self._ensure_open()
        self._send(0, ("eval", images, labels, batch_size))
        return float(self._recv(0, "evaled")[1])

    def rank_weights(self, rank: int) -> List[np.ndarray]:
        """A copy of *rank*'s current parameter arrays (test/debug aid —
        the cross-rank bit-identity check reads every rank through
        this)."""
        self._ensure_open()
        self._send(rank, ("weights",))
        return self._recv(rank, "weights")[1]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop every rank exactly once: pull rank 0's weights back into
        the coordinator's network (so ``session.network`` holds the
        trained model afterwards), merge the ranks' stage profiles, shut
        the processes down, and release the pipes.  Idempotent; ranks
        that already died are reaped rather than waited on."""
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self._conns[0].send(("weights",))
                msg = self._conns[0].recv()
                if msg[0] == "weights":
                    for param, data in zip(self.network.parameters(), msg[1]):
                        param.data[...] = data
            except (EOFError, OSError, RuntimeError):
                pass
            for rank, conn in enumerate(self._conns):
                try:
                    conn.send(("close",))
                    msg = conn.recv()
                    if msg[0] == "closed" and self._profiler is not None:
                        self._profiler.merge(msg[1])
                except (EOFError, OSError):
                    pass
        finally:
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in self._processes:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            if self._profiler is not None:
                self._profiler.deactivate()

    def __repr__(self) -> str:
        return (
            f"DistributedSession(world_size={self.world_size}, "
            f"iter={self._iteration})"
        )


def build_distributed_session(network, config: SessionConfig, *, optimizer=None) -> DistributedSession:
    """Spawn the rank processes and wire the coordinator.

    Called by :func:`~repro.api.session.build_session` when
    ``distributed.world_size > 1`` — not a separate front door.
    """
    if optimizer is not None:
        raise ConfigError(
            "distributed: a pre-built optimizer cannot be shipped to rank "
            "processes (slot state is keyed by live parameter identity); "
            "describe it declaratively via config.optimizer instead"
        )
    # Ship the untouched network and the full config; ranks derive their
    # local single-worker view themselves (derive_rank_config).  Fork
    # keeps startup cheap on Linux; spawn works too since everything
    # crossing the boundary is bytes.
    net_blob = pickle.dumps(network)
    cfg_json = config.to_json()
    start = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(start)
    conns = []
    processes = []
    try:
        for rank in range(config.distributed.world_size):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=rank_main,
                args=(child_conn, rank, config.distributed.world_size, net_blob, cfg_json),
                name=f"repro-rank{rank}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            processes.append(proc)
    except BaseException:
        for proc in processes:
            proc.terminate()
        raise
    # Coordinator-side codecs are built only after every fork: worker
    # pools and locks must never be inherited mid-state by a child.
    plan = build_grad_plan(network, config)
    profiler = StageProfiler().activate() if config.profiler.enabled else None
    return DistributedSession(network, config, processes, conns, plan, profiler)
