"""Gradient-side codec resolution and the error-feedback residual.

The data-parallel exchange compresses every parameter gradient through
the codec registry.  Which codec a parameter gets is resolved exactly
like the activation side's :class:`~repro.core.policy_table.PolicyTable`:
first :class:`~repro.api.config.PolicyRule` whose pattern matches the
owning layer's name *and* that carries a ``grad_codec`` wins; unmatched
parameters fall back to ``distributed.grad_codec`` (default:
``sparse-lossless``, bit-exact).  Worker ranks and the coordinator both
derive the plan from the same pickled network and the same config, so
the two sides agree on the codec of every parameter by construction.

Error feedback (``distributed.error_feedback``): each rank keeps a
per-parameter residual of what compression dropped and folds it into
the next step's gradient before compressing —

    u_t        = g_t + r_{t-1}
    sent_t     = decompress(compress(u_t))
    r_t        = u_t - sent_t

so the *accumulated* applied gradient tracks the true accumulated
gradient and a bounded-lossy gradient codec converges like the
single-worker run.  ``decompress`` here is the rank's own round-trip of
its own compressed object — a pure function of the compressed bytes,
so the residual equals what the coordinator actually received minus
what the rank meant to send.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.api.config import CodecSpec, SessionConfig
from repro.core.policy_table import compile_matcher

__all__ = ["GradParam", "build_grad_plan", "downlink_codec_spec", "ErrorFeedback"]


#: the broadcast leg is always bit-exact: every rank applies the *same*
#: reduced-gradient bytes, which is what keeps rank weights bit-identical
DOWNLINK_SPEC = CodecSpec("sparse-lossless")


def downlink_codec_spec() -> CodecSpec:
    return CodecSpec(DOWNLINK_SPEC.name, dict(DOWNLINK_SPEC.options))


@dataclass
class GradParam:
    """One exchanged parameter: its live handle, name, and codec."""

    param: object
    name: str
    codec: object


def build_grad_plan(network, config: SessionConfig) -> List[GradParam]:
    """The exchange plan: one :class:`GradParam` per parameter, in
    deterministic layer-traversal order.

    One codec instance is built per *distinct* codec spec (stateful
    codecs — codebook caches, worker pools — amortize across the
    parameters that share a spec), via the registry only.
    """
    from repro.nn.network import iter_layers

    rules: List[Tuple[object, CodecSpec]] = [
        (compile_matcher(rule.match, rule.match_kind), rule.grad_codec)
        for rule in config.rules
        if rule.grad_codec is not None
    ]
    default_spec = config.distributed.resolved_grad_codec()
    built: Dict[str, object] = {}
    plan: List[GradParam] = []
    for layer in iter_layers(network):
        for param in layer.parameters():
            spec = default_spec
            for matcher, grad_spec in rules:
                if matcher(layer.name):
                    spec = grad_spec
                    break
            key = json.dumps(
                {"name": spec.name, "options": spec.options}, sort_keys=True
            )
            if key not in built:
                built[key] = spec.build()
            plan.append(
                GradParam(
                    param=param,
                    name=getattr(param, "name", None) or layer.name,
                    codec=built[key],
                )
            )
    if not plan:
        raise ValueError("network has no parameters to exchange")
    return plan


class ErrorFeedback:
    """Per-parameter residual accumulator for one rank.

    ``fold(i, grad)`` returns the gradient to compress (grad plus the
    standing residual); ``settle(i, u, decoded)`` records what the codec
    dropped this step.  ``last_norm()`` is the RMS residual across every
    exchanged element of the latest step — the scalar each rank reports
    so tests and benchmarks can watch the residual shrink.
    """

    def __init__(self, plan: List[GradParam], enabled: bool = True):
        self.enabled = bool(enabled)
        self._residuals = [
            np.zeros(gp.param.data.shape, dtype=np.float32) for gp in plan
        ]
        self._sq_sum = 0.0
        self._count = 0

    def fold(self, i: int, grad: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return grad
        return grad + self._residuals[i]

    def settle(self, i: int, u: np.ndarray, decoded: np.ndarray) -> None:
        if not self.enabled:
            return
        r = u - decoded
        self._residuals[i] = r
        flat = r.ravel()
        self._sq_sum += float(np.dot(flat, flat))
        self._count += flat.size

    def begin_step(self) -> None:
        self._sq_sum = 0.0
        self._count = 0

    def last_norm(self) -> float:
        """RMS residual of the latest step (0.0 when disabled/empty)."""
        if not self._count:
            return 0.0
        return float(np.sqrt(self._sq_sum / self._count))
