"""The rank process: a full single-worker session plus the exchange.

Each rank owns a complete training stack — its own ``ByteArena`` /
``ParamStore`` / engine / adaptive controller, built by the ordinary
:func:`~repro.api.session.build_session` from a *derived* local config
(the session config with the ``distributed`` section stripped and the
per-rank arena budget applied).  The only distributed-specific piece is
a ``grad_transform`` on the rank's trainer: after backward (and after
the compressed-context flush), it compresses the local gradients,
ships them to the coordinator, blocks for the reduced result, and
installs it in place — so ``optimizer.step()`` applies the *same*
reduced gradient on every rank and the rank weights stay bit-identical.

Message protocol (tag-first tuples over a ``multiprocessing.Pipe``):

======================  ====================================================
coordinator -> rank     ``("step", images, labels)`` /
                        ``("eval", images, labels, batch_size)`` /
                        ``("weights",)`` / ``("close",)``
rank -> coordinator     ``("grads", blobs, batch_size, raw_bytes,
                        residual_norm)`` (mid-step, from the transform),
                        then ``("record", loss, accuracy)`` /
                        ``("evaled", accuracy)`` / ``("weights", arrays)``
                        / ``("closed", profiler_snapshot)`` /
                        ``("error", traceback_text)``
======================  ====================================================

Pipes are FIFO, every step follows the same send/recv script on both
sides, and the coordinator always receives in rank order — there is no
arrival-order nondeterminism anywhere in the exchange.
"""

from __future__ import annotations

import dataclasses
import pickle
import traceback
from typing import List

import numpy as np

from repro.api.config import DistributedSpec, SessionConfig
from repro.compression.registry import dumps, loads
from repro.distributed.grad_compress import (
    ErrorFeedback,
    GradParam,
    build_grad_plan,
    downlink_codec_spec,
)
from repro.utils import profiler as _profiler

__all__ = ["derive_rank_config", "RankExchange", "rank_main"]


def derive_rank_config(config: SessionConfig) -> SessionConfig:
    """The local single-worker config a rank builds its session from.

    The ``distributed`` section is reset (a rank *is* the single
    worker), per-rank arena budgets replace the session activation
    budget, and gradient-side rule fields are dropped (they configure
    the exchange, which the local session knows nothing about).
    """
    local = SessionConfig.from_json(config.to_json())
    if config.distributed.rank_arena_budget is not None:
        local.storage.budget_bytes = config.distributed.rank_arena_budget
    local.distributed = DistributedSpec()
    local.rules = [
        dataclasses.replace(rule, grad_codec=None) for rule in local.rules
    ]
    return local.validate()


class RankExchange:
    """The per-rank half of the gradient exchange (a grad transform)."""

    def __init__(
        self,
        conn,
        rank: int,
        plan: List[GradParam],
        *,
        error_feedback: bool,
        engine=None,
    ):
        self.conn = conn
        self.rank = rank
        self.plan = plan
        self.feedback = ErrorFeedback(plan, enabled=error_feedback)
        self.downlink = downlink_codec_spec().build()
        #: the rank's compression engine, asserted idle before every
        #: exchange (the post-backward flush runs first by hook order;
        #: shipping gradients while packs are still settling tracker
        #: accounts would be an ordering bug)
        self.engine = engine
        #: shard size of the in-flight step (set by the worker loop
        #: before ``train_step``; it is the reduction weight)
        self.batch_size = 0

    def transform(self, trainer) -> None:
        if self.engine is not None and not self.engine.idle:
            raise RuntimeError(
                f"rank {self.rank}: compression engine still has in-flight "
                f"work at gradient-exchange time; post-backward flush must "
                f"run before the exchange"
            )
        feedback = self.feedback
        feedback.begin_step()
        blobs: List[bytes] = []
        raw_bytes = 0
        with _profiler.stage("grad-pack"):
            for i, gp in enumerate(self.plan):
                grad = np.asarray(gp.param.grad, dtype=np.float32)
                u = feedback.fold(i, grad)
                ct = gp.codec.compress(u)
                blobs.append(dumps(ct))
                raw_bytes += u.nbytes
                if feedback.enabled:
                    decoded = np.asarray(
                        gp.codec.decompress(ct), dtype=np.float32
                    ).reshape(u.shape)
                    feedback.settle(i, u, decoded)
        with _profiler.stage("grad-exchange"):
            self.conn.send(
                ("grads", blobs, self.batch_size, raw_bytes, feedback.last_norm())
            )
            msg = self.conn.recv()
        if msg[0] != "reduced":
            raise RuntimeError(
                f"rank {self.rank}: expected 'reduced' mid-step, got {msg[0]!r}"
            )
        with _profiler.stage("grad-unpack"):
            for gp, blob in zip(self.plan, msg[1]):
                decoded = self.downlink.decompress(loads(blob))
                gp.param.grad[...] = np.asarray(decoded, dtype=np.float32).reshape(
                    gp.param.grad.shape
                )


def rank_main(conn, rank: int, world_size: int, net_blob: bytes, cfg_json: str) -> None:
    """Entry point of one rank process.

    Builds the local session from the shipped config + network bytes,
    then serves the coordinator's message loop until ``close``.  Any
    exception is reported upstream as ``("error", traceback)`` instead
    of dying silently.
    """
    # A forked child inherits the parent's process-wide profiler (and
    # would double-report into an object the parent also mutates);
    # start clean — the local session activates its own when enabled.
    _profiler.set_active(None)
    session = None
    try:
        from repro.api.session import build_session

        config = SessionConfig.from_json(cfg_json)
        network = pickle.loads(net_blob)
        plan = build_grad_plan(network, config)
        session = build_session(network, derive_rank_config(config))
        exchange = RankExchange(
            conn,
            rank,
            plan,
            error_feedback=config.distributed.error_feedback,
            engine=session.engine,
        )
        session.trainer.grad_transforms.append(exchange.transform)
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "step":
                _, images, labels = msg
                exchange.batch_size = int(images.shape[0])
                rec = session.train_step(images, labels)
                conn.send(("record", float(rec.loss), float(rec.accuracy)))
            elif tag == "eval":
                _, images, labels, batch_size = msg
                conn.send(("evaled", float(session.evaluate(images, labels, batch_size))))
            elif tag == "weights":
                conn.send(
                    ("weights", [np.array(p.data, copy=True) for p in network.parameters()])
                )
            elif tag == "close":
                snapshot = (
                    session.profiler.snapshot() if session.profiler is not None else {}
                )
                session.close()
                session = None
                conn.send(("closed", snapshot))
                return
            else:
                raise RuntimeError(f"rank {rank}: unknown message tag {tag!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        if session is not None:
            try:
                session.close()
            except Exception:
                pass
        conn.close()
