"""Process-based data-parallel training with compressed gradient exchange.

The paper's bounded-lossy thesis applied to data parallelism's dominant
cost: N worker ranks (full per-rank sessions — own arenas, param
stores, engines) exchange gradients through the codec registry, with a
per-layer error-feedback residual so convergence matches the
single-worker run within the bound.  Configured entirely by the
``distributed`` section of :class:`~repro.api.config.SessionConfig`
(:class:`~repro.api.config.DistributedSpec`) and entered through the
ordinary :func:`~repro.api.session.build_session` front door::

    cfg = SessionConfig.from_json("examples/configs/ddp_vgg.json")
    with build_session(network, cfg) as session:   # spawns the ranks
        session.train(batches(dataset, 32, 100, seed=1))
        print(session.grad_exchange_stats)

Reduction follows a fixed rank-tree (or linear fold) with float64
accumulation, and the reduced gradient is broadcast as one bit-exact
blob — so a run is bit-reproducible from the committed config and rank
weights never drift apart.
"""

from repro.distributed.grad_compress import (
    ErrorFeedback,
    GradParam,
    build_grad_plan,
    downlink_codec_spec,
)
from repro.distributed.reduce import REDUCE_ORDERS, reduce_arrays
from repro.distributed.session import DistributedSession, build_distributed_session
from repro.distributed.worker import RankExchange, derive_rank_config, rank_main

__all__ = [
    "REDUCE_ORDERS",
    "reduce_arrays",
    "GradParam",
    "ErrorFeedback",
    "build_grad_plan",
    "downlink_codec_spec",
    "derive_rank_config",
    "RankExchange",
    "rank_main",
    "DistributedSession",
    "build_distributed_session",
]
