"""Baseline memory policies (Section 2.1's related-work landscape).

Each policy is a saved-tensor context comparable head-to-head with the
paper's adaptive SZ compression:

* :class:`RawPolicy` — baseline training, raw fp32 activations.
* :class:`CodecPolicy` — store activations through any compress /
  decompress codec (lossless DEFLATE, sparsity-aware lossless, or the
  JPEG-ACT-like transform codec).
* :class:`FixedBoundSZPolicy` — SZ with one static error bound for all
  layers (the ablation against the adaptive controller).

Recomputation and migration do not change *what* is stored but *when*
time is spent; they are modeled in :mod:`repro.simulator` (the paper
likewise treats them as orthogonal, Section 2.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.szlike import SZCompressor
from repro.core.memory_tracker import MemoryTracker
from repro.nn.layers.base import Layer, SavedTensorContext

__all__ = ["RawPolicy", "CodecPolicy", "FixedBoundSZPolicy"]


class RawPolicy(SavedTensorContext):
    """Baseline: plain references, but with byte accounting."""

    def __init__(self, tracker: Optional[MemoryTracker] = None):
        self.tracker = tracker or MemoryTracker()

    def pack(self, layer: Layer, key: str, arr):
        if isinstance(arr, np.ndarray) and arr.ndim == 4:
            self.tracker.record_pack(layer.name, arr.nbytes, arr.nbytes)
        return arr

    def unpack(self, layer: Layer, key: str, handle):
        if isinstance(handle, np.ndarray) and handle.ndim == 4:
            self.tracker.record_release(handle.nbytes, handle.nbytes)
        return handle


class _Handle:
    __slots__ = ("compressed", "raw_nbytes", "released")

    def __init__(self, compressed, raw_nbytes):
        self.compressed = compressed
        self.raw_nbytes = raw_nbytes
        self.released = False


class CodecPolicy(SavedTensorContext):
    """Store 4-D activations through an arbitrary codec object.

    The codec must expose ``compress(arr) -> ct``, ``decompress(ct)``,
    and the compressed object must expose ``nbytes``.
    """

    def __init__(self, codec, tracker: Optional[MemoryTracker] = None):
        if not (hasattr(codec, "compress") and hasattr(codec, "decompress")):
            raise TypeError("codec must provide compress()/decompress()")
        self.codec = codec
        self.tracker = tracker or MemoryTracker()

    def pack(self, layer: Layer, key: str, arr):
        if not isinstance(arr, np.ndarray) or arr.ndim != 4:
            return arr
        ct = self.codec.compress(arr)
        self.tracker.record_pack(layer.name, arr.nbytes, ct.nbytes)
        return _Handle(ct, arr.nbytes)

    def _release(self, handle: "_Handle") -> None:
        # Release exactly once per handle: a handle unpacked via
        # ``Layer._load`` stays in ``Layer._saved`` and is discarded
        # later — without the flag those bytes would be credited twice.
        if handle.released:
            return
        handle.released = True
        self.tracker.record_release(handle.raw_nbytes, handle.compressed.nbytes)

    def unpack(self, layer: Layer, key: str, handle):
        if not isinstance(handle, _Handle):
            return handle
        self._release(handle)
        return self.codec.decompress(handle.compressed)

    def discard(self, layer: Layer, key: str, handle):
        if isinstance(handle, _Handle):
            self._release(handle)


class FixedBoundSZPolicy(CodecPolicy):
    """SZ compression with a single static absolute error bound."""

    def __init__(
        self,
        error_bound: float,
        tracker: Optional[MemoryTracker] = None,
        entropy: str = "huffman",
        zero_filter: bool = True,
    ):
        codec = SZCompressor(
            error_bound=error_bound, entropy=entropy, zero_filter=zero_filter
        )
        super().__init__(codec, tracker)
