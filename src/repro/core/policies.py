"""Baseline memory policies (Section 2.1's related-work landscape).

Each policy is a saved-tensor context comparable head-to-head with the
paper's adaptive SZ compression:

* :class:`RawPolicy` — baseline training, raw fp32 activations.
* :class:`CodecPolicy` — store activations through any compress /
  decompress codec (lossless DEFLATE, sparsity-aware lossless, or the
  JPEG-ACT-like transform codec).
* :class:`FixedBoundSZPolicy` — SZ with one static error bound for all
  layers (the ablation against the adaptive controller).

:class:`CodecPolicy` shares the handle-lifecycle, accounting, storage,
and engine machinery with the adaptive context through
:class:`~repro.core.activation_store.BaseCompressionContext`, so the
baselines get byte-arena storage and sync/async execution for free and
their tracker numbers follow exactly the same conventions.

Recomputation and migration do not change *what* is stored but *when*
time is spent; they are modeled in :mod:`repro.simulator` (the paper
likewise treats them as orthogonal, Section 2.1).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.compression.registry import dumps as _codec_dumps
from repro.compression.registry import get_codec
from repro.core.activation_store import BaseCompressionContext
from repro.core.arena import ByteArena
from repro.core.engine import CompressionEngine
from repro.core.memory_tracker import MemoryTracker
from repro.core.policy_table import PolicyTable
from repro.nn.layers.base import Layer, SavedTensorContext

__all__ = ["RawPolicy", "CodecPolicy", "FixedBoundSZPolicy"]


class RawPolicy(SavedTensorContext):
    """Baseline: plain references, but with byte accounting."""

    def __init__(self, tracker: Optional[MemoryTracker] = None):
        self.tracker = tracker or MemoryTracker()

    def pack(self, layer: Layer, key: str, arr):
        if isinstance(arr, np.ndarray) and arr.ndim == 4:
            self.tracker.record_pack(layer.name, arr.nbytes, arr.nbytes)
        return arr

    def unpack(self, layer: Layer, key: str, handle):
        if isinstance(handle, np.ndarray) and handle.ndim == 4:
            self.tracker.record_release(handle.nbytes, handle.nbytes)
        return handle


class CodecPolicy(BaseCompressionContext):
    """Store 4-D activations through an arbitrary codec object.

    The codec must expose ``compress(arr) -> ct`` and ``decompress(ct)``,
    and the compressed object must expose ``nbytes``.  Arena storage
    additionally requires the compressed object to be serializable by
    :func:`repro.compression.registry.dumps` (true for every registry
    codec).  A :class:`~repro.core.policy_table.PolicyTable` makes the
    codec and storage class per-layer: matched layers use their rule's
    codec (and may pin in-process storage under an arena session), with
    *codec* as the fallback for the rest.
    """

    def __init__(
        self,
        codec,
        tracker: Optional[MemoryTracker] = None,
        storage: Optional[ByteArena] = None,
        engine: Union[CompressionEngine, str, None] = None,
        policy_table: Optional[PolicyTable] = None,
    ):
        if not (hasattr(codec, "compress") and hasattr(codec, "decompress")):
            raise TypeError("codec must provide compress()/decompress()")
        super().__init__(
            tracker=tracker, storage=storage, engine=engine, policy_table=policy_table
        )
        self.codec = codec

    def _make_pack_job(self, layer: Layer, arr: np.ndarray) -> Callable[[], tuple]:
        pol, codec = self._select_codec(layer.name, self.codec)
        serialize = self._should_serialize(pol)
        eb = pol.error_bound if pol is not None else None
        # Per-layer keys flow to codebook-caching codecs here too, so the
        # fixed-bound SZ baseline amortizes its entropy stage the same way
        # the adaptive context does.
        key = layer.name if getattr(codec, "supports_cache_key", False) else None

        def job():
            kwargs = {}
            if key is not None:
                kwargs["cache_key"] = key
            if eb is not None:
                kwargs["error_bound"] = eb
            ct = codec.compress(arr, **kwargs)
            return ct, _codec_dumps(ct) if serialize else None, None

        return job

    def _decompress(self, ct, layer_name: str = "") -> np.ndarray:
        codec = self._layer_codec.get(layer_name, self.codec)
        return codec.decompress(ct)


class FixedBoundSZPolicy(CodecPolicy):
    """SZ compression with a single static absolute error bound."""

    def __init__(
        self,
        error_bound: float,
        tracker: Optional[MemoryTracker] = None,
        entropy: str = "huffman",
        zero_filter: bool = True,
        storage: Optional[ByteArena] = None,
        engine: Union[CompressionEngine, str, None] = None,
        policy_table: Optional[PolicyTable] = None,
    ):
        codec = get_codec(
            "szlike", error_bound=error_bound, entropy=entropy, zero_filter=zero_filter
        )
        super().__init__(
            codec, tracker, storage=storage, engine=engine, policy_table=policy_table
        )
