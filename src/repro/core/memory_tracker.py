"""Per-layer memory accounting for saved activations and persistent state.

Tracks, per training iteration, the raw bytes each layer would have kept
resident (baseline training) versus the bytes actually stored under the
active memory policy — the quantities behind Table 1 and Figure 10's
compression-ratio curve.

Alongside the per-iteration activation pool there is a **persistent
pool** for state that outlives iterations: arena-backed parameters and
optimizer slots (:mod:`repro.core.param_store`).  Persistent entries are
charged on adopt/write-back, credited exactly once on release, survive
:meth:`MemoryTracker.end_iteration`, and count toward the peak byte
watermarks next to the live activation bytes.

When the session runs under a :class:`~repro.core.policy_table.PolicyTable`
(per-layer codec/error-bound rules), every pack also carries its rule's
group label and the tracker keeps a parallel **per-group** ledger —
``per_group`` / :meth:`group_summary` — so a mixed-codec session reports
raw-vs-stored bytes per layer *and* per policy rule.

Every mutation and read path is serialized behind one internal lock:
the async engine's finalizers record packs off the training thread, and
a multi-tenant server (:mod:`repro.server`) reads :meth:`group_summary`
from its metrics endpoint while steps are in flight — snapshots must
never tear or race a concurrent ``record_pack``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["LayerMemoryRecord", "MemoryTracker"]


@dataclass
class LayerMemoryRecord:
    layer_name: str
    raw_bytes: int = 0
    stored_bytes: int = 0
    packs: int = 0

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else 0.0

    def copy(self) -> "LayerMemoryRecord":
        return LayerMemoryRecord(
            self.layer_name, self.raw_bytes, self.stored_bytes, self.packs
        )


class MemoryTracker:
    """Accumulates raw-vs-stored byte counts per layer and per iteration.

    Thread-safe: recording (training/engine threads) and summary reads
    (metrics/stats threads) may interleave freely; summaries return
    consistent copies, never live records mid-mutation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.per_layer: Dict[str, LayerMemoryRecord] = {}
        #: policy-rule group label -> cumulative record (only populated
        #: when packs are recorded with a group, i.e. under a PolicyTable)
        self.per_group: Dict[str, LayerMemoryRecord] = {}
        self._iter_raw = 0
        self._iter_stored = 0
        self.iteration_ratios: List[float] = []
        self.peak_raw_bytes = 0
        self.peak_stored_bytes = 0
        self._live_raw = 0
        self._live_stored = 0
        #: persistent entry name -> (raw_bytes, stored_bytes)
        self._persistent: Dict[str, Tuple[int, int]] = {}
        self.persistent_raw_bytes = 0
        self.persistent_stored_bytes = 0

    def _track_peaks(self) -> None:
        """Callers hold the lock."""
        self.peak_raw_bytes = max(
            self.peak_raw_bytes, self._live_raw + self.persistent_raw_bytes
        )
        self.peak_stored_bytes = max(
            self.peak_stored_bytes, self._live_stored + self.persistent_stored_bytes
        )

    def record_pack(
        self, layer_name: str, raw_bytes: int, stored_bytes: int, group: str = ""
    ) -> None:
        with self._lock:
            rec = self.per_layer.setdefault(layer_name, LayerMemoryRecord(layer_name))
            rec.raw_bytes += raw_bytes
            rec.stored_bytes += stored_bytes
            rec.packs += 1
            if group:
                grec = self.per_group.setdefault(group, LayerMemoryRecord(group))
                grec.raw_bytes += raw_bytes
                grec.stored_bytes += stored_bytes
                grec.packs += 1
            self._iter_raw += raw_bytes
            self._iter_stored += stored_bytes
            self._live_raw += raw_bytes
            self._live_stored += stored_bytes
            self._track_peaks()

    def record_release(self, raw_bytes: int, stored_bytes: int) -> None:
        with self._lock:
            self._live_raw -= raw_bytes
            self._live_stored -= stored_bytes

    # -- persistent pool (arena-backed parameters / optimizer slots) -------
    def record_persistent(self, name: str, raw_bytes: int, stored_bytes: int) -> None:
        """Charge (or re-charge, on write-back) one persistent entry."""
        with self._lock:
            old = self._persistent.get(name)
            if old is not None:
                self.persistent_raw_bytes -= old[0]
                self.persistent_stored_bytes -= old[1]
            self._persistent[name] = (raw_bytes, stored_bytes)
            self.persistent_raw_bytes += raw_bytes
            self.persistent_stored_bytes += stored_bytes
            self._track_peaks()

    def release_persistent(self, name: str) -> None:
        """Credit one persistent entry exactly once; releasing an unknown
        (or already-released) entry is an accounting bug and raises."""
        with self._lock:
            raw, stored = self._persistent.pop(name)
            self.persistent_raw_bytes -= raw
            self.persistent_stored_bytes -= stored

    def end_iteration(self) -> float:
        """Close the iteration; returns its overall compression ratio."""
        with self._lock:
            ratio = self._iter_raw / self._iter_stored if self._iter_stored else 0.0
            if self._iter_stored:
                self.iteration_ratios.append(ratio)
            self._iter_raw = 0
            self._iter_stored = 0
            self._live_raw = 0
            self._live_stored = 0
            return ratio

    @property
    def overall_ratio(self) -> float:
        with self._lock:
            raw = sum(r.raw_bytes for r in self.per_layer.values())
            stored = sum(r.stored_bytes for r in self.per_layer.values())
            return raw / stored if stored else 0.0

    def summary(self) -> List[LayerMemoryRecord]:
        with self._lock:
            return sorted(
                (r.copy() for r in self.per_layer.values()),
                key=lambda r: r.layer_name,
            )

    def group_summary(self) -> List[LayerMemoryRecord]:
        """Per-policy-rule cumulative records (empty without a table).

        Returns consistent copies: a concurrent ``record_pack`` on the
        training thread cannot mutate a row after this snapshot returns
        (the contract the server's live metrics endpoint relies on)."""
        with self._lock:
            return sorted(
                (r.copy() for r in self.per_group.values()),
                key=lambda r: r.layer_name,
            )
