"""Per-layer memory accounting for saved activations.

Tracks, per training iteration, the raw bytes each layer would have kept
resident (baseline training) versus the bytes actually stored under the
active memory policy — the quantities behind Table 1 and Figure 10's
compression-ratio curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["LayerMemoryRecord", "MemoryTracker"]


@dataclass
class LayerMemoryRecord:
    layer_name: str
    raw_bytes: int = 0
    stored_bytes: int = 0
    packs: int = 0

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else 0.0


class MemoryTracker:
    """Accumulates raw-vs-stored byte counts per layer and per iteration."""

    def __init__(self):
        self.per_layer: Dict[str, LayerMemoryRecord] = {}
        self._iter_raw = 0
        self._iter_stored = 0
        self.iteration_ratios: List[float] = []
        self.peak_raw_bytes = 0
        self.peak_stored_bytes = 0
        self._live_raw = 0
        self._live_stored = 0

    def record_pack(self, layer_name: str, raw_bytes: int, stored_bytes: int) -> None:
        rec = self.per_layer.setdefault(layer_name, LayerMemoryRecord(layer_name))
        rec.raw_bytes += raw_bytes
        rec.stored_bytes += stored_bytes
        rec.packs += 1
        self._iter_raw += raw_bytes
        self._iter_stored += stored_bytes
        self._live_raw += raw_bytes
        self._live_stored += stored_bytes
        self.peak_raw_bytes = max(self.peak_raw_bytes, self._live_raw)
        self.peak_stored_bytes = max(self.peak_stored_bytes, self._live_stored)

    def record_release(self, raw_bytes: int, stored_bytes: int) -> None:
        self._live_raw -= raw_bytes
        self._live_stored -= stored_bytes

    def end_iteration(self) -> float:
        """Close the iteration; returns its overall compression ratio."""
        ratio = self._iter_raw / self._iter_stored if self._iter_stored else 0.0
        if self._iter_stored:
            self.iteration_ratios.append(ratio)
        self._iter_raw = 0
        self._iter_stored = 0
        self._live_raw = 0
        self._live_stored = 0
        return ratio

    @property
    def overall_ratio(self) -> float:
        raw = sum(r.raw_bytes for r in self.per_layer.values())
        stored = sum(r.stored_bytes for r in self.per_layer.values())
        return raw / stored if stored else 0.0

    def summary(self) -> List[LayerMemoryRecord]:
        return sorted(self.per_layer.values(), key=lambda r: r.layer_name)
