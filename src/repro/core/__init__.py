"""The paper's contribution: adaptive error-bounded activation compression."""

from repro.core.error_model import (
    PAPER_COEFFICIENT_A,
    THEORY_COEFFICIENT_A,
    error_bound_for_sigma,
    fit_coefficient,
    predict_sigma,
)
from repro.core.gradient_assessment import GradientAssessor
from repro.core.memory_tracker import LayerMemoryRecord, MemoryTracker
from repro.core.arena import ByteArena
from repro.core.engine import AsyncEngine, CompressionEngine, SyncEngine, resolve_engine
from repro.core.activation_store import (
    BaseCompressionContext,
    CompressingContext,
    PackedActivation,
)
from repro.core.param_store import ParamStore, StoredEntry, StoreSlots
from repro.core.policy_table import PolicyTable, ResolvedPolicy, compile_matcher
from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.framework import CompressedTraining
from repro.core.policies import CodecPolicy, FixedBoundSZPolicy, RawPolicy

__all__ = [
    "PAPER_COEFFICIENT_A",
    "THEORY_COEFFICIENT_A",
    "error_bound_for_sigma",
    "fit_coefficient",
    "predict_sigma",
    "GradientAssessor",
    "LayerMemoryRecord",
    "MemoryTracker",
    "ByteArena",
    "AsyncEngine",
    "CompressionEngine",
    "SyncEngine",
    "resolve_engine",
    "BaseCompressionContext",
    "CompressingContext",
    "PackedActivation",
    "ParamStore",
    "StoredEntry",
    "StoreSlots",
    "PolicyTable",
    "ResolvedPolicy",
    "compile_matcher",
    "AdaptiveConfig",
    "AdaptiveController",
    "CompressedTraining",
    "CodecPolicy",
    "FixedBoundSZPolicy",
    "RawPolicy",
]
