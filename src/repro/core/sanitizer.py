"""Runtime sanitizer: instrumented locks and poisoned buffers.

Set ``REPRO_SANITIZE=1`` (or enable :class:`~repro.api.config.SanitizerSpec`
in a :class:`~repro.api.config.SessionConfig`) and every arena, scratch
pool, codebook cache, param store, and async engine constructed
afterwards swaps in instrumented internals:

* **Lock-order tracking** — every class-internal lock becomes a
  :class:`TrackedLock` feeding one process-wide
  :class:`LockOrderMonitor`.  The monitor records the acquisition-order
  graph across *all* sanitized locks and raises :class:`LockOrderError`
  **before** an acquire that would close a cycle — a stress test sees a
  crisp exception with both hold sites instead of a silent deadlock.
* **Release poisoning** — bytes leaving the arena (``discard``/
  ``close``) are filled with ``0xFF`` (NaN when reinterpreted as
  float32/float64); scratch buffers returning to the pool are filled
  with NaN (float dtypes) or the dtype max (ints).  Code that keeps a
  reference past release produces loud garbage instead of silently
  reading stale activations.
* **Double-release trapping** — arena ``put``/``get``/``discard``/
  ``pop`` are wrapped per instance; a second release of a live-then-dead
  key raises :class:`DoubleReleaseError`, a ``get``/``pop`` after
  release raises :class:`UseAfterReleaseError`, both carrying the
  first release's formatted traceback.  Keys the arena never issued are
  still a no-op, preserving ``discard``'s documented contract.

The sanitizer is process-wide and sticky: :func:`enable` affects objects
constructed *after* the call (``build_session`` enables it before
constructing anything).  It never changes behavior when disabled — the
production classes only expose tiny hook points
(``ByteArena._copy_in``/``_on_release``) that default to no-ops.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Set

import numpy as np

__all__ = [
    "SanitizerError",
    "LockOrderError",
    "DoubleReleaseError",
    "UseAfterReleaseError",
    "TrackedLock",
    "LockOrderMonitor",
    "enable",
    "disable",
    "enabled",
    "maybe_instrument",
    "report",
]


class SanitizerError(RuntimeError):
    """Base class for sanitizer-detected bugs."""


class LockOrderError(SanitizerError):
    """Acquiring this lock would close a cycle in the lock-order graph."""


class DoubleReleaseError(SanitizerError):
    """An arena key was released twice."""


class UseAfterReleaseError(SanitizerError):
    """An arena key was read after its release."""


# ---------------------------------------------------------------------------
# lock-order monitoring
# ---------------------------------------------------------------------------


class LockOrderMonitor:
    """Process-wide acquisition-order graph over all tracked locks.

    An edge ``a -> b`` means some thread acquired *b* while holding *a*.
    Before any acquire of *b* while holding ``{a...}``, the monitor adds
    the new edges and searches for a path ``b ~> a``; finding one means
    another code path takes the same locks in the opposite order —
    raised as :class:`LockOrderError` *before* blocking on the inner
    lock, so stress tests fail loudly instead of hanging.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        self._edges: Dict[int, Set[int]] = {}
        self._names: Dict[int, str] = {}
        self._tls = threading.local()
        self.acquisitions = 0

    def _held(self) -> List[int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _path_exists(self, src: int, targets: Set[int]) -> bool:
        stack, seen = [src], {src}
        while stack:
            node = stack.pop()
            if node in targets:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def before_acquire(self, lock: "TrackedLock") -> None:
        held = self._held()
        lock_id = id(lock)
        if lock_id in held:
            if lock.reentrant:
                return  # re-entry adds no ordering information
            raise LockOrderError(
                f"non-reentrant lock {lock.name!r} re-acquired by the "
                f"thread already holding it (self-deadlock)"
            )
        outer = set(held)
        if not outer:
            return
        with self._graph_lock:
            self._names[lock_id] = lock.name
            for h in outer:
                self._edges.setdefault(h, set()).add(lock_id)
            if self._path_exists(lock_id, outer):
                order = " -> ".join(self._names.get(h, "?") for h in held)
                raise LockOrderError(
                    f"acquiring {lock.name!r} while holding [{order}] closes "
                    f"a cycle in the lock-order graph (another path acquires "
                    f"these locks in the opposite order); potential deadlock"
                )

    def after_acquire(self, lock: "TrackedLock") -> None:
        self._held().append(id(lock))
        self.acquisitions += 1
        with self._graph_lock:
            self._names.setdefault(id(lock), lock.name)

    def on_release(self, lock: "TrackedLock") -> None:
        held = self._held()
        lock_id = id(lock)
        for i in range(len(held) - 1, -1, -1):
            if held[i] == lock_id:
                del held[i]
                return

    def edge_count(self) -> int:
        with self._graph_lock:
            return sum(len(v) for v in self._edges.values())


class TrackedLock:
    """Drop-in wrapper over ``threading.Lock``/``RLock`` that reports
    every acquire/release to a :class:`LockOrderMonitor`."""

    def __init__(self, inner, name: str, reentrant: bool, monitor: LockOrderMonitor):
        self._inner = inner
        self.name = name
        self.reentrant = reentrant
        self._monitor = monitor

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.before_acquire(self)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.after_acquire(self)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.on_release(self)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


# ---------------------------------------------------------------------------
# global state
# ---------------------------------------------------------------------------


class _State:
    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self.poison = True
        self.lock_order = True
        self.trap_double_release = True
        self.monitor = LockOrderMonitor()
        self.poisoned_buffers = 0
        self.trapped_keys = 0
        self.instrumented = 0


_STATE = _State()
_counter_lock = threading.Lock()


def enabled() -> bool:
    """Is the sanitizer currently active for new constructions?"""
    return _STATE.enabled


def enable(
    poison: bool = True, lock_order: bool = True, trap_double_release: bool = True
) -> None:
    """Turn the sanitizer on for every object constructed afterwards.

    Process-wide and sticky by design: instrumentation happens at
    construction time and is never removed from live objects.
    ``build_session`` calls this before constructing the stack when
    ``config.sanitizer.enabled`` is set.
    """
    _STATE.enabled = True
    _STATE.poison = poison
    _STATE.lock_order = lock_order
    _STATE.trap_double_release = trap_double_release


def disable() -> None:
    """Stop instrumenting new objects (existing ones stay instrumented)."""
    _STATE.enabled = False


def report() -> dict:
    """Counters for tests and debugging."""
    return {
        "enabled": _STATE.enabled,
        "instrumented_objects": _STATE.instrumented,
        "lock_acquisitions": _STATE.monitor.acquisitions,
        "lock_order_edges": _STATE.monitor.edge_count(),
        "poisoned_buffers": _STATE.poisoned_buffers,
        "trapped_keys": _STATE.trapped_keys,
    }


# ---------------------------------------------------------------------------
# instrumentation
# ---------------------------------------------------------------------------


def _track_lock(obj, attr: str, name: str, reentrant: bool) -> None:
    inner = getattr(obj, attr, None)
    if inner is None or isinstance(inner, TrackedLock):
        return
    setattr(obj, attr, TrackedLock(inner, name, reentrant, _STATE.monitor))


def _format_site() -> str:
    return "".join(traceback.format_stack(limit=8)[:-2])


def _poison_bytes(buf) -> None:
    if isinstance(buf, bytearray):
        buf[:] = b"\xff" * len(buf)
        with _counter_lock:
            _STATE.poisoned_buffers += 1


def _poison_array(arr: np.ndarray) -> None:
    flat = arr.reshape(-1)
    if flat.dtype.kind == "f":
        flat.fill(np.nan)
    elif flat.dtype.kind in ("i", "u"):
        flat.fill(np.iinfo(flat.dtype).max)
    elif flat.dtype.kind == "c":
        flat.fill(complex(np.nan, np.nan))
    else:
        return
    with _counter_lock:
        _STATE.poisoned_buffers += 1


def _instrument_arena(arena) -> None:
    if _STATE.lock_order:
        _track_lock(arena, "_lock", f"arena-{id(arena):#x}", reentrant=True)
    if _STATE.poison:
        # put() ingests into a mutable buffer so release can poison it
        arena._copy_in = bytearray
        arena._on_release = _poison_bytes
    if not _STATE.trap_double_release:
        return

    trap_lock = threading.Lock()
    live: Dict[int, str] = {}  # key -> acquisition site
    dead: Dict[int, str] = {}  # key -> first release site

    orig_put = arena.put
    orig_get = arena.get
    orig_discard = arena.discard

    def put(data, group=None):
        key = orig_put(data, group=group)
        with trap_lock:
            live[key] = _format_site()
        return key

    def get(key):
        with trap_lock:
            site = dead.get(key)
        if site is not None:
            raise UseAfterReleaseError(
                f"arena key {key} read after release; first released at:\n{site}"
            )
        return orig_get(key)

    def discard(key):
        with trap_lock:
            site = dead.get(key)
            if site is None and key in live:
                dead[key] = _format_site()
                del live[key]
                _STATE.trapped_keys += 1
        if site is not None:
            raise DoubleReleaseError(
                f"arena key {key} released twice; first released at:\n{site}"
            )
        # keys this arena never issued stay a documented no-op
        orig_discard(key)

    def pop(key):
        # copy before discarding: the poisoning release would otherwise
        # scribble over the very bytes we are handing back
        data = bytes(get(key))
        discard(key)
        return data

    arena.put = put
    arena.get = get
    arena.discard = discard
    arena.pop = pop


def _instrument_scratch(pool) -> None:
    if _STATE.lock_order:
        _track_lock(pool, "_lock", f"scratch-{id(pool):#x}", reentrant=False)
    if _STATE.poison:
        orig_give = pool._give

        def give(buf):
            _poison_array(buf)
            orig_give(buf)

        pool._give = give


def maybe_instrument(obj, kind: str) -> None:
    """Constructor hook: swap in instrumented internals when enabled.

    Called (cheaply — one attribute read when disabled) from the
    ``__init__`` of every sanitizer-aware class.  *kind* selects the
    instrumentation: ``"arena"``, ``"arena_pool"``, ``"scratch"``,
    ``"codebook_cache"``, ``"param_store"``, ``"engine"``.
    """
    if not _STATE.enabled:
        return
    if kind == "arena":
        _instrument_arena(obj)
    elif kind == "scratch":
        _instrument_scratch(obj)
    elif kind == "arena_pool" and _STATE.lock_order:
        _track_lock(obj, "_lock", f"arena-pool-{id(obj):#x}", reentrant=False)
    elif kind == "codebook_cache" and _STATE.lock_order:
        _track_lock(obj, "_lock", f"codebook-{id(obj):#x}", reentrant=False)
    elif kind == "param_store" and _STATE.lock_order:
        _track_lock(obj, "_lock", f"param_store-{id(obj):#x}", reentrant=True)
    elif kind == "engine" and _STATE.lock_order:
        _track_lock(obj, "_ema_lock", f"engine-ema-{id(obj):#x}", reentrant=False)
    _STATE.instrumented += 1
