"""Gradient assessment (Section 4.2, Eq. 8).

The acceptable gradient-error sigma is budgeted as a fixed fraction
(1 % by default, the paper's choice after the Figure 9 study showed
5 % diverges and 2 % is marginal) of the average momentum magnitude:

    sigma = 0.01 * M_average

Momentum is used rather than the raw gradient because the momentum
vector is what actually steers the weight update, and its normally
distributed error averages out across iterations (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.layers.base import Parameter
from repro.nn.optim import Optimizer

__all__ = ["GradientAssessor"]


@dataclass
class GradientAssessor:
    """Computes per-layer sigma budgets from optimizer momentum state
    (any :class:`Optimizer` with a momentum-class slot: SGD velocity,
    Adam first moment)."""

    optimizer: Optimizer
    sigma_fraction: float = 0.01  # the paper's default (Figure 9)

    def __post_init__(self):
        if not 0.0 < self.sigma_fraction < 1.0:
            raise ValueError(
                f"sigma fraction must be in (0, 1), got {self.sigma_fraction}"
            )

    def sigma_budget(self, param: Optional[Parameter] = None) -> float:
        """Target sigma: fraction of mean |momentum| (per-layer if *param*
        given, global average otherwise)."""
        if param is None:
            m_avg = self.optimizer.average_momentum_magnitude()
        else:
            v = self.optimizer.momentum_buffer(param)
            m_avg = float(np.abs(v).mean())
        return self.sigma_fraction * m_avg

    def gradient_fallback_budget(self, param: Optional[Parameter] = None) -> float:
        """Before momentum has accumulated (first iterations), budget
        against the gradient magnitude instead."""
        if param is None:
            g_avg = self.optimizer.average_gradient_magnitude()
        else:
            g_avg = float(np.abs(param.grad).mean())
        return self.sigma_fraction * g_avg
