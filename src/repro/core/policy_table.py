"""Per-layer compression policy resolution: the PolicyTable.

Four PRs of growth left the framework with one global codec, one global
error-bound regime, and one global storage class for every compressible
layer.  Real cuSZ-style deployments tune per field: early conv layers
(large, smooth activations) tolerate loose bounds and cheap codecs,
late layers (small, gradient-critical) want tight bounds or lossless
treatment.  The :class:`PolicyTable` makes that a first-class concept in
the saved-tensor layer:

* A table is an ordered list of ``(matcher, ResolvedPolicy)`` pairs.
  ``matcher`` is any ``Callable[[str], bool]`` over layer names —
  typically an :func:`fnmatch.fnmatch` glob compiled by
  :func:`compile_matcher`, but arbitrary predicates work too.
* Resolution is **first match wins**, cached per layer name (layer sets
  are static for a session, so the cache never invalidates).
* A layer no rule matches falls back to the owning context's defaults
  (session codec, adaptive error bound, session storage class), exactly
  the pre-table behaviour.

The table is deliberately declarative-friendly: the ``repro.api``
package builds one from serializable :class:`~repro.api.config.PolicyRule`
specs, but nothing here depends on the api layer — contexts in
:mod:`repro.core.activation_store` consume the table directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ResolvedPolicy", "PolicyTable", "compile_matcher"]

#: group label reported for layers no rule matches
DEFAULT_GROUP = "default"


def compile_matcher(pattern: str, kind: str = "glob") -> Callable[[str], bool]:
    """Compile a *pattern* into a layer-name predicate.

    ``kind="glob"`` (default) uses :func:`fnmatch.fnmatchcase`
    (case-sensitive: layer names are identifiers, not filenames) —
    ``"l*"`` matches every default layer name; ``"l0"`` exactly one;
    ``"l[01]"`` a character class.  ``kind="regex"`` compiles an
    :mod:`re` pattern matched against the **whole** name
    (``fullmatch``), so ``"l[0-9]+"`` matches ``l12`` but not ``l12x``.
    """
    if not isinstance(pattern, str) or not pattern:
        raise ValueError(f"match pattern must be a non-empty string, got {pattern!r}")
    if kind == "glob":
        return lambda name: fnmatchcase(name, pattern)
    if kind == "regex":
        try:
            compiled = re.compile(pattern)
        except re.error as exc:
            raise ValueError(f"invalid regex pattern {pattern!r}: {exc}") from None
        return lambda name: compiled.fullmatch(name) is not None
    raise ValueError(f"match kind must be 'glob' or 'regex', got {kind!r}")


@dataclass
class ResolvedPolicy:
    """What one rule prescribes for the layers it matches.

    ``None`` fields mean "inherit the session default" — the contexts
    interpret them, the table just carries them.
    """

    #: rule label, used as the tracker's per-rule accounting group
    label: str
    #: codec instance for matched layers (None = session default codec).
    #: One instance is shared by every layer the rule matches, so
    #: stateful codecs (codebook caches, worker pools) amortize across
    #: the group.
    codec: Optional[object] = None
    #: fixed absolute error bound (None = adaptive / codec default)
    error_bound: Optional[float] = None
    #: False pins matched layers to their rule bound — the adaptive
    #: controller leaves them alone
    adaptive: bool = True
    #: "arena" | "inmem" | None (inherit session storage class)
    storage: Optional[str] = None
    #: per-rule warm-up relative bound and clamp overrides for the
    #: adaptive controller (None = the AdaptiveConfig globals)
    initial_rel_eb: Optional[float] = None
    eb_min: Optional[float] = None
    eb_max: Optional[float] = None
    #: in-memory sub-budget (bytes) carved out of the session arena for
    #: this rule's packed activations; None = share the global budget
    arena_budget: Optional[int] = None

    def __post_init__(self):
        if not self.label:
            raise ValueError("ResolvedPolicy needs a non-empty label")
        if self.error_bound is not None and self.error_bound <= 0:
            raise ValueError(
                f"rule {self.label!r}: error_bound must be positive, "
                f"got {self.error_bound}"
            )
        if self.storage not in (None, "arena", "inmem"):
            raise ValueError(
                f"rule {self.label!r}: storage must be 'arena', 'inmem', or None, "
                f"got {self.storage!r}"
            )
        for attr in ("initial_rel_eb", "eb_min", "eb_max"):
            v = getattr(self, attr)
            if v is not None and v <= 0:
                raise ValueError(f"rule {self.label!r}: {attr} must be positive, got {v}")
        if self.arena_budget is not None:
            if not isinstance(self.arena_budget, int) or isinstance(
                self.arena_budget, bool
            ) or self.arena_budget <= 0:
                raise ValueError(
                    f"rule {self.label!r}: arena_budget must be a positive int "
                    f"or None, got {self.arena_budget!r}"
                )
            if self.storage == "inmem":
                raise ValueError(
                    f"rule {self.label!r}: arena_budget requires arena storage, "
                    f"but the rule pins storage='inmem'"
                )


class PolicyTable:
    """Ordered first-match layer-name → :class:`ResolvedPolicy` lookup."""

    def __init__(
        self, rules: Sequence[Tuple[Callable[[str], bool], ResolvedPolicy]] = ()
    ):
        seen: set = set()
        for matcher, policy in rules:
            if not callable(matcher):
                raise TypeError(
                    f"rule {policy.label!r}: matcher must be callable, "
                    f"got {type(matcher).__name__}"
                )
            if policy.label in seen:
                raise ValueError(f"duplicate rule label {policy.label!r}")
            seen.add(policy.label)
        self._rules: List[Tuple[Callable[[str], bool], ResolvedPolicy]] = list(rules)
        self._cache: Dict[str, Optional[ResolvedPolicy]] = {}

    @property
    def rules(self) -> Tuple[ResolvedPolicy, ...]:
        return tuple(policy for _, policy in self._rules)

    def resolve(self, layer_name: str) -> Optional[ResolvedPolicy]:
        """First matching rule's policy, or None (session defaults)."""
        try:
            return self._cache[layer_name]
        except KeyError:
            pass
        hit = None
        for matcher, policy in self._rules:
            if matcher(layer_name):
                hit = policy
                break
        self._cache[layer_name] = hit
        return hit

    def group_of(self, layer_name: str) -> str:
        """Accounting-group label for *layer_name* (``"default"`` when
        no rule matches)."""
        pol = self.resolve(layer_name)
        return pol.label if pol is not None else DEFAULT_GROUP

    def coverage(self, layer_names: Sequence[str]) -> Dict[str, List[str]]:
        """``{rule label: [matched layers]}`` over *layer_names* —
        unmatched layers land under ``"default"``.  Diagnostic helper
        for validation messages and tests."""
        out: Dict[str, List[str]] = {p.label: [] for _, p in self._rules}
        out.setdefault(DEFAULT_GROUP, [])
        for name in layer_names:
            out[self.group_of(name)].append(name)
        return out

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"PolicyTable({[p.label for _, p in self._rules]})"
