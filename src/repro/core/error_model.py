"""The paper's error-propagation model (Section 3.2, Eqs. 6-7 and 9).

Uniform compression error ``e ~ U(-eb, +eb)`` on the activation data
enters each weight-gradient element as a weighted sum ``E = sum_j e_j L_j``
(Eq. 3); the sum runs over every (batch, output-position) pair the
element accumulates — ``M = N * Ho * Wo`` terms.  By the CLT the gradient
error is normal with

    sigma = a * L_scale * sqrt(M) * eb * sqrt(R)     (Eqs. 6-7)

where ``R`` is the non-zero activation ratio when zeros are preserved
through compression (the Section 4.4 filter), and 1 otherwise.

Two coefficient conventions coexist:

* **Exact / rms convention** (used by the controller): ``L_scale`` is the
  rms of the loss tensor reaching the layer; then ``a = 1/sqrt(3)``
  *exactly* (std of U(-1, 1)) for every layer of every network —
  this is the strongest form of the paper's claim that the coefficient
  "is unchanged for different neural networks".
* **Paper / mean-abs convention**: ``L_scale`` is the mean |loss| and
  ``a`` is fitted empirically; the paper reports 0.32.  The ratio of the
  two conventions is rms/mean of the loss distribution.  The Figure 8
  benchmark fits this coefficient and checks its stability.

Note the paper's Eq. 6 prose writes ``sqrt(N)`` (batch only), but its
Section 4.1 collects "activation data size of each convolutional layer
and the size of its output layer ... because they affect the number of
elements combined into each value in the gradient"; the combined count
``M`` is what the statistics actually depend on, and what we use.

Inverting for the controller (Eq. 9):

    eb = sigma / (a * L_scale * sqrt(M * R))
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PAPER_COEFFICIENT_A",
    "THEORY_COEFFICIENT_A",
    "predict_sigma",
    "error_bound_for_sigma",
    "fit_coefficient",
]

#: The paper's empirically identified coefficient, mean-abs-loss convention
#: (Section 5.2).
PAPER_COEFFICIENT_A = 0.32

#: Exact coefficient under the rms-loss convention: std of U(-1, 1).
THEORY_COEFFICIENT_A = 1.0 / np.sqrt(3.0)


def predict_sigma(
    error_bound: float,
    loss_scale: float,
    combined_elements: int,
    nonzero_ratio: float = 1.0,
    coefficient: float = THEORY_COEFFICIENT_A,
) -> float:
    """Predicted gradient-error sigma (Eqs. 6-7).

    ``combined_elements`` is ``batch * output_positions`` for a conv
    layer; ``loss_scale`` is rms(|L|) (exact convention) or mean|L|
    (paper convention, with the matching empirical coefficient).
    """
    _check(error_bound, loss_scale, combined_elements, nonzero_ratio, coefficient)
    return (
        coefficient
        * loss_scale
        * np.sqrt(combined_elements)
        * error_bound
        * np.sqrt(nonzero_ratio)
    )


def error_bound_for_sigma(
    sigma: float,
    loss_scale: float,
    combined_elements: int,
    nonzero_ratio: float = 1.0,
    coefficient: float = THEORY_COEFFICIENT_A,
) -> float:
    """Error bound achieving a target gradient-error sigma (Eq. 9)."""
    if sigma <= 0:
        raise ValueError(f"target sigma must be positive, got {sigma}")
    _check(1.0, loss_scale, combined_elements, nonzero_ratio, coefficient)
    if loss_scale == 0:
        raise ValueError("loss_scale is zero; layer receives no gradient signal")
    return sigma / (coefficient * loss_scale * np.sqrt(combined_elements * nonzero_ratio))


def fit_coefficient(
    measured_sigmas,
    error_bounds,
    loss_scales,
    combined_elements,
    nonzero_ratios=None,
) -> float:
    """Least-squares fit of ``a`` from measured gradient-error sigmas.

    This is how the paper identifies a = 0.32: regress sigma against
    ``L_scale * sqrt(M * R) * eb`` with zero intercept.
    """
    s = np.asarray(measured_sigmas, dtype=np.float64)
    x = (
        np.asarray(loss_scales, dtype=np.float64)
        * np.sqrt(np.asarray(combined_elements, dtype=np.float64))
        * np.asarray(error_bounds, dtype=np.float64)
    )
    if nonzero_ratios is not None:
        x = x * np.sqrt(np.asarray(nonzero_ratios, dtype=np.float64))
    if s.shape != x.shape or s.size == 0:
        raise ValueError("inputs must be equal-length non-empty arrays")
    denom = float(np.dot(x, x))
    if denom == 0:
        raise ValueError("degenerate fit: all predictors are zero")
    return float(np.dot(x, s) / denom)


def _check(eb, lscale, m, r, a):
    if eb <= 0:
        raise ValueError(f"error bound must be positive, got {eb}")
    if lscale < 0:
        raise ValueError(f"loss_scale must be non-negative, got {lscale}")
    if m < 1:
        raise ValueError(f"combined element count must be >= 1, got {m}")
    if not 0.0 < r <= 1.0:
        raise ValueError(f"nonzero ratio must be in (0, 1], got {r}")
    if a <= 0:
        raise ValueError(f"coefficient must be positive, got {a}")
