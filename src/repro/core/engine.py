"""Compression engines: execution strategies for the saved-tensor path.

The paper's headline performance claim is that compression *overlaps*
training: packing layer *i*'s activation runs concurrently with layer
*i+1*'s forward compute, and spilled activations are prefetched ahead of
the backward pass, so the memory savings come at near-zero wall-clock
cost.  This module factors that scheduling decision out of the storage
contexts (:mod:`repro.core.activation_store`, :mod:`repro.core.policies`)
into a pluggable strategy object:

* :class:`SyncEngine` — compress/decompress inline on the caller's
  thread.  This is the historical behaviour, bit-for-bit.
* :class:`AsyncEngine` — ``pack`` submits the compression job to a
  worker pool and returns immediately with a future-backed handle, so
  compression overlaps the next layer's forward; the forward pack order
  is recorded and outstanding handles are prefetched (arena bytes read
  back, deserialized, and decompressed) in *reverse* order ahead of the
  backward pass.

Exactness contract: for deterministic codecs (every registry codec) the
async engine produces **bit-identical reconstructions** and **byte-exact
tracker numbers** versus the sync engine.  Two ordering rules enforce
this:

1. Pack jobs are *finalized* (arena write + tracker charge) strictly in
   submission order, on the submitting thread — never from a worker —
   so ``record_pack`` sequences are identical across engines.
2. Before any handle is materialized or discarded, every outstanding
   pack is finalized (:meth:`AsyncEngine.flush`).  Within a training
   iteration all packs happen during forward and all releases during
   backward, so the interleaving of tracker operations — and therefore
   every live/peak counter — matches the sync engine exactly.

Engines are bound to exactly one context (:meth:`CompressionEngine.bind`)
and assume pack/unpack/discard are driven from a single training thread;
only the pure compression/serialization work runs on pool workers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, List, Optional, Union

from repro.utils import profiler

__all__ = ["CompressionEngine", "SyncEngine", "AsyncEngine", "resolve_engine"]


class CompressionEngine:
    """Strategy interface between a compression context and its codec work.

    The owning context (a ``BaseCompressionContext``) calls
    :meth:`submit_pack` / :meth:`obtain` / :meth:`ensure_packed` /
    :meth:`forget`; the engine decides *where and when* the pure codec
    work runs and calls back into the context's ``_finalize_pack`` /
    ``_materialize`` hooks for the stateful parts (arena writes, tracker
    accounting), which always execute on the caller's thread.
    """

    name = "base"

    def __init__(self) -> None:
        self._ctx: Optional[Any] = None

    def bind(self, ctx: Any) -> "CompressionEngine":
        """Attach to the owning context (one engine per context)."""
        if self._ctx is not None and self._ctx is not ctx:
            raise RuntimeError(
                "engine is already bound to another context; "
                "construct one engine per context"
            )
        self._ctx = ctx
        return self

    # -- strategy interface ------------------------------------------------
    def submit_pack(self, handle: Any, job: Callable[[], tuple]) -> None:
        """Run *job* (pure compression work) and finalize *handle* with
        its payload, now or later depending on the strategy."""
        raise NotImplementedError

    def obtain(self, handle: Any):
        """Return the decompressed array for a packed *handle*."""
        raise NotImplementedError

    def ensure_packed(self, handle: Any) -> None:
        """Block until *handle* has been finalized (tracker charged)."""

    def forget(self, handle: Any) -> None:
        """Notification that *handle* was released (drop prefetch state)."""

    def flush(self) -> None:
        """Finalize every outstanding pack submission."""

    @property
    def idle(self) -> bool:
        """True when no submitted work is outstanding — every pack is
        finalized and no speculative unpack is in flight.  The gradient
        exchange asserts this after the post-backward flush: gradients
        must never be shipped while activation packs are still settling
        accounts.  Inline strategies are idle by construction."""
        return True

    def close(self) -> None:
        """Finalize or cancel outstanding work and release pool threads."""

    def __enter__(self) -> "CompressionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SyncEngine(CompressionEngine):
    """Inline execution: pack and unpack run on the caller's thread.

    This is the reference behaviour — the async engine's contract is
    defined as "indistinguishable from :class:`SyncEngine` except for
    wall-clock time".
    """

    name = "sync"

    def submit_pack(self, handle: Any, job: Callable[[], tuple]) -> None:
        self._ctx._finalize_pack(handle, job())

    def obtain(self, handle: Any):
        return self._ctx._materialize(handle)


class AsyncEngine(CompressionEngine):
    """Overlapped execution: pooled packing plus reverse-order prefetch.

    Parameters
    ----------
    workers:
        Worker-thread count shared by pack jobs and prefetch jobs.  The
        codec stages (zlib, vectorized NumPy) release the GIL, so threads
        overlap with the training thread's compute.
    prefetch_depth:
        How many not-yet-consumed handles ahead of the current unpack
        (in reverse pack order — the backward consumption order) to
        materialize speculatively.  A second window of the same size
        beyond that is *staged*: the spilled bytes of those handles are
        read back into arena memory (:meth:`ByteArena.prefetch`) so the
        decompress jobs that follow find them at memory speed.  ``0``
        disables both.  ``"auto"`` derives the depth each backward pass
        from observed latencies instead of a fixed window: the depth is
        the ratio of the average prefetch-job (decompress + arena read)
        time to the average backward-step gap between consecutive
        unpacks — i.e. *how many layers of backward compute one
        materialization spans* — clamped to ``[1, max_auto_depth]``.
        Slow codecs over fast layers prefetch deeper; fast codecs stop
        wasting pool slots on work the inline path would win anyway.
    unpack_depth:
        Decouples the *speculative decompress* window (double-buffered
        unpack: layer i−1's saved activation decompressed on the pool
        — decode tables hydrated on the worker — while layer i's
        backward computes) from the byte-staging window.  ``None``
        (default) keeps the historical coupling: both windows follow
        ``prefetch_depth``.  An int ``>= 0`` fixes the decompress
        window independently (``0`` = never decompress speculatively,
        byte staging still follows ``prefetch_depth``); ``"auto"``
        sizes it from the same latency model as adaptive prefetch.
    unpack_budget_bytes:
        Decode-ahead budget: cap on the summed raw (decompressed) bytes
        of in-flight speculative decompress jobs.  Scheduling-only — an
        over-budget window defers jobs to the inline path (counted in
        ``unpack_budget_deferrals``), never changes results.  The first
        job is always admitted so progress cannot stall.  ``None``
        disables the bound.
    max_auto_depth:
        Clamp for the adaptive depth (with ``prefetch_depth="auto"``
        and/or ``unpack_depth="auto"``).
    max_pending:
        Backpressure bound on the pack queue (default ``4 * workers``).
        Every queued job closure keeps its raw activation alive, so an
        unbounded queue behind a slow codec would quietly approach the
        uncompressed memory baseline; once the bound is hit,
        ``submit_pack`` blocks finalizing the oldest job first.

    Determinism caveat: prefetch calls ``decompress`` from worker
    threads, so codecs whose decompression draws from shared RNG state
    (``SZCompressor(emulate_zero_drift=True)``, an ablation-only mode)
    lose replay determinism; every registry codec is deterministic and
    therefore bit-identical to :class:`SyncEngine`.
    """

    name = "async"

    def __init__(
        self,
        workers: int = 2,
        prefetch_depth: Union[int, str] = 2,
        max_pending: Optional[int] = None,
        max_auto_depth: int = 8,
        unpack_depth: Union[int, str, None] = None,
        unpack_budget_bytes: Optional[int] = 64 << 20,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.adaptive_prefetch = prefetch_depth == "auto"
        if self.adaptive_prefetch:
            prefetch_depth = 1  # starting point until latencies arrive
        elif isinstance(prefetch_depth, str):
            raise ValueError(
                f"prefetch_depth must be an int >= 0 or 'auto', got {prefetch_depth!r}"
            )
        elif prefetch_depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, got {prefetch_depth}")
        self.adaptive_unpack = unpack_depth == "auto"
        if unpack_depth is not None and not self.adaptive_unpack:
            if isinstance(unpack_depth, str):
                raise ValueError(
                    f"unpack_depth must be an int >= 0, 'auto', or None, "
                    f"got {unpack_depth!r}"
                )
            if unpack_depth < 0:
                raise ValueError(f"unpack_depth must be >= 0, got {unpack_depth}")
            unpack_depth = int(unpack_depth)
        if unpack_budget_bytes is not None and unpack_budget_bytes < 1:
            raise ValueError(
                f"unpack_budget_bytes must be >= 1 or None, got {unpack_budget_bytes}"
            )
        if max_auto_depth < 1:
            raise ValueError(f"max_auto_depth must be >= 1, got {max_auto_depth}")
        if max_pending is None:
            max_pending = 4 * int(workers)
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = int(workers)
        self.prefetch_depth = int(prefetch_depth)
        #: the configured spec (None = follow prefetch_depth, int, "auto")
        self.unpack_depth = unpack_depth
        self.unpack_budget_bytes = unpack_budget_bytes
        self.max_pending = int(max_pending)
        self.max_auto_depth = int(max_auto_depth)
        #: current adaptive decompress window (only with unpack_depth="auto")
        self._unpack_depth_now = 1
        #: raw bytes of in-flight, not-yet-consumed speculative decompress
        #: jobs (training-thread state: charged at submit, released when
        #: the future is consumed or dropped)
        self._unpack_inflight_bytes = 0
        # -- adaptive-depth latency model (EMAs, guarded by a lock: job
        # -- durations are reported from worker threads) ------------------
        self._ema_lock = threading.Lock()
        self._gap_ema: Optional[float] = None  # backward step between unpacks
        self._job_ema: Optional[float] = None  # one materialization's cost
        self._last_obtain_end: Optional[float] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        #: handles submitted but not yet finalized, in submission order
        self._pending: Deque[Any] = deque()
        #: finalized-or-pending handles not yet released, in pack order —
        #: the forward record the reverse-order prefetcher walks.
        #: Released handles are tombstoned (None) for O(1) removal and
        #: the list is compacted when mostly dead.
        self._live: List[Any] = []
        self._dead = 0
        self._closed = False
        # -- statistics ---------------------------------------------------
        self.packs_submitted = 0
        #: packs whose job had already completed on a worker by the time
        #: the training thread needed the result (true overlap wins)
        self.packs_overlapped = 0
        self.prefetches_scheduled = 0
        #: obtains served from a completed prefetch (no inline decompress)
        self.prefetch_hits = 0
        #: staging requests for upcoming layers' spilled *parameter* bytes
        #: (contexts with an attached ParamStore only)
        self.param_stages_scheduled = 0
        #: forward-side next-bind-window weight staging requests
        self.forward_param_stages = 0
        #: speculative decompress jobs cancelled before running at close()
        self.unpacks_cancelled = 0
        #: decompress jobs deferred to the inline path by the decode-ahead
        #: budget (bytes staged instead, so the miss still starts warm)
        self.unpack_budget_deferrals = 0
        #: latest depth the adaptive controller settled on (mirrors
        #: ``prefetch_depth`` for fixed-depth engines)
        self.last_effective_depth = self.prefetch_depth
        #: latest speculative-decompress window actually used
        self.last_effective_unpack_depth = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "engine")

    # -- internals ---------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="compression-engine"
            )
        return self._pool

    # -- adaptive prefetch depth -------------------------------------------
    def _update_ema(self, attr: str, value: float, alpha: float = 0.25) -> None:
        with self._ema_lock:
            prev = getattr(self, attr)
            setattr(self, attr, value if prev is None else prev + alpha * (value - prev))

    def _auto_depth(self, current: int) -> int:
        """ceil(materialize time / backward gap), clamped — deep enough
        that a materialization started now completes before the training
        thread consumes it, no deeper.  Returns *current* until both
        latency estimates exist."""
        with self._ema_lock:
            gap, job = self._gap_ema, self._job_ema
        if gap is not None and job is not None and gap > 0:
            return max(1, min(-int(-job // gap), self.max_auto_depth))
        return current

    def _effective_depth(self) -> int:
        """Prefetch window for this point in the backward pass.

        Fixed engines return their configured depth; adaptive engines
        size the window from the latency model (:meth:`_auto_depth`).
        """
        if not self.adaptive_prefetch:
            return self.prefetch_depth
        self.prefetch_depth = self._auto_depth(self.prefetch_depth)
        self.last_effective_depth = self.prefetch_depth
        return self.prefetch_depth

    def _effective_unpack_depth(self) -> int:
        """Speculative-decompress window for this point in the backward
        pass: the configured ``unpack_depth``, the adaptive estimate,
        or — with ``unpack_depth=None`` — the prefetch window (the
        historical coupled behaviour)."""
        if self.unpack_depth is None:
            depth = self._effective_depth()
        elif self.adaptive_unpack:
            self._unpack_depth_now = self._auto_depth(self._unpack_depth_now)
            depth = self._unpack_depth_now
        else:
            depth = self.unpack_depth
        self.last_effective_unpack_depth = depth
        return depth

    def _finalize_next(self) -> None:
        handle = self._pending.popleft()
        fut = handle._pack_future
        handle._pack_future = None
        if fut.done():
            self.packs_overlapped += 1
        try:
            # .result() propagates codec errors on the training thread (at
            # a later point than the sync engine would have raised them).
            if fut.done():
                payload = fut.result()
            else:
                with profiler.stage("engine-wait"):
                    payload = fut.result()
            self._ctx._finalize_pack(handle, payload)
        except BaseException:
            # The handle was never charged to the tracker; mark it
            # released so the error-path cleanup (clear_saved -> discard)
            # cannot credit bytes that were never recorded, and drop it
            # from the live-order record (the discard's forget would
            # otherwise early-return on the released flag).
            handle.released = True
            self.forget(handle)
            raise

    def _drain_completed(self) -> None:
        while self._pending and self._pending[0]._pack_future.done():
            self._finalize_next()

    @staticmethod
    def _hydrate_codebooks(ct: Any) -> None:
        """Build the dense Huffman decode tables on the worker thread.

        The tables are cached on the codebook object, so hydrating here
        moves their (one-off per codebook) construction off the critical
        path — for cached canonical books shared across iterations, every
        later decode of the same book finds them warm.  Building is
        idempotent, so a racing decode on another thread is harmless.
        """
        books = []
        for attr in ("codebook", "shared_codebook"):
            book = getattr(ct, attr, None)
            if book is not None:
                books.append(book)
        for chunk in getattr(ct, "chunks", None) or ():
            book = getattr(chunk, "codebook", None)
            if book is not None:
                books.append(book)
        for book in books:
            build = getattr(book, "decode_tables", None)
            if callable(build):
                try:
                    build()
                except Exception:
                    pass  # decode will surface any real problem inline

    def _prefetch_job(self, handle: Any):
        """Worker-side speculative materialization; never raises.

        Returns ``(ct, out)`` or ``None`` when the handle raced a discard
        or shutdown — the consumer falls back to the inline path.  The
        job duration feeds the adaptive-depth latency model.
        """
        try:
            with profiler.stage("unpack-ahead", hidden=True):
                t0 = time.perf_counter()
                ct = handle.compressed
                if ct is None:
                    # get() consumes the staged copy when the stage-ahead
                    # window already read the spill file back into memory.
                    ct = self._ctx._loads(self._ctx.storage.get(handle.arena_key))
                self._hydrate_codebooks(ct)
                # The layer name rides along so policy-table contexts can
                # dispatch to the codec that packed this layer.
                out = self._ctx._decompress(ct, handle.layer_name)
            if self.adaptive_prefetch or self.adaptive_unpack:
                self._update_ema("_job_ema", time.perf_counter() - t0)
            return ct, out
        except Exception:
            return None

    # -- decode-ahead budget (training-thread state, no lock needed) -------
    def _charge_unpack(self, handle: Any) -> bool:
        """Admit *handle* to the decode-ahead budget, or refuse.

        The first in-flight job is always admitted (progress guarantee);
        beyond that, admission requires the summed raw bytes to stay
        within ``unpack_budget_bytes``.
        """
        budget = self.unpack_budget_bytes
        if (
            budget is not None
            and self._unpack_inflight_bytes
            and self._unpack_inflight_bytes + handle.raw_nbytes > budget
        ):
            return False
        self._unpack_inflight_bytes += handle.raw_nbytes
        handle._unpack_charged = True
        return True

    def _uncharge_unpack(self, handle: Any) -> None:
        if handle._unpack_charged:
            handle._unpack_charged = False
            self._unpack_inflight_bytes -= handle.raw_nbytes

    def _compact_live(self) -> None:
        self._live = [h for h in self._live if h is not None]
        for pos, h in enumerate(self._live):
            h._live_pos = pos
        self._dead = 0

    def _schedule_prefetch(self, current: Any) -> None:
        udepth = self._effective_unpack_depth()
        sdepth = self._effective_depth()
        if udepth <= 0 and sdepth <= 0:
            return
        pos = current._live_pos
        if pos is None or pos >= len(self._live) or self._live[pos] is not current:
            return
        # Backward consumes in reverse pack order: after `current`, the
        # next expected handles are the ones packed just before it.  The
        # first window (udepth) gets speculative decompress jobs, subject
        # to the decode-ahead budget; the window beyond it (sdepth) gets
        # its spilled bytes staged back into arena memory so those
        # decompress jobs will start from memory, not disk.
        stage_keys = []
        upcoming_layers = []
        seen = 0
        idx = pos - 1
        while idx >= 0 and seen < udepth + sdepth:
            handle = self._live[idx]
            idx -= 1
            if handle is None or handle.released:
                continue
            if handle.layer_name and handle.layer_name not in upcoming_layers:
                upcoming_layers.append(handle.layer_name)
            if seen < udepth and handle._prefetch_future is None:
                if self._charge_unpack(handle):
                    handle._prefetch_future = self._ensure_pool().submit(
                        self._prefetch_job, handle
                    )
                    self.prefetches_scheduled += 1
                else:
                    # Over budget: skip the decompress but still stage the
                    # bytes so the eventual inline path starts from memory.
                    self.unpack_budget_deferrals += 1
                    if handle.compressed is None and handle.arena_key is not None:
                        stage_keys.append(handle.arena_key)
            elif handle._prefetch_future is None and handle.compressed is None and handle.arena_key is not None:
                stage_keys.append(handle.arena_key)
            seen += 1
        if stage_keys and self._ctx.storage is not None:
            self._ensure_pool().submit(self._ctx.storage.prefetch, stage_keys)
        # Out-of-core parameters ride the same reverse-order window: the
        # layers whose backward runs next need their weights rebound, so
        # stage their spilled parameter/slot bytes alongside the spilled
        # activations (ParamStore.stage_layers is worker-thread safe).
        param_store = getattr(self._ctx, "param_store", None)
        if param_store is not None and upcoming_layers:
            self._ensure_pool().submit(param_store.stage_layers, upcoming_layers)
            self.param_stages_scheduled += 1

    # -- strategy interface ------------------------------------------------
    def submit_pack(self, handle: Any, job: Callable[[], tuple]) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")
        # Opportunistically retire completed jobs so tracker charges land
        # as early as the ordering rule allows.
        self._drain_completed()
        # Backpressure: queued job closures pin their raw activations, so
        # block on the oldest job once the pipeline is max_pending deep.
        while len(self._pending) >= self.max_pending:
            self._finalize_next()
        handle._pack_future = self._ensure_pool().submit(job)
        self._pending.append(handle)
        handle._live_pos = len(self._live)
        self._live.append(handle)
        self.packs_submitted += 1
        # Forward-side weight double buffering: while this layer's pack
        # (and the next layer's forward compute) run, stage the *next*
        # bind window's spilled parameter bytes on the pool so the coming
        # rebind finds them in arena memory (ParamStore.stage_next_window
        # is worker-thread safe and a no-op without bind windows spilled).
        param_store = getattr(self._ctx, "param_store", None)
        if param_store is not None and handle.layer_name:
            stage = getattr(param_store, "stage_next_window", None)
            if stage is not None:
                self._ensure_pool().submit(stage, handle.layer_name)
                self.forward_param_stages += 1
        # A pack means the forward pass is running: the next unpack gap
        # belongs to a fresh backward pass.
        self._last_obtain_end = None

    def obtain(self, handle: Any):
        t0 = time.perf_counter()
        if (
            (self.adaptive_prefetch or self.adaptive_unpack)
            and self._last_obtain_end is not None
        ):
            # Gap between consecutive unpacks = one layer's backward
            # compute (the clock resets on pack, so forward time between
            # iterations never pollutes the estimate).
            self._update_ema("_gap_ema", t0 - self._last_obtain_end)
        self.flush()
        # Kick off the *next* handles' prefetch before blocking on this
        # one, so speculative work overlaps the current decompress.
        self._schedule_prefetch(handle)
        try:
            fut = handle._prefetch_future
            if fut is not None:
                handle._prefetch_future = None
                if fut.done():
                    res = fut.result()
                else:
                    with profiler.stage("engine-wait"):
                        res = fut.result()
                self._uncharge_unpack(handle)
                if res is not None:
                    ct, out = res
                    self.prefetch_hits += 1
                    if handle.compressed is None:
                        handle.compressed = ct
                    return out
            t1 = time.perf_counter()
            out = self._ctx._materialize(handle)
            if self.adaptive_prefetch or self.adaptive_unpack:
                # Inline materializations feed the same latency model, so
                # the depth estimate exists before the first prefetch hit.
                self._update_ema("_job_ema", time.perf_counter() - t1)
            return out
        finally:
            self._last_obtain_end = time.perf_counter()

    def ensure_packed(self, handle: Any) -> None:
        # Release barrier (ordering rule 2): the tracker must never see a
        # release while *any* pack is still uncharged, so the whole queue
        # drains — not just this handle's job.
        if self._pending:
            self.flush()

    def forget(self, handle: Any) -> None:
        pos = handle._live_pos
        if pos is not None and pos < len(self._live) and self._live[pos] is handle:
            self._live[pos] = None  # tombstone: O(1) removal
            handle._live_pos = None
            self._dead += 1
            if self._dead > 32 and 2 * self._dead > len(self._live):
                self._compact_live()
        # An in-flight prefetch for a discarded handle completes (or
        # fails) harmlessly on its worker; nobody consumes the future.
        handle._prefetch_future = None
        self._uncharge_unpack(handle)

    def flush(self) -> None:
        while self._pending:
            self._finalize_next()

    @property
    def idle(self) -> bool:
        """No pack awaiting finalization and no speculative decompress
        charged against the decode-ahead budget."""
        return not self._pending and self._unpack_inflight_bytes == 0

    def close(self) -> None:
        """Shut down mid-flight safely: cancel what can be cancelled,
        finalize what already ran (ignoring storage-closed errors), and
        release the pool.  Idempotent."""
        self._closed = True
        while self._pending:
            handle = self._pending.popleft()
            fut = handle._pack_future
            handle._pack_future = None
            if fut.cancel():
                # Never charged to the tracker — mark released so a late
                # discard (clear_saved/detach) cannot credit bytes that
                # were never recorded.
                handle.released = True
                continue
            try:
                self._ctx._finalize_pack(handle, fut.result())
            except Exception:
                # Mid-flight shutdown: the arena may already be closed or
                # the job itself failed; drop the handle, uncharged.
                handle.released = True
        # Cancel in-flight speculative decompress jobs: queued jobs are
        # dropped before running; a job already on a worker completes
        # harmlessly (nobody consumes its future) and the pool shutdown
        # below waits it out.
        for handle in self._live:
            if handle is None:
                continue
            fut = handle._prefetch_future
            if fut is not None:
                handle._prefetch_future = None
                if fut.cancel():
                    self.unpacks_cancelled += 1
                self._uncharge_unpack(handle)
        self._live.clear()
        self._dead = 0
        self._unpack_inflight_bytes = 0
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"AsyncEngine(workers={self.workers}, "
            f"prefetch_depth={self.prefetch_depth}, "
            f"unpack_depth={self.unpack_depth!r}, "
            f"pending={len(self._pending)}, live={len(self._live)})"
        )


def resolve_engine(
    engine: Union["CompressionEngine", str, None], ctx: Any
) -> CompressionEngine:
    """Normalize an engine spec — ``None`` (sync), a name, or an
    instance — and bind it to *ctx*."""
    if engine is None:
        engine = SyncEngine()
    elif isinstance(engine, str):
        key = engine.lower()
        if key == "sync":
            engine = SyncEngine()
        elif key == "async":
            engine = AsyncEngine()
        else:
            raise ValueError(f"unknown engine {engine!r}; expected 'sync' or 'async'")
    elif not isinstance(engine, CompressionEngine):
        raise TypeError(
            f"engine must be a CompressionEngine, 'sync'/'async', or None, "
            f"got {type(engine).__name__}"
        )
    return engine.bind(ctx)
